//! The in-memory raster standing in for the color terminals.

use crate::color::Color;
use crate::raster::{self, Band, PixelSink};

/// A simple RGB framebuffer with the primitive drawing operations the
/// Riot display needed: lines, outlined and filled rectangles, the
/// connector crosses, and bitmap text.
///
/// Screen coordinates are `(x right, y up)` like the layout plane;
/// row 0 of the PPM output is the **top** scanline, as image viewers
/// expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<Color>,
}

impl Framebuffer {
    /// Creates a black framebuffer of the given size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "zero-sized framebuffer");
        Framebuffer {
            width,
            height,
            pixels: vec![Color::BLACK; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fills the whole buffer with one color.
    pub fn clear(&mut self, color: Color) {
        self.pixels.fill(color);
    }

    /// Reads a pixel; out-of-bounds reads return `None`.
    pub fn get(&self, x: i64, y: i64) -> Option<Color> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return None;
        }
        Some(self.pixels[y as usize * self.width + x as usize])
    }

    /// Writes a pixel; out-of-bounds writes are clipped silently.
    pub fn set(&mut self, x: i64, y: i64, color: Color) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        self.pixels[y as usize * self.width + x as usize] = color;
    }

    /// Splits the framebuffer into horizontal [`Band`]s of at most
    /// `band_rows` rows each (the last band may be shorter). The bands
    /// partition the pixel storage, so they can be painted from
    /// different threads without overlapping writes.
    ///
    /// # Panics
    ///
    /// Panics when `band_rows` is zero.
    pub fn bands_mut(&mut self, band_rows: usize) -> Vec<Band<'_>> {
        assert!(band_rows > 0, "bands must hold at least one row");
        let (width, height) = (self.width, self.height);
        self.pixels
            .chunks_mut(band_rows * width)
            .enumerate()
            .map(|(i, rows)| Band::new(rows, width, height, i * band_rows))
            .collect()
    }

    /// Draws a line with Bresenham's algorithm (any slope).
    pub fn draw_line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
        raster::draw_line(self, x0, y0, x1, y1, color);
    }

    /// Draws an axis-aligned rectangle outline.
    pub fn draw_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
        raster::draw_rect(self, x0, y0, x1, y1, color);
    }

    /// Fills an axis-aligned rectangle (inclusive bounds), clipped.
    pub fn fill_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
        raster::fill_rect(self, x0, y0, x1, y1, color);
    }

    /// Draws a connector cross of the given half-arm length — "the size
    /// and color of the connector crosses indicates width and layer".
    pub fn draw_cross(&mut self, x: i64, y: i64, arm: i64, color: Color) {
        raster::draw_cross(self, x, y, arm, color);
    }

    /// Draws text with the 5×7 font, lower-left corner at `(x, y)`.
    pub fn draw_text(&mut self, x: i64, y: i64, text: &str, color: Color) {
        raster::draw_text(self, x, y, text, color);
    }

    /// Serializes as a binary PPM (P6) image, flipping vertically so
    /// y-up screen coordinates display upright.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let c = self.pixels[y * self.width + x];
                out.extend_from_slice(&[c.r, c.g, c.b]);
            }
        }
        out
    }

    /// Number of pixels currently not black (for tests and the session
    /// driver's "did anything draw" checks).
    pub fn lit_pixels(&self) -> usize {
        self.pixels.iter().filter(|&&c| c != Color::BLACK).count()
    }
}

impl PixelSink for Framebuffer {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    fn set(&mut self, x: i64, y: i64, color: Color) {
        Framebuffer::set(self, x, y, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut fb = Framebuffer::new(10, 10);
        fb.set(3, 4, Color::WHITE);
        assert_eq!(fb.get(3, 4), Some(Color::WHITE));
        assert_eq!(fb.get(0, 0), Some(Color::BLACK));
        assert_eq!(fb.get(-1, 0), None);
        assert_eq!(fb.get(10, 0), None);
    }

    #[test]
    fn out_of_bounds_writes_clip() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set(100, 100, Color::WHITE);
        fb.set(-5, 2, Color::WHITE);
        assert_eq!(fb.lit_pixels(), 0);
    }

    #[test]
    fn horizontal_line_exact() {
        let mut fb = Framebuffer::new(10, 10);
        fb.draw_line(2, 5, 7, 5, Color::WHITE);
        for x in 2..=7 {
            assert_eq!(fb.get(x, 5), Some(Color::WHITE));
        }
        assert_eq!(fb.lit_pixels(), 6);
    }

    #[test]
    fn diagonal_line_hits_endpoints() {
        let mut fb = Framebuffer::new(10, 10);
        fb.draw_line(0, 0, 9, 9, Color::WHITE);
        assert_eq!(fb.get(0, 0), Some(Color::WHITE));
        assert_eq!(fb.get(9, 9), Some(Color::WHITE));
        assert_eq!(fb.lit_pixels(), 10);
    }

    #[test]
    fn rect_outline_and_fill() {
        let mut fb = Framebuffer::new(10, 10);
        fb.fill_rect(1, 1, 3, 3, Color::WHITE);
        assert_eq!(fb.lit_pixels(), 9);
        let mut fb2 = Framebuffer::new(10, 10);
        fb2.draw_rect(0, 0, 4, 4, Color::WHITE);
        assert_eq!(fb2.lit_pixels(), 16); // perimeter of a 5x5 square
    }

    #[test]
    fn cross_shape() {
        let mut fb = Framebuffer::new(11, 11);
        fb.draw_cross(5, 5, 2, Color::WHITE);
        assert_eq!(fb.lit_pixels(), 9); // 5 + 5 - shared center
        assert_eq!(fb.get(3, 5), Some(Color::WHITE));
        assert_eq!(fb.get(5, 7), Some(Color::WHITE));
    }

    #[test]
    fn text_draws_pixels() {
        let mut fb = Framebuffer::new(40, 10);
        fb.draw_text(1, 1, "RIOT", Color::WHITE);
        assert!(fb.lit_pixels() > 20);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn clear_fills() {
        let mut fb = Framebuffer::new(4, 4);
        fb.clear(Color::WHITE);
        assert_eq!(fb.lit_pixels(), 16);
    }
}
