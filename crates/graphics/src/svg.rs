//! SVG vector backend for inspecting renders without a raster viewer.

use crate::display_list::{DisplayList, DrawOp};
use std::fmt::Write as _;

/// Renders a display list to a standalone SVG document.
///
/// The y axis is flipped (SVG is y-down, layouts y-up) and the viewBox
/// covers the list's bounding box with a small margin. An empty list
/// produces a tiny valid document.
pub fn to_svg(list: &DisplayList) -> String {
    let bb = list
        .bounding_box()
        .unwrap_or(riot_geom::Rect::new(0, 0, 100, 100));
    let margin = (bb.width().max(bb.height()) / 20).max(10);
    let x0 = bb.x0 - margin;
    let y0 = bb.y0 - margin;
    let w = bb.width() + 2 * margin;
    let h = bb.height() + 2 * margin;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{x0} {} {w} {h}\">",
        -(y0 + h)
    );
    let _ = writeln!(
        out,
        "<rect x=\"{x0}\" y=\"{}\" width=\"{w}\" height=\"{h}\" fill=\"black\"/>",
        -(y0 + h)
    );
    // Flip y by emitting all coordinates negated.
    let sw = (w / 400).max(4); // stroke width scaled to the drawing
    for op in list.ops() {
        match op {
            DrawOp::Line { from, to, color } => {
                let _ = writeln!(
                    out,
                    "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{color}\" stroke-width=\"{sw}\"/>",
                    from.x, -from.y, to.x, -to.y
                );
            }
            DrawOp::Rect { rect, color } => {
                let _ = writeln!(
                    out,
                    "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{sw}\"/>",
                    rect.x0,
                    -rect.y1,
                    rect.width(),
                    rect.height()
                );
            }
            DrawOp::FillRect { rect, color } => {
                let _ = writeln!(
                    out,
                    "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{color}\" fill-opacity=\"0.55\"/>",
                    rect.x0,
                    -rect.y1,
                    rect.width(),
                    rect.height()
                );
            }
            DrawOp::Cross { center, arm, color } => {
                let _ = writeln!(
                    out,
                    "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{color}\" stroke-width=\"{sw}\"/>",
                    center.x - arm,
                    -center.y,
                    center.x + arm,
                    -center.y
                );
                let _ = writeln!(
                    out,
                    "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{color}\" stroke-width=\"{sw}\"/>",
                    center.x,
                    -(center.y - arm),
                    center.x,
                    -(center.y + arm)
                );
            }
            DrawOp::Text { at, text, color } => {
                let escaped = text
                    .replace('&', "&amp;")
                    .replace('<', "&lt;")
                    .replace('>', "&gt;");
                let _ = writeln!(
                    out,
                    "<text x=\"{}\" y=\"{}\" fill=\"{color}\" font-size=\"{}\" font-family=\"monospace\">{escaped}</text>",
                    at.x,
                    -at.y,
                    sw * 12
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use riot_geom::{Point, Rect};

    #[test]
    fn valid_skeleton() {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Rect {
            rect: Rect::new(0, 0, 500, 500),
            color: Color::WHITE,
        });
        dl.push(DrawOp::Text {
            at: Point::new(10, 10),
            text: "a<b&c".into(),
            color: Color::WHITE,
        });
        let svg = to_svg(&dl);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("a&lt;b&amp;c"));
        assert_eq!(svg.matches("<rect").count(), 2); // background + op
    }

    #[test]
    fn empty_list_is_valid() {
        let svg = to_svg(&DisplayList::new());
        assert!(svg.contains("viewBox"));
    }

    #[test]
    fn cross_becomes_two_lines() {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Cross {
            center: Point::new(100, 100),
            arm: 20,
            color: Color::new(220, 0, 0),
        });
        let svg = to_svg(&dl);
        assert_eq!(svg.matches("<line").count(), 2);
        assert!(svg.contains("#dc0000"));
    }
}
