//! Device-independent raster primitives over any pixel sink.
//!
//! The drawing algorithms (Bresenham lines, rect fills, connector
//! crosses, bitmap text) used to live as inherent methods on
//! [`Framebuffer`](crate::Framebuffer). They are now free functions
//! over the [`PixelSink`] trait so the same code can paint either a
//! whole framebuffer or a [`Band`] — a horizontal slice of one — which
//! is what lets [`crate::display_list::render_ops_banded`] rasterize
//! bands in parallel without overlapping writes.

use crate::color::Color;
use crate::font;

/// Anything pixels can be written into.
///
/// Coordinates are always **full-screen** coordinates `(x right, y up)`;
/// a sink may own only a sub-range of rows (see [`Band`]) and silently
/// clips writes outside it. This keeps the primitives oblivious to how
/// the target storage is partitioned.
pub trait PixelSink {
    /// Full screen width in pixels.
    fn width(&self) -> usize;
    /// Full screen height in pixels.
    fn height(&self) -> usize;
    /// Lowest y (inclusive) this sink owns.
    fn y_min(&self) -> i64 {
        0
    }
    /// Highest y (inclusive) this sink owns.
    fn y_max(&self) -> i64 {
        self.height() as i64 - 1
    }
    /// Writes one pixel; writes outside the sink's extent are clipped.
    fn set(&mut self, x: i64, y: i64, color: Color);
}

/// Draws a line with Bresenham's algorithm (any slope).
pub fn draw_line(sink: &mut impl PixelSink, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
    let (mut x, mut y) = (x0, y0);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        sink.set(x, y, color);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Draws an axis-aligned rectangle outline.
pub fn draw_rect(sink: &mut impl PixelSink, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
    draw_line(sink, x0, y0, x1, y0, color);
    draw_line(sink, x1, y0, x1, y1, color);
    draw_line(sink, x1, y1, x0, y1, color);
    draw_line(sink, x0, y1, x0, y0, color);
}

/// Fills an axis-aligned rectangle (inclusive bounds), clipped to the
/// sink's extent. The row loop intersects with the sink's owned y-range
/// up front, so filling through a narrow [`Band`] costs only the rows
/// the band actually owns.
pub fn fill_rect(sink: &mut impl PixelSink, x0: i64, y0: i64, x1: i64, y1: i64, color: Color) {
    let (x0, x1) = (x0.min(x1), x0.max(x1));
    let (y0, y1) = (y0.min(y1), y0.max(y1));
    let y_lo = y0.max(sink.y_min()).max(0);
    let y_hi = y1.min(sink.y_max()).min(sink.height() as i64 - 1);
    let x_lo = x0.max(0);
    let x_hi = x1.min(sink.width() as i64 - 1);
    for y in y_lo..=y_hi {
        for x in x_lo..=x_hi {
            sink.set(x, y, color);
        }
    }
}

/// Draws a connector cross of the given half-arm length — "the size and
/// color of the connector crosses indicates width and layer".
pub fn draw_cross(sink: &mut impl PixelSink, x: i64, y: i64, arm: i64, color: Color) {
    draw_line(sink, x - arm, y, x + arm, y, color);
    draw_line(sink, x, y - arm, x, y + arm, color);
}

/// Draws text with the 5×7 font, lower-left corner at `(x, y)`.
pub fn draw_text(sink: &mut impl PixelSink, x: i64, y: i64, text: &str, color: Color) {
    let mut cx = x;
    for c in text.chars() {
        let rows = font::glyph(c);
        for (ry, row) in rows.iter().enumerate() {
            for bit in 0..font::GLYPH_WIDTH {
                if row & (1 << (font::GLYPH_WIDTH - 1 - bit)) != 0 {
                    // Row 0 of the glyph is the top.
                    sink.set(
                        cx + bit as i64,
                        y + (font::GLYPH_HEIGHT - 1 - ry) as i64,
                        color,
                    );
                }
            }
        }
        cx += font::ADVANCE as i64;
    }
}

/// A mutable view over a contiguous run of framebuffer rows.
///
/// Bands partition the framebuffer: each pixel belongs to exactly one
/// band, so disjoint bands can be painted from different threads with
/// no synchronization. Writes outside the band's rows are clipped by
/// [`PixelSink::set`], which is what makes rendering the *same* draw
/// op into several adjacent bands deterministic — each band keeps only
/// the pixels it owns.
#[derive(Debug)]
pub struct Band<'a> {
    rows: &'a mut [Color],
    width: usize,
    full_height: usize,
    y_start: usize,
}

impl<'a> Band<'a> {
    pub(crate) fn new(
        rows: &'a mut [Color],
        width: usize,
        full_height: usize,
        y_start: usize,
    ) -> Self {
        debug_assert!(
            rows.len().is_multiple_of(width),
            "band must hold whole rows"
        );
        Band {
            rows,
            width,
            full_height,
            y_start,
        }
    }

    /// Number of rows this band owns.
    pub fn rows(&self) -> usize {
        self.rows.len() / self.width
    }

    /// Full-screen y coordinate of the band's first row.
    pub fn y_start(&self) -> usize {
        self.y_start
    }

    /// Fills every pixel the band owns with one color — the erase step
    /// of a dirty-band repaint.
    pub fn clear(&mut self, color: Color) {
        self.rows.fill(color);
    }
}

impl PixelSink for Band<'_> {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.full_height
    }

    fn y_min(&self) -> i64 {
        self.y_start as i64
    }

    fn y_max(&self) -> i64 {
        (self.y_start + self.rows() - 1) as i64
    }

    fn set(&mut self, x: i64, y: i64, color: Color) {
        if x < 0 || x >= self.width as i64 || y < self.y_min() || y > self.y_max() {
            return;
        }
        self.rows[(y as usize - self.y_start) * self.width + x as usize] = color;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framebuffer::Framebuffer;

    /// Every primitive drawn band-by-band must equal the same primitive
    /// drawn straight into a whole framebuffer.
    #[test]
    fn banded_drawing_matches_whole_framebuffer() {
        let draw = |sink: &mut dyn FnMut(&str, i64, i64, i64, i64)| {
            sink("line", 1, 1, 30, 25);
            sink("rect", 4, 3, 20, 28);
            sink("fill", 8, 10, 26, 22);
            sink("cross", 16, 16, 6, 0);
            sink("text", 2, 24, 0, 0);
        };

        let mut reference = Framebuffer::new(32, 32);
        {
            let fb = &mut reference;
            draw(&mut |kind, a, b, c, d| match kind {
                "line" => fb.draw_line(a, b, c, d, Color::WHITE),
                "rect" => fb.draw_rect(a, b, c, d, Color::new(200, 0, 0)),
                "fill" => fb.fill_rect(a, b, c, d, Color::new(0, 0, 200)),
                "cross" => fb.draw_cross(a, b, c, Color::new(0, 200, 0)),
                _ => fb.draw_text(a, b, "RIOT", Color::WHITE),
            });
        }

        let mut banded = Framebuffer::new(32, 32);
        for band in &mut banded.bands_mut(5) {
            draw(&mut |kind, a, b, c, d| match kind {
                "line" => draw_line(band, a, b, c, d, Color::WHITE),
                "rect" => draw_rect(band, a, b, c, d, Color::new(200, 0, 0)),
                "fill" => fill_rect(band, a, b, c, d, Color::new(0, 0, 200)),
                "cross" => draw_cross(band, a, b, c, Color::new(0, 200, 0)),
                _ => draw_text(band, a, b, "RIOT", Color::WHITE),
            });
        }

        assert_eq!(banded, reference);
    }

    #[test]
    fn bands_partition_the_screen() {
        let mut fb = Framebuffer::new(8, 21);
        let bands = fb.bands_mut(8);
        assert_eq!(bands.len(), 3);
        assert_eq!(
            bands.iter().map(|b| b.rows()).collect::<Vec<_>>(),
            vec![8, 8, 5]
        );
        assert_eq!(bands[1].y_start(), 8);
        assert_eq!(bands[2].y_max(), 20);
    }

    #[test]
    fn band_clips_rows_it_does_not_own() {
        let mut fb = Framebuffer::new(4, 8);
        {
            let mut bands = fb.bands_mut(4);
            // Paint everything into the *second* band only.
            fill_rect(&mut bands[1], 0, 0, 3, 7, Color::WHITE);
        }
        assert_eq!(fb.lit_pixels(), 16, "only the band's 4 rows light up");
        assert_eq!(fb.get(0, 0), Some(Color::BLACK));
        assert_eq!(fb.get(0, 4), Some(Color::WHITE));
    }
}
