//! The RIOT graphics package.
//!
//! The paper's Riot carried a 4000-line graphics package driving two
//! workstations: the "Charles" color raster terminal (with a Xerox mouse
//! and an HP 7221A four-color pen plotter) and the low-cost DEC GIGI
//! terminal (with a Summagraphics BitPad). None of that hardware exists
//! here, so this crate models it (see DESIGN.md §2):
//!
//! * [`Framebuffer`] — an in-memory RGB raster with Bresenham lines,
//!   rectangles, connector crosses and a 5×7 bitmap font;
//! * [`Viewport`] — the zoom/pan mapping from layout centimicrons to
//!   screen pixels (Riot's zooming and panning commands);
//! * [`DisplayList`] — resolution-independent draw ops in world
//!   coordinates, renderable to any backend;
//! * [`device`] — the Charles and GIGI terminal models (resolution and
//!   palette), which quantize colors like the real hardware;
//! * [`svg`] and [`plotter`] — vector backends: SVG for inspection and
//!   an HPGL-like pen-command stream standing in for the HP 7221A;
//! * PPM export for raster inspection.
//!
//! # Example
//!
//! ```
//! use riot_graphics::{Color, DisplayList, DrawOp, Viewport};
//! use riot_geom::{Point, Rect};
//!
//! let mut list = DisplayList::new();
//! list.push(DrawOp::Rect {
//!     rect: Rect::new(0, 0, 5000, 2500),
//!     color: Color::new(64, 64, 255),
//! });
//! let device = riot_graphics::device::charles();
//! let viewport = Viewport::fit(Rect::new(0, 0, 5000, 2500), device.width(), device.height());
//! let mut fb = device.framebuffer();
//! list.render(&viewport, &mut fb);
//! assert!(fb.to_ppm().starts_with(b"P6"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod device;
pub mod display_list;
pub mod font;
pub mod framebuffer;
pub mod plotter;
pub mod raster;
pub mod svg;
pub mod viewport;

pub use color::Color;
pub use device::PaletteLut;
pub use display_list::{
    op_damage_bbox, render_ops_banded, render_ops_damaged, DisplayList, DrawOp, RenderCache,
};
pub use framebuffer::Framebuffer;
pub use raster::{Band, PixelSink};
pub use viewport::Viewport;
