//! HP 7221A pen-plotter emulation.
//!
//! The Charles workstation drove a "Hewlett-Packard 7221A four-color pen
//! plotter" for hardcopy. This backend walks a display list and emits an
//! HPGL-like pen command stream (`SP` select pen, `PU` pen up move,
//! `PD` pen down move), mapping colors to the nearest of the four pens.
//! Text is drawn as a labelled `LB` command like HPGL's.

use crate::color::Color;
use crate::display_list::{DisplayList, DrawOp};
use std::fmt::Write as _;

/// The four pens loaded in the plotter carousel.
pub const PENS: [(u8, Color); 4] = [
    (1, Color::BLACK),
    (2, Color::new(220, 0, 0)),
    (3, Color::new(0, 160, 0)),
    (4, Color::new(64, 64, 255)),
];

/// A recorded plot: the command stream plus pen usage statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plot {
    /// The HPGL-like command text.
    pub commands: String,
    /// Number of pen-down strokes per pen (index 0 = pen 1).
    pub strokes_per_pen: [usize; 4],
    /// Total pen-down distance in plotter units (centimicrons here).
    pub pen_travel: i64,
}

fn pen_for(color: Color) -> u8 {
    PENS.iter()
        .min_by_key(|(_, c)| color.distance2(*c))
        .expect("non-empty pen set")
        .0
}

/// Plots a display list, producing the pen command stream.
pub fn plot(list: &DisplayList) -> Plot {
    let mut commands = String::from("IN;\n");
    let mut strokes = [0usize; 4];
    let mut travel = 0i64;
    let mut current_pen = 0u8;

    let mut select = |pen: u8, out: &mut String| {
        if pen != current_pen {
            let _ = writeln!(out, "SP{pen};");
            current_pen = pen;
        }
    };

    for op in list.ops() {
        match op {
            DrawOp::Line { from, to, color } => {
                let pen = pen_for(*color);
                select(pen, &mut commands);
                let _ = writeln!(commands, "PU{},{};PD{},{};", from.x, from.y, to.x, to.y);
                strokes[pen as usize - 1] += 1;
                travel += from.manhattan(*to);
            }
            DrawOp::Rect { rect, color } | DrawOp::FillRect { rect, color } => {
                let pen = pen_for(*color);
                select(pen, &mut commands);
                let _ = writeln!(
                    commands,
                    "PU{},{};PD{},{},{},{},{},{},{},{};",
                    rect.x0,
                    rect.y0,
                    rect.x1,
                    rect.y0,
                    rect.x1,
                    rect.y1,
                    rect.x0,
                    rect.y1,
                    rect.x0,
                    rect.y0
                );
                strokes[pen as usize - 1] += 1;
                travel += 2 * (rect.width() + rect.height());
            }
            DrawOp::Cross { center, arm, color } => {
                let pen = pen_for(*color);
                select(pen, &mut commands);
                let _ = writeln!(
                    commands,
                    "PU{},{};PD{},{};PU{},{};PD{},{};",
                    center.x - arm,
                    center.y,
                    center.x + arm,
                    center.y,
                    center.x,
                    center.y - arm,
                    center.x,
                    center.y + arm
                );
                strokes[pen as usize - 1] += 2;
                travel += 4 * arm;
            }
            DrawOp::Text { at, text, color } => {
                let pen = pen_for(*color);
                select(pen, &mut commands);
                let _ = writeln!(commands, "PU{},{};LB{text}\x03;", at.x, at.y);
                strokes[pen as usize - 1] += 1;
            }
        }
    }
    commands.push_str("SP0;\n");
    Plot {
        commands,
        strokes_per_pen: strokes,
        pen_travel: travel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::{Point, Rect};

    #[test]
    fn pen_selection_nearest() {
        assert_eq!(pen_for(Color::new(250, 10, 10)), 2);
        assert_eq!(pen_for(Color::new(10, 10, 10)), 1);
        assert_eq!(pen_for(Color::new(60, 60, 250)), 4);
    }

    #[test]
    fn plot_structure() {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Line {
            from: Point::new(0, 0),
            to: Point::new(100, 0),
            color: Color::new(220, 0, 0),
        });
        dl.push(DrawOp::Rect {
            rect: Rect::new(0, 0, 10, 10),
            color: Color::new(220, 0, 0),
        });
        let p = plot(&dl);
        assert!(p.commands.starts_with("IN;\n"));
        assert!(p.commands.ends_with("SP0;\n"));
        // Only one pen change — both ops use the red pen.
        assert_eq!(p.commands.matches("SP2;").count(), 1);
        assert_eq!(p.strokes_per_pen[1], 2);
        assert_eq!(p.pen_travel, 100 + 40);
    }

    #[test]
    fn text_labels() {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Text {
            at: Point::new(5, 5),
            text: "NAND".into(),
            color: Color::BLACK,
        });
        let p = plot(&dl);
        assert!(p.commands.contains("LBNAND"));
    }

    #[test]
    fn empty_plot() {
        let p = plot(&DisplayList::new());
        assert_eq!(p.strokes_per_pen, [0; 4]);
        assert_eq!(p.pen_travel, 0);
    }
}
