//! RGB colors and layer color lookup.

use riot_geom::Layer;
use std::fmt;

/// An 8-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Color {
    /// Red component.
    pub r: u8,
    /// Green component.
    pub g: u8,
    /// Blue component.
    pub b: u8,
}

impl Color {
    /// Black.
    pub const BLACK: Color = Color { r: 0, g: 0, b: 0 };
    /// White.
    pub const WHITE: Color = Color {
        r: 255,
        g: 255,
        b: 255,
    };

    /// Creates a color from components.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// The conventional display color of a mask layer.
    pub fn of_layer(layer: Layer) -> Color {
        let (r, g, b) = layer.color();
        Color { r, g, b }
    }

    /// Squared Euclidean distance to another color (for palette
    /// quantization).
    pub fn distance2(self, other: Color) -> u32 {
        let dr = self.r as i32 - other.r as i32;
        let dg = self.g as i32 - other.g as i32;
        let db = self.b as i32 - other.b as i32;
        (dr * dr + dg * dg + db * db) as u32
    }

    /// The nearest color in `palette`.
    ///
    /// # Panics
    ///
    /// Panics if the palette is empty.
    pub fn quantize(self, palette: &[Color]) -> Color {
        *palette
            .iter()
            .min_by_key(|c| self.distance2(**c))
            .expect("palette must not be empty")
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_colors_distinct() {
        let mut seen = std::collections::HashSet::new();
        for l in Layer::ALL {
            assert!(seen.insert(Color::of_layer(l)));
        }
    }

    #[test]
    fn quantize_picks_nearest() {
        let palette = [Color::BLACK, Color::WHITE, Color::new(255, 0, 0)];
        assert_eq!(
            Color::new(250, 10, 10).quantize(&palette),
            Color::new(255, 0, 0)
        );
        assert_eq!(Color::new(10, 10, 10).quantize(&palette), Color::BLACK);
    }

    #[test]
    fn distance_zero_to_self() {
        let c = Color::new(12, 200, 3);
        assert_eq!(c.distance2(c), 0);
    }

    #[test]
    fn display_hex() {
        assert_eq!(Color::new(255, 0, 16).to_string(), "#ff0010");
    }
}
