//! Models of the two workstation display devices.
//!
//! Figure 1 of the paper shows the two configurations: the "Charles"
//! color terminal ("a high resolution color raster display device")
//! driven with an HP 7221A plotter and Xerox mouse, and the low-cost
//! DEC GIGI terminal with a Summagraphics BitPad. The real hardware is
//! modeled as a resolution + palette; rendering to a device quantizes
//! colors to its palette exactly like the terminals did.

use crate::color::Color;
use crate::display_list::{render_ops_banded, DisplayList, DrawOp};
use crate::framebuffer::Framebuffer;
use crate::viewport::Viewport;
use std::collections::HashMap;

/// A precomputed palette-quantization table.
///
/// Display lists reuse a handful of layer colors across thousands of
/// ops; quantizing each *distinct* color once and looking the result up
/// replaces the per-op nearest-palette-entry scan the render loop used
/// to do (`O(ops × palette)` → `O(colors × palette + ops)`).
#[derive(Debug, Clone)]
pub struct PaletteLut {
    map: HashMap<Color, Color>,
}

impl PaletteLut {
    /// Builds the table for every distinct color appearing in `ops`.
    pub fn for_ops(ops: &[DrawOp], palette: &[Color]) -> Self {
        let mut map = HashMap::new();
        for op in ops {
            let c = op.color();
            map.entry(c).or_insert_with(|| c.quantize(palette));
        }
        PaletteLut { map }
    }

    /// The palette color for `c`; colors absent from the table fall
    /// back to themselves.
    pub fn quantize(&self, c: Color) -> Color {
        self.map.get(&c).copied().unwrap_or(c)
    }

    /// Number of distinct colors in the table.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A display device: a resolution and a fixed palette.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    name: &'static str,
    width: usize,
    height: usize,
    palette: Vec<Color>,
}

impl Device {
    /// Device name as the paper gives it.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Horizontal resolution.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Vertical resolution.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The fixed hardware palette.
    pub fn palette(&self) -> &[Color] {
        &self.palette
    }

    /// A fresh framebuffer at the device's resolution.
    pub fn framebuffer(&self) -> Framebuffer {
        Framebuffer::new(self.width, self.height)
    }

    /// Renders a display list at the device's resolution with its
    /// palette, fitting the whole list on screen.
    ///
    /// Colors are quantized through a precomputed [`PaletteLut`] and
    /// the framebuffer is painted in parallel horizontal bands (see
    /// [`render_ops_banded`]); the output is pixel-identical at any
    /// thread count.
    pub fn render(&self, list: &DisplayList) -> Framebuffer {
        let _sp = riot_trace::span!("gfx.render", ops = list.ops().len() as u64);
        let mut fb = self.framebuffer();
        if let Some(bb) = list.bounding_box() {
            let vp = Viewport::fit(bb, self.width, self.height);
            let lut = PaletteLut::for_ops(list.ops(), &self.palette);
            riot_trace::registry()
                .counter("gfx.palette.lut.colors")
                .add(lut.len() as u64);
            let quantized: Vec<DrawOp> = list
                .ops()
                .iter()
                .map(|op| op.with_color(lut.quantize(op.color())))
                .collect();
            render_ops_banded(&quantized, &vp, &mut fb);
        }
        fb
    }
}

/// The full-color palette shared by both devices' basic colors.
fn base_palette() -> Vec<Color> {
    vec![
        Color::BLACK,
        Color::new(220, 0, 0),   // red (poly)
        Color::new(0, 160, 0),   // green (diffusion)
        Color::new(64, 64, 255), // blue (metal)
        Color::new(200, 180, 0), // yellow (implant)
        Color::new(0, 200, 200), // cyan
        Color::new(200, 0, 200), // magenta
        Color::WHITE,
    ]
}

/// The "Charles" color terminal: high-resolution raster, 16 colors.
pub fn charles() -> Device {
    let mut palette = base_palette();
    // Half-intensity second bank, as raster terminals of the era had.
    let dims: Vec<Color> = palette
        .iter()
        .map(|c| Color::new(c.r / 2, c.g / 2, c.b / 2))
        .collect();
    palette.extend(dims);
    Device {
        name: "Charles",
        width: 512,
        height: 480,
        palette,
    }
}

/// The DEC GIGI terminal: lower resolution, 8 simultaneous colors.
pub fn gigi() -> Device {
    Device {
        name: "GIGI",
        width: 768,
        height: 240,
        palette: base_palette(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display_list::DrawOp;
    use riot_geom::Rect;

    #[test]
    fn device_specs() {
        let c = charles();
        assert_eq!(c.name(), "Charles");
        assert_eq!((c.width(), c.height()), (512, 480));
        assert_eq!(c.palette().len(), 16);
        let g = gigi();
        assert_eq!(g.name(), "GIGI");
        assert_eq!(g.palette().len(), 8);
        assert!(g.width() > g.height());
    }

    #[test]
    fn render_quantizes_to_palette() {
        let mut list = DisplayList::new();
        list.push(DrawOp::FillRect {
            rect: Rect::new(0, 0, 1000, 1000),
            color: Color::new(70, 60, 250), // near metal blue
        });
        let fb = gigi().render(&list);
        assert!(fb.lit_pixels() > 0);
        // Every lit pixel is a palette color.
        for y in 0..fb.height() as i64 {
            for x in 0..fb.width() as i64 {
                let c = fb.get(x, y).unwrap();
                assert!(gigi().palette().contains(&c));
            }
        }
    }

    #[test]
    fn empty_list_renders_black() {
        let fb = charles().render(&DisplayList::new());
        assert_eq!(fb.lit_pixels(), 0);
    }
}
