//! Differential property test: the band-parallel rasterizer must be
//! pixel-identical to the sequential display-list renderer on random
//! op soups, at every thread count.

use proptest::prelude::*;
use riot_geom::{par, Point, Rect};
use riot_graphics::{render_ops_banded, Color, DisplayList, DrawOp, Framebuffer, Viewport};

fn arb_ops() -> impl Strategy<Value = Vec<DrawOp>> {
    (1u64..1_000_000, 1usize..60).prop_map(|(seed, n)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let x = (next() % 2000) as i64 - 1000;
                let y = (next() % 2000) as i64 - 1000;
                let w = (next() % 800) as i64 + 1;
                let h = (next() % 600) as i64 + 1;
                let color = Color::new(next() as u8, next() as u8, next() as u8);
                match next() % 5 {
                    0 => DrawOp::Line {
                        from: Point::new(x, y),
                        to: Point::new(x + w, y - h),
                        color,
                    },
                    1 => DrawOp::Rect {
                        rect: Rect::new(x, y, x + w, y + h),
                        color,
                    },
                    2 => DrawOp::FillRect {
                        rect: Rect::new(x, y, x + w, y + h),
                        color,
                    },
                    3 => DrawOp::Cross {
                        center: Point::new(x, y),
                        arm: (next() % 200) as i64 + 10,
                        color,
                    },
                    _ => DrawOp::Text {
                        at: Point::new(x, y),
                        text: "NET".into(),
                        color,
                    },
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn banded_equals_sequential(ops in arb_ops()) {
        let list: DisplayList = ops.iter().cloned().collect();
        let vp = Viewport::fit(list.bounding_box().unwrap(), 120, 80);
        let mut reference = Framebuffer::new(120, 80);
        list.render(&vp, &mut reference);
        for t in [1usize, 2, 4] {
            par::set_threads(t);
            let mut fb = Framebuffer::new(120, 80);
            render_ops_banded(&ops, &vp, &mut fb);
            par::set_threads(0);
            prop_assert_eq!(&fb, &reference, "threads = {}", t);
        }
    }
}
