//! Differential property tests: the band-parallel rasterizer and the
//! damage-driven partial repaint must be pixel-identical to the
//! sequential display-list renderer on random op soups, at every
//! thread count.

use proptest::prelude::*;
use riot_geom::{par, Point, Rect};
use riot_graphics::{
    op_damage_bbox, render_ops_banded, render_ops_damaged, Color, DisplayList, DrawOp, Framebuffer,
    RenderCache, Viewport,
};

fn arb_ops() -> impl Strategy<Value = Vec<DrawOp>> {
    (1u64..1_000_000, 1usize..60).prop_map(|(seed, n)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let x = (next() % 2000) as i64 - 1000;
                let y = (next() % 2000) as i64 - 1000;
                let w = (next() % 800) as i64 + 1;
                let h = (next() % 600) as i64 + 1;
                let color = Color::new(next() as u8, next() as u8, next() as u8);
                match next() % 5 {
                    0 => DrawOp::Line {
                        from: Point::new(x, y),
                        to: Point::new(x + w, y - h),
                        color,
                    },
                    1 => DrawOp::Rect {
                        rect: Rect::new(x, y, x + w, y + h),
                        color,
                    },
                    2 => DrawOp::FillRect {
                        rect: Rect::new(x, y, x + w, y + h),
                        color,
                    },
                    3 => DrawOp::Cross {
                        center: Point::new(x, y),
                        arm: (next() % 200) as i64 + 10,
                        color,
                    },
                    _ => DrawOp::Text {
                        at: Point::new(x, y),
                        text: "NET".into(),
                        color,
                    },
                }
            })
            .collect()
    })
}

/// The same world extent [`DisplayList::bounding_box`] assigns one op
/// — what a damage-reporting editor knows about it.
fn op_world_bbox(op: &DrawOp) -> Rect {
    match op {
        DrawOp::Line { from, to, .. } => Rect::from_points(*from, *to),
        DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => *rect,
        DrawOp::Cross { center, arm, .. } => Rect::from_center(*center, 2 * arm, 2 * arm),
        DrawOp::Text { at, .. } => Rect::at_point(*at),
    }
}

/// Translates an op by a world delta.
fn op_translated(op: &DrawOp, d: Point) -> DrawOp {
    let mut op = op.clone();
    match &mut op {
        DrawOp::Line { from, to, .. } => {
            *from += d;
            *to += d;
        }
        DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => *rect = rect.translated(d),
        DrawOp::Cross { center, .. } => *center += d,
        DrawOp::Text { at, .. } => *at += d,
    }
    op
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn banded_equals_sequential(ops in arb_ops()) {
        let list: DisplayList = ops.iter().cloned().collect();
        let vp = Viewport::fit(list.bounding_box().unwrap(), 120, 80);
        let mut reference = Framebuffer::new(120, 80);
        list.render(&vp, &mut reference);
        for t in [1usize, 2, 4] {
            par::set_threads(t);
            let mut fb = Framebuffer::new(120, 80);
            render_ops_banded(&ops, &vp, &mut fb);
            par::set_threads(0);
            prop_assert_eq!(&fb, &reference, "threads = {}", t);
        }
    }

    /// Damage-driven repaint is pixel-identical to a full render after
    /// random edit sequences (moves, recolors, deletions, additions),
    /// with damage reported exactly as the editor would: the changed
    /// op's old and new world bounding boxes.
    #[test]
    fn damaged_repaint_equals_full_render(
        ops in arb_ops(),
        edit_seed in 1u64..1_000_000,
        edits in 1usize..5,
        threads in 1usize..5,
    ) {
        let mut ops = ops;
        let list: DisplayList = ops.iter().cloned().collect();
        let vp = Viewport::fit(list.bounding_box().unwrap(), 120, 80);
        par::set_threads(threads);
        let mut retained = Framebuffer::new(120, 80);
        render_ops_banded(&ops, &vp, &mut retained);
        // A second retained framebuffer driven through the long-lived
        // cache, synced per edit instead of rebuilt per repaint.
        let mut cache = RenderCache::build(&ops, &vp);
        let mut cached_fb = retained.clone();

        let mut s = edit_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..edits {
            let mut dirty: Vec<Rect> = Vec::new();
            let mut changed: Vec<usize> = Vec::new();
            match next() % 4 {
                0 if !ops.is_empty() => {
                    let i = (next() as usize) % ops.len();
                    dirty.push(op_world_bbox(&ops[i]));
                    let d = Point::new(
                        (next() % 1000) as i64 - 500,
                        (next() % 1000) as i64 - 500,
                    );
                    ops[i] = op_translated(&ops[i], d);
                    dirty.push(op_world_bbox(&ops[i]));
                    changed.push(i);
                }
                1 if !ops.is_empty() => {
                    let i = (next() as usize) % ops.len();
                    ops[i] = ops[i].with_color(Color::new(next() as u8, 200, next() as u8));
                    dirty.push(op_world_bbox(&ops[i]));
                    changed.push(i);
                }
                2 if ops.len() > 1 => {
                    // A removed op's fixed-pixel overhang (text, min-arm
                    // crosses) is invisible to the stateless repaint, so
                    // removal damage covers its full pixel footprint.
                    let i = (next() as usize) % ops.len();
                    dirty.push(op_damage_bbox(&ops[i], &vp));
                    ops.remove(i);
                    // Length changed: sync falls back to a rebuild.
                }
                _ => {
                    let x = (next() % 2000) as i64 - 1000;
                    let y = (next() % 2000) as i64 - 1000;
                    let op = DrawOp::FillRect {
                        rect: Rect::new(x, y, x + 300, y + 200),
                        color: Color::new(10, next() as u8, 240),
                    };
                    dirty.push(op_world_bbox(&op));
                    ops.push(op);
                }
            }
            render_ops_damaged(&ops, &vp, &mut retained, &dirty);
            cache.sync(&ops, &vp, &changed);
            cache.render(&ops, &mut cached_fb, &dirty);
            let mut full = Framebuffer::new(120, 80);
            render_ops_banded(&ops, &vp, &mut full);
            prop_assert_eq!(&retained, &full, "one-shot, threads = {}", threads);
            prop_assert_eq!(&cached_fb, &full, "retained cache, threads = {}", threads);
        }
        par::set_threads(0);
    }
}
