//! Property tests for the graphics package: viewport mappings,
//! framebuffer clipping, device quantization, plotter bookkeeping.

use proptest::prelude::*;
use riot_geom::{Point, Rect};
use riot_graphics::{Color, DisplayList, DrawOp, Framebuffer, Viewport};

fn arb_point() -> impl Strategy<Value = Point> {
    (-500_000i64..500_000, -500_000i64..500_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_window() -> impl Strategy<Value = Rect> {
    (arb_point(), 100i64..1_000_000, 100i64..1_000_000)
        .prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn screen_mapping_is_monotone(win in arb_window(), a in arb_point(), b in arb_point()) {
        let vp = Viewport::new(win, 256, 256);
        let (ax, ay) = vp.to_screen(a);
        let (bx, by) = vp.to_screen(b);
        if a.x <= b.x {
            prop_assert!(ax <= bx);
        }
        if a.y <= b.y {
            prop_assert!(ay <= by);
        }
    }

    #[test]
    fn world_round_trip_error_bounded(win in arb_window(), p in arb_point()) {
        let vp = Viewport::new(win, 200, 200);
        let (sx, sy) = vp.to_screen(p);
        let q = vp.to_world(sx, sy);
        // One pixel in each axis, plus integer truncation.
        let tol = win.width() / 200 + win.height() / 200 + 2;
        prop_assert!(p.manhattan(q) <= tol, "{} -> {} tol {}", p, q, tol);
    }

    #[test]
    fn zoom_round_trip_restores_window(win in arb_window(), num in 1i64..6) {
        let vp = Viewport::new(win, 128, 128);
        let back = vp.zoomed(num, 1).zoomed(1, num);
        // The size returns to within the integer-division loss and the
        // center drifts at most a couple of units per floor per axis.
        prop_assert!((back.window().width() - win.width()).abs() <= num);
        prop_assert!((back.window().height() - win.height()).abs() <= num);
        prop_assert!(back.window().center().manhattan(win.center()) <= 2 * num + 4);
    }

    #[test]
    fn fit_always_contains_content(content in arb_window(), w in 64usize..512, h in 64usize..512) {
        let vp = Viewport::fit(content, w, h);
        prop_assert!(vp.window().contains_rect(content));
    }

    #[test]
    fn out_of_bounds_draws_never_panic(
        segs in prop::collection::vec((arb_point(), arb_point()), 1..12)
    ) {
        let mut fb = Framebuffer::new(64, 64);
        for (a, b) in segs {
            // Wildly out-of-range coordinates must clip, not panic.
            fb.draw_line(a.x % 10_000, a.y % 10_000, b.x % 10_000, b.y % 10_000, Color::WHITE);
        }
        prop_assert!(fb.lit_pixels() <= 64 * 64);
    }

    #[test]
    fn device_render_stays_in_palette(rects in prop::collection::vec(arb_window(), 1..6)) {
        let mut list = DisplayList::new();
        for (i, r) in rects.iter().enumerate() {
            let c = match i % 3 {
                0 => Color::new(200, 40, 40),
                1 => Color::new(40, 200, 40),
                _ => Color::new(90, 90, 230),
            };
            list.push(DrawOp::FillRect { rect: *r, color: c });
        }
        let dev = riot_graphics::device::gigi();
        let fb = dev.render(&list);
        for y in (0..fb.height() as i64).step_by(17) {
            for x in (0..fb.width() as i64).step_by(13) {
                let c = fb.get(x, y).expect("in bounds");
                prop_assert!(dev.palette().contains(&c), "{} not in palette", c);
            }
        }
    }

    #[test]
    fn plot_travel_matches_geometry(lines in prop::collection::vec((arb_point(), arb_point()), 1..10)) {
        let mut list = DisplayList::new();
        let mut expect = 0i64;
        for (a, b) in &lines {
            list.push(DrawOp::Line { from: *a, to: *b, color: Color::BLACK });
            expect += a.manhattan(*b);
        }
        let plot = riot_graphics::plotter::plot(&list);
        prop_assert_eq!(plot.pen_travel, expect);
        prop_assert_eq!(plot.strokes_per_pen.iter().sum::<usize>(), lines.len());
    }

    #[test]
    fn ppm_size_is_exact(w in 1usize..80, h in 1usize..80) {
        let fb = Framebuffer::new(w, h);
        let ppm = fb.to_ppm();
        let header = format!("P6\n{w} {h}\n255\n");
        prop_assert_eq!(ppm.len(), header.len() + 3 * w * h);
    }
}
