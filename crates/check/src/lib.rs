//! `riot-check`: the model-based conformance and fault-injection
//! harness for the RIOT reproduction.
//!
//! The harness drives the real [`riot_core::Editor`] with seeded
//! streams of editing commands while a small, obviously-correct
//! [`model::Model`] runs in lockstep. After every command the two are
//! compared on everything a user can observe — the cell menu, the
//! instance slots and their independently recomputed world connectors
//! and bounding boxes, the pending connection list, and the undo/redo
//! depths. Three layers of adversity are stacked on top:
//!
//! * **fault injection** — a [`riot_core::FaultPlan`] trips the
//!   `txn.commit`, `route.solve`, `route.grid.solve`, and
//!   `stretch.solve` sites at a configurable rate; every injected
//!   fault must roll the editor back to a state the model recognizes
//!   (see [`runner`]);
//! * **crash recovery** — at intervals the session's journal is
//!   serialized to the crash-safe WAL format, deliberately corrupted
//!   (torn tails, bit flips, garbage), recovered with
//!   [`riot_core::Journal::recover_wal`], and the recovered prefix is
//!   replayed through a *fresh* editor + model pair (see
//!   [`runner::crash_check`]);
//! * **shrinking** — a failing command sequence is minimized with
//!   ddmin ([`shrink::shrink`]) before it is reported, so the repro
//!   the harness prints is short enough to read.
//!
//! The `riot-check` binary (`riot-check run --seed N --steps M
//! --faults P`) wraps all of this for CI; the umbrella crate's
//! `tests/model_conformance.rs` runs the same harness under
//! `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod model;
pub mod runner;
pub mod shrink;

pub use generator::{Generator, SplitMix64};
pub use model::{capture_core, Core, Model, POutcome, PredictedOk, Prediction};
pub use runner::{
    check_equiv, crash_check, lockstep_model, lockstep_replay, lockstep_replay_lines, menu_library,
    run_check, run_commands, step, CheckConfig, Failure, Report,
};
pub use shrink::shrink;
