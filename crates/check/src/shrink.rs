//! Delta-debugging (ddmin) over failing command sequences.
//!
//! The shrinker knows nothing about commands: it only needs a
//! predicate "does this subsequence still fail?". Commands that
//! reference instances created by a removed command simply turn into
//! predicted errors under the runner, so arbitrary subsequences remain
//! meaningful inputs.

use riot_core::Command;

/// Minimizes `initial` (which must fail `fails`) to a 1-minimal
/// subsequence: removing any single remaining command makes the
/// failure disappear.
pub fn shrink<F>(initial: &[Command], mut fails: F) -> Vec<Command>
where
    F: FnMut(&[Command]) -> bool,
{
    let mut cur: Vec<Command> = initial.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                // Re-scan from the front at the same granularity.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(i: u32) -> Command {
        Command::Replicate {
            instance: format!("I{i}"),
            cols: 1,
            rows: 1,
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let seq: Vec<Command> = (0..40).map(cmd).collect();
        let culprit = cmd(17);
        let out = shrink(&seq, |s| s.contains(&culprit));
        assert_eq!(out, vec![culprit]);
    }

    #[test]
    fn shrinks_to_an_interacting_pair() {
        let seq: Vec<Command> = (0..64).map(cmd).collect();
        let (a, b) = (cmd(3), cmd(59));
        let out = shrink(&seq, |s| s.contains(&a) && s.contains(&b));
        assert_eq!(out, vec![a, b]);
    }

    #[test]
    fn keeps_everything_when_all_needed() {
        let seq: Vec<Command> = (0..5).map(cmd).collect();
        let out = shrink(&seq, |s| s.len() == 5);
        assert_eq!(out.len(), 5);
    }
}
