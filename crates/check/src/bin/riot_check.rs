//! `riot-check`: CLI front end for the model-based conformance and
//! fault-injection harness.
//!
//! ```text
//! riot-check run --seed 42 --steps 500 --faults 0.1
//! riot-check run --seeds 1,2,3 --steps 200
//! riot-check run --seed 7 --steps 400 --demo-bug   # seeded failure demo
//! ```
//!
//! On a conformance failure the harness shrinks the command history
//! with ddmin and prints the minimal repro as journal lines, then
//! exits non-zero.

use riot_check::{run_check, run_commands, shrink, CheckConfig};
use riot_core::command_to_line;
use std::process::ExitCode;

const USAGE: &str = "\
riot-check: model-based conformance + fault-injection harness

USAGE:
    riot-check run [OPTIONS]

OPTIONS:
    --seed N        single seed (default 42)
    --seeds A,B,..  comma-separated list of seeds (overrides --seed)
    --steps M       commands per seed (default 500)
    --faults P      fault-injection rate in [0,1] (default 0.0)
    --demo-bug      arm the seeded model misprediction (must fail;
                    demonstrates failure reporting and shrinking)
    -h, --help      this help
    -V, --version   print version and exit
";

struct Args {
    seeds: Vec<u64>,
    steps: usize,
    faults: f64,
    demo_bug: bool,
}

fn parse_args() -> Result<Args, String> {
    if std::env::args().any(|a| a == "-V" || a == "--version") {
        println!("riot-check {}", env!("CARGO_PKG_VERSION"));
        std::process::exit(0);
    }
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => {}
        Some("-h") | Some("--help") | None => {
            print!("{USAGE}");
            std::process::exit(if std::env::args().len() > 1 { 0 } else { 2 });
        }
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    }
    let mut out = Args {
        seeds: vec![42],
        steps: 500,
        faults: 0.0,
        demo_bug: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("`{name}` needs a value"));
        match flag.as_str() {
            "--seed" => {
                out.seeds = vec![value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?];
            }
            "--seeds" => {
                out.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--steps" => {
                out.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?;
            }
            "--faults" => {
                out.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                if !(0.0..=1.0).contains(&out.faults) {
                    return Err("--faults must be in [0,1]".into());
                }
            }
            "--demo-bug" => out.demo_bug = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if out.seeds.is_empty() {
        return Err("no seeds given".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("riot-check: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for &seed in &args.seeds {
        let cfg = CheckConfig {
            seed,
            steps: args.steps,
            fault_rate: args.faults,
            demo_bug: args.demo_bug,
        };
        match run_check(&cfg) {
            Ok(report) => {
                println!(
                    "PASS seed {seed}: {} steps, {}/{} fault sites tripped, {} crash checks",
                    report.steps,
                    report.faults_injected,
                    report.faults_consulted,
                    report.crash_checks
                );
            }
            Err(failure) => {
                failed = true;
                println!("FAIL {failure}");
                let minimal = shrink(&failure.history, |cmds| run_commands(&cfg, cmds).is_err());
                println!(
                    "shrunk {} -> {} commands; repro journal:",
                    failure.history.len(),
                    minimal.len()
                );
                println!("    edit TOP");
                for cmd in &minimal {
                    println!("    {}", command_to_line(cmd));
                }
                if let Err(f) = run_commands(&cfg, &minimal) {
                    println!("minimal failure: {f}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
