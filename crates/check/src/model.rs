//! The reference model: a small, obviously-correct reimplementation of
//! the editor's observable semantics.
//!
//! The model mirrors exactly what a user can see of an editing session
//! — the cell menu, the instance slots, the pending connection list,
//! and the undo/redo depths — and recomputes all derived geometry
//! (world connectors, world bounding boxes) from first principles on
//! every query, with no caches and no transactions. Simple commands are
//! **fully predicted**: [`Model::apply`] either mutates the model and
//! names the exact [`Outcome`] the editor must report, or names the
//! exact [`RiotError`] the editor must raise. The solver-backed
//! commands (ROUTE, STRETCH, BRING-OUT) are **observed** on success:
//! the model verifies their post-conditions against the real editor
//! and then adopts the new solver-produced cells verbatim. ROUTE's
//! *failures* are fully predicted: the model runs the shared planner
//! in [`riot_core::routeplan`] over its own recomputed state, so
//! precondition and solver errors must match exactly.
//!
//! The conformance claim the harness proves is therefore: after every
//! command, fault, undo, redo, and crash-recovery replay, the editor is
//! in a state this model either predicted or can explain.

use riot_core::{routeplan, Command, Editor, Outcome, RiotError, WorldConnector};
use riot_geom::{Layer, Point, Rect, Side, Transform};
use riot_route::RouterOptions;

/// A connector of a model cell (the model's copy of
/// `riot_core::Connector`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MConnector {
    /// Connector name.
    pub name: String,
    /// Cell-local location.
    pub location: Point,
    /// Wire layer.
    pub layer: Layer,
    /// Wire width in centimicrons.
    pub width: i64,
}

/// A cell of the model's menu mirror.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MCell {
    /// Cell name.
    pub name: String,
    /// Cell bounding box.
    pub bbox: Rect,
    /// The cell's connectors.
    pub connectors: Vec<MConnector>,
}

/// An instance slot of the model's composition mirror.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MInstance {
    /// Instance name.
    pub name: String,
    /// Index of the defining cell in [`Core::cells`].
    pub cell: usize,
    /// Placement of array element (0,0).
    pub transform: Transform,
    /// Array columns.
    pub cols: u32,
    /// Array rows.
    pub rows: u32,
    /// Column pitch in centimicrons.
    pub col_spacing: i64,
    /// Row pitch in centimicrons.
    pub row_spacing: i64,
}

/// One pending connection, by slot indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MPending {
    /// From-instance slot.
    pub from: usize,
    /// Connector on the from instance.
    pub from_connector: String,
    /// To-instance slot.
    pub to: usize,
    /// Connector on the to instance.
    pub to_connector: String,
}

/// A world-space connector as the model computes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MWorld {
    /// Owning instance's name.
    pub instance_name: String,
    /// Exposed (possibly array-suffixed) name.
    pub name: String,
    /// Location in composition coordinates.
    pub location: Point,
    /// Wire layer.
    pub layer: Layer,
    /// Wire width.
    pub width: i64,
    /// World side, or `None` for interior connectors.
    pub side: Option<Side>,
}

/// The model's full observable state: menu, slots, pending list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Core {
    /// The cell menu, in menu order (index == `CellId` index).
    pub cells: Vec<MCell>,
    /// Instance slots; `None` marks a deleted tombstone.
    pub slots: Vec<Option<MInstance>>,
    /// The pending connection list.
    pub pending: Vec<MPending>,
}

/// What the model predicts for one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prediction {
    /// The command succeeds; the model has already committed the state
    /// change.
    Ok(PredictedOk),
    /// The command fails with exactly this error; the model is
    /// untouched.
    Err(RiotError),
    /// A solver-backed command: the runner verifies post-conditions and
    /// syncs the model from the editor afterward.
    Observe,
}

/// A predicted success: the outcome the editor must report plus
/// warning substrings the step must emit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PredictedOk {
    /// The expected outcome.
    pub outcome: POutcome,
    /// Substrings that must each appear among the step's new warnings
    /// (with multiplicity).
    pub warnings: Vec<String>,
}

/// Model-side mirror of [`Outcome`] (ids as raw slot indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum POutcome {
    /// No payload.
    #[default]
    None,
    /// An instance was created in this slot.
    Instance(usize),
    /// A count (finish's promoted connectors).
    Count(usize),
}

impl POutcome {
    /// Whether the editor's outcome matches this prediction.
    pub fn matches(&self, o: &Outcome) -> bool {
        match (self, o) {
            (POutcome::None, Outcome::None) => true,
            (POutcome::Instance(slot), Outcome::Instance(id)) => *slot == id.index(),
            (POutcome::Count(a), Outcome::Count(b)) => a == b,
            _ => false,
        }
    }
}

/// The reference model of one editing session.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// The observable state.
    pub core: Core,
    /// Index of the cell under edit in [`Core::cells`].
    pub edit_cell: usize,
    /// Pre-command states, newest last (undo stack).
    undo: Vec<Core>,
    /// Post-command states, newest last (redo stack).
    redo: Vec<Core>,
    /// When set, the model deliberately mispredicts `clearpend` on an
    /// empty list — a seeded known-failure used to demonstrate
    /// shrinking.
    pub demo_bug: bool,
}

/// Captures the editor's observable state in model terms. This is both
/// the initial mirror and the per-step equivalence witness.
pub fn capture_core(ed: &Editor<'_>, min_slots: usize) -> Core {
    let cells = ed
        .library()
        .iter()
        .map(|(_, c)| MCell {
            name: c.name.clone(),
            bbox: c.bbox,
            connectors: c
                .connectors
                .iter()
                .map(|k| MConnector {
                    name: k.name.clone(),
                    location: k.location,
                    layer: k.layer,
                    width: k.width,
                })
                .collect(),
        })
        .collect::<Vec<_>>();
    let live = ed.instances();
    let len = live
        .iter()
        .map(|(id, _)| id.index() + 1)
        .max()
        .unwrap_or(0)
        .max(min_slots);
    let mut slots = vec![None; len];
    for (id, inst) in live {
        let cell = ed
            .library()
            .iter()
            .position(|(cid, _)| cid == inst.cell)
            .expect("instance cell is in the menu");
        slots[id.index()] = Some(MInstance {
            name: inst.name.clone(),
            cell,
            transform: inst.transform,
            cols: inst.cols,
            rows: inst.rows,
            col_spacing: inst.col_spacing,
            row_spacing: inst.row_spacing,
        });
    }
    let pending = ed
        .pending()
        .iter()
        .map(|p| MPending {
            from: p.from.index(),
            from_connector: p.from_connector.clone(),
            to: p.to.index(),
            to_connector: p.to_connector.clone(),
        })
        .collect();
    Core {
        cells,
        slots,
        pending,
    }
}

impl Model {
    /// Mirrors a freshly opened editor session.
    pub fn from_editor(ed: &Editor<'_>) -> Model {
        let core = capture_core(ed, 0);
        // The edit cell's menu position (menu order == `CellId` order).
        let edit_cell = ed
            .library()
            .iter()
            .position(|(cid, _)| cid == ed.cell_id())
            .expect("the edit cell is in the menu");
        Model {
            core,
            edit_cell,
            undo: Vec::new(),
            redo: Vec::new(),
            demo_bug: false,
        }
    }

    /// Undo-stack depth (must equal the editor's).
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }

    /// Redo-stack depth (must equal the editor's).
    pub fn redo_depth(&self) -> usize {
        self.redo.len()
    }

    /// Commits a successful non-undo/redo command: pushes the
    /// pre-command state and clears the redo stack, mirroring
    /// `Editor::execute`.
    pub fn push_history(&mut self, pre: Core) {
        self.undo.push(pre);
        self.redo.clear();
    }

    /// Model-side UNDO. Returns `true` when a command was reverted.
    pub fn undo(&mut self) -> bool {
        match self.undo.pop() {
            Some(pre) => {
                let now = std::mem::replace(&mut self.core, pre);
                self.redo.push(now);
                true
            }
            None => false,
        }
    }

    /// Model-side REDO. Returns `true` when a command was re-applied.
    pub fn redo(&mut self) -> bool {
        match self.redo.pop() {
            Some(post) => {
                let now = std::mem::replace(&mut self.core, post);
                self.undo.push(now);
                true
            }
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// First menu cell with this name.
    pub fn find_cell(&self, name: &str) -> Option<usize> {
        self.core.cells.iter().position(|c| c.name == name)
    }

    /// First live instance with this name, in slot order.
    pub fn find_instance(&self, name: &str) -> Option<usize> {
        self.core
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|i| i.name == name))
    }

    fn require_instance(&self, name: &str) -> Result<usize, RiotError> {
        self.find_instance(name)
            .ok_or_else(|| RiotError::UnknownInstance(name.to_owned()))
    }

    /// Live `(slot, instance)` pairs in slot order.
    pub fn live(&self) -> Vec<(usize, &MInstance)> {
        self.core
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|x| (i, x)))
            .collect()
    }

    fn inst(&self, slot: usize) -> &MInstance {
        self.core.slots[slot].as_ref().expect("live slot")
    }

    /// The live instance name in `slot`.
    pub fn inst_name(&self, slot: usize) -> String {
        self.inst(slot).name.clone()
    }

    /// The world side a cell-local side faces under `orient`.
    pub fn world_side(orient: riot_geom::Orientation, local: Side) -> Side {
        let n = orient.apply(local.normal());
        match (n.x, n.y) {
            (-1, 0) => Side::Left,
            (1, 0) => Side::Right,
            (0, -1) => Side::Bottom,
            (0, 1) => Side::Top,
            _ => unreachable!("unit normals stay unit normals"),
        }
    }

    /// Independent recomputation of an instance's world connectors,
    /// in exactly the editor's order and naming (array edges only,
    /// `[col,row]` suffixes).
    pub fn world_connectors(&self, slot: usize) -> Vec<MWorld> {
        let inst = self.inst(slot);
        let cell = &self.core.cells[inst.cell];
        let single = inst.cols <= 1 && inst.rows <= 1;
        let mut out = Vec::new();
        for conn in &cell.connectors {
            let local_side = cell.bbox.side_of(conn.location);
            let elements: Vec<(u32, u32)> = if single {
                vec![(0, 0)]
            } else {
                match local_side {
                    Some(Side::Left) => (0..inst.rows).map(|r| (0, r)).collect(),
                    Some(Side::Right) => (0..inst.rows).map(|r| (inst.cols - 1, r)).collect(),
                    Some(Side::Bottom) => (0..inst.cols).map(|c| (c, 0)).collect(),
                    Some(Side::Top) => (0..inst.cols).map(|c| (c, inst.rows - 1)).collect(),
                    None => Vec::new(),
                }
            };
            for (c, r) in elements {
                let t = Transform::translate(Point::new(
                    i64::from(c) * inst.col_spacing,
                    i64::from(r) * inst.row_spacing,
                ))
                .then(inst.transform);
                let name = if single {
                    conn.name.clone()
                } else {
                    format!("{}[{c},{r}]", conn.name)
                };
                out.push(MWorld {
                    instance_name: inst.name.clone(),
                    name,
                    location: t.apply(conn.location),
                    layer: conn.layer,
                    width: conn.width,
                    side: local_side.map(|s| Self::world_side(inst.transform.orient, s)),
                });
            }
        }
        out
    }

    fn world_connector(&self, slot: usize, name: &str) -> Result<MWorld, RiotError> {
        self.world_connectors(slot)
            .into_iter()
            .find(|c| c.name == name)
            .ok_or_else(|| RiotError::UnknownConnector {
                instance: self.inst(slot).name.clone(),
                connector: name.to_owned(),
            })
    }

    /// Independent recomputation of an instance's world bounding box.
    pub fn world_bbox(&self, slot: usize) -> Rect {
        let inst = self.inst(slot);
        let cb = self.core.cells[inst.cell].bbox;
        let last = cb.translated(Point::new(
            (i64::from(inst.cols) - 1) * inst.col_spacing,
            (i64::from(inst.rows) - 1) * inst.row_spacing,
        ));
        inst.transform.apply_rect(cb.union(last))
    }

    fn extent(&self) -> Rect {
        let mut bb: Option<Rect> = None;
        for (slot, _) in self.live() {
            let b = self.world_bbox(slot);
            bb = Some(match bb {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        bb.unwrap_or(Rect::new(0, 0, 0, 0))
    }

    fn resolve_pending(&self) -> Result<(usize, Vec<(MWorld, MWorld)>), RiotError> {
        let first = self.core.pending.first().ok_or(RiotError::NothingPending)?;
        let from = first.from;
        let mut pairs = Vec::new();
        for p in &self.core.pending {
            let fc = self.world_connector(p.from, &p.from_connector)?;
            let tc = self.world_connector(p.to, &p.to_connector)?;
            pairs.push((fc, tc));
        }
        Ok((from, pairs))
    }

    fn facing_sides(&self, from: usize, to: usize) -> Option<(Side, Side)> {
        let d = self.world_bbox(from).center() - self.world_bbox(to).center();
        if d == Point::ORIGIN {
            return None;
        }
        Some(if d.x.abs() >= d.y.abs() {
            if d.x > 0 {
                (Side::Left, Side::Right)
            } else {
                (Side::Right, Side::Left)
            }
        } else if d.y > 0 {
            (Side::Bottom, Side::Top)
        } else {
            (Side::Top, Side::Bottom)
        })
    }

    // ------------------------------------------------------------------
    // The transition function
    // ------------------------------------------------------------------

    /// Predicts (and for fully-modeled commands, applies) one command.
    /// `Edit`/`Undo`/`Redo` are handled by the runner, not here.
    pub fn apply(&mut self, cmd: &Command) -> Prediction {
        match cmd {
            Command::Edit { .. } | Command::Undo | Command::Redo => {
                unreachable!("runner intercepts edit/undo/redo")
            }
            Command::Create { cell, instance } => self.apply_create(cell, instance),
            Command::Translate { instance, d } => self.apply_translate(instance, *d),
            Command::Orient { instance, orient } => self.apply_orient(instance, *orient),
            Command::Replicate {
                instance,
                cols,
                rows,
            } => self.apply_replicate(instance, *cols, *rows),
            Command::Spacing { instance, col, row } => self.apply_spacing(instance, *col, *row),
            Command::Delete { instance } => self.apply_delete(instance),
            Command::Connect {
                from,
                from_connector,
                to,
                to_connector,
            } => self.apply_connect(from, from_connector, to, to_connector),
            Command::RemovePending { index } => self.apply_remove_pending(*index),
            Command::ClearPending => self.apply_clear_pending(),
            Command::Abut { overlap } => self.apply_abut(*overlap),
            Command::AbutInstances { from, to } => self.apply_abut_instances(from, to),
            Command::Route { move_from, router } => self.apply_route(*move_from, *router),
            Command::Stretch { .. } | Command::BringOut { .. } => Prediction::Observe,
            Command::Finish => self.apply_finish(),
        }
    }

    fn apply_create(&mut self, cell_name: &str, name: &str) -> Prediction {
        let Some(cell) = self.find_cell(cell_name) else {
            return Prediction::Err(RiotError::UnknownCell(cell_name.to_owned()));
        };
        let bbox = self.core.cells[cell].bbox;
        let mut warnings = Vec::new();
        let mut name = name.to_owned();
        if self.find_instance(&name).is_some() {
            warnings.push(format!("instance name `{name}` taken"));
            name.push('\'');
        }
        self.core.slots.push(Some(MInstance {
            name,
            cell,
            transform: Transform::IDENTITY,
            cols: 1,
            rows: 1,
            col_spacing: bbox.width(),
            row_spacing: bbox.height(),
        }));
        Prediction::Ok(PredictedOk {
            outcome: POutcome::Instance(self.core.slots.len() - 1),
            warnings,
        })
    }

    fn apply_translate(&mut self, instance: &str, d: Point) -> Prediction {
        let slot = match self.require_instance(instance) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let inst = self.core.slots[slot].as_mut().expect("live");
        inst.transform = inst.transform.translated(d);
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_orient(&mut self, instance: &str, o: riot_geom::Orientation) -> Prediction {
        let slot = match self.require_instance(instance) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let inst = self.core.slots[slot].as_mut().expect("live");
        inst.transform = Transform::new(inst.transform.orient.then(o), inst.transform.offset);
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_replicate(&mut self, instance: &str, cols: u32, rows: u32) -> Prediction {
        if cols == 0 || rows == 0 || u64::from(cols) * u64::from(rows) > 1_000_000 {
            return Prediction::Err(RiotError::BadReplication { cols, rows });
        }
        let slot = match self.require_instance(instance) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let inst = self.core.slots[slot].as_mut().expect("live");
        inst.cols = cols;
        inst.rows = rows;
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_spacing(&mut self, instance: &str, col: i64, row: i64) -> Prediction {
        if col <= 0 || row <= 0 {
            return Prediction::Err(RiotError::BadReplication { cols: 0, rows: 0 });
        }
        let slot = match self.require_instance(instance) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let inst = self.core.slots[slot].as_mut().expect("live");
        inst.col_spacing = col;
        inst.row_spacing = row;
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_delete(&mut self, instance: &str) -> Prediction {
        let slot = match self.require_instance(instance) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        self.core.slots[slot] = None;
        self.core.pending.retain(|p| p.from != slot && p.to != slot);
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_connect(&mut self, from: &str, fc_name: &str, to: &str, tc_name: &str) -> Prediction {
        let from_slot = match self.require_instance(from) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let to_slot = match self.require_instance(to) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        if from_slot == to_slot {
            return Prediction::Err(RiotError::SelfConnection(from.to_owned()));
        }
        if let Some(first) = self.core.pending.first() {
            if first.from != from_slot {
                return Prediction::Err(RiotError::MultipleFromInstances(
                    self.inst(first.from).name.clone(),
                    from.to_owned(),
                ));
            }
            if self.core.pending.iter().any(|p| p.to == from_slot) {
                return Prediction::Err(RiotError::FromInToList(from.to_owned()));
            }
        }
        let fc = match self.world_connector(from_slot, fc_name) {
            Ok(c) => c,
            Err(e) => return Prediction::Err(e),
        };
        let tc = match self.world_connector(to_slot, tc_name) {
            Ok(c) => c,
            Err(e) => return Prediction::Err(e),
        };
        if fc.layer != tc.layer {
            return Prediction::Err(RiotError::LayerMismatch {
                from: fc.layer,
                to: tc.layer,
            });
        }
        match (fc.side, tc.side) {
            (Some(a), Some(b)) if a.opposes(b) => {}
            (a, b) => return Prediction::Err(RiotError::NotOpposed { from: a, to: b }),
        }
        self.core.pending.push(MPending {
            from: from_slot,
            from_connector: fc_name.to_owned(),
            to: to_slot,
            to_connector: tc_name.to_owned(),
        });
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_remove_pending(&mut self, index: usize) -> Prediction {
        if index >= self.core.pending.len() {
            return Prediction::Err(RiotError::NothingPending);
        }
        self.core.pending.remove(index);
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_clear_pending(&mut self) -> Prediction {
        if self.demo_bug && self.core.pending.is_empty() {
            // The seeded known-failure: the real editor happily clears
            // an already-empty list.
            return Prediction::Err(RiotError::NothingPending);
        }
        self.core.pending.clear();
        Prediction::Ok(PredictedOk::default())
    }

    fn apply_abut(&mut self, overlap: bool) -> Prediction {
        let (from, pairs) = match self.resolve_pending() {
            Ok(r) => r,
            Err(e) => return Prediction::Err(e),
        };
        let d = pairs[0].1.location - pairs[0].0.location;
        let to_slots: Vec<usize> = self.core.pending.iter().map(|p| p.to).collect();
        let mut warnings = Vec::new();
        for (fc, tc) in &pairs {
            if fc.location + d != tc.location {
                warnings.push("cannot be made by this abutment".to_owned());
            }
        }
        {
            let inst = self.core.slots[from].as_mut().expect("live");
            inst.transform = inst.transform.translated(d);
        }
        if !overlap {
            let fb = self.world_bbox(from);
            for to in to_slots {
                if fb.overlaps(self.world_bbox(to)) {
                    warnings.push(format!(
                        "abutment overlaps instance `{}`",
                        self.inst(to).name
                    ));
                }
            }
        }
        self.core.pending.clear();
        Prediction::Ok(PredictedOk {
            outcome: POutcome::None,
            warnings,
        })
    }

    fn apply_abut_instances(&mut self, from: &str, to: &str) -> Prediction {
        let from_slot = match self.require_instance(from) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let to_slot = match self.require_instance(to) {
            Ok(s) => s,
            Err(e) => return Prediction::Err(e),
        };
        let fb = self.world_bbox(from_slot);
        let tb = self.world_bbox(to_slot);
        let facing = self
            .facing_sides(from_slot, to_slot)
            .unwrap_or((Side::Left, Side::Right));
        let d = match facing.0 {
            Side::Left => Point::new(tb.x1 - fb.x0, tb.y0 - fb.y0),
            Side::Right => Point::new(tb.x0 - fb.x1, tb.y0 - fb.y0),
            Side::Bottom => Point::new(tb.x0 - fb.x0, tb.y1 - fb.y0),
            Side::Top => Point::new(tb.x0 - fb.x0, tb.y0 - fb.y1),
        };
        let inst = self.core.slots[from_slot].as_mut().expect("live");
        inst.transform = inst.transform.translated(d);
        Prediction::Ok(PredictedOk::default())
    }

    /// ROUTE is *exactly* predicted on the error side: the model runs
    /// the same shared planner ([`riot_core::routeplan`]) over its own
    /// recomputed world connectors and bystander bboxes, so every
    /// precondition failure — pending-list errors, ragged channel
    /// edges, router validation, an unroutable grid — must surface from
    /// the editor as the identical [`RiotError`]. A successful solve
    /// stays [`Prediction::Observe`]: the route *cell* the editor
    /// synthesizes is adopted after post-condition checks.
    fn apply_route(&self, move_from: bool, router: RouterOptions) -> Prediction {
        let (from, pairs) = match self.resolve_pending() {
            Ok(r) => r,
            Err(e) => return Prediction::Err(e),
        };
        let wpairs: Vec<(WorldConnector, WorldConnector)> = pairs
            .iter()
            .map(|(fc, tc)| {
                let wc = |m: &MWorld| WorldConnector {
                    instance_name: m.instance_name.clone(),
                    name: m.name.clone(),
                    location: m.location,
                    layer: m.layer,
                    width: m.width,
                    side: m.side,
                };
                (wc(fc), wc(tc))
            })
            .collect();
        let plan = match routeplan::plan_route(&wpairs, move_from, router) {
            Ok(p) => p,
            Err(e) => return Prediction::Err(e),
        };
        // Bystander bboxes, excluding the from and to instances —
        // the same set the editor rasterizes into the obstacle grid.
        let mut exclude = vec![from];
        for p in &self.core.pending {
            if !exclude.contains(&p.to) {
                exclude.push(p.to);
            }
        }
        let bystanders: Vec<Rect> = self
            .live()
            .iter()
            .filter(|(slot, _)| !exclude.contains(slot))
            .map(|(slot, _)| self.world_bbox(*slot))
            .collect();
        let obstacles = routeplan::channel_obstacles(plan.to_side, plan.edge, &bystanders);
        match routeplan::solve_route(&plan.problem, &obstacles, || Ok(())) {
            Ok(_) => Prediction::Observe,
            Err(e) => Prediction::Err(e),
        }
    }

    fn apply_finish(&mut self) -> Prediction {
        let bbox = self.extent();
        let mut connectors: Vec<MConnector> = Vec::new();
        let mut used: Vec<String> = Vec::new();
        for (slot, _) in self.live() {
            for wc in self.world_connectors(slot) {
                if bbox.side_of(wc.location).is_some() {
                    let mut name = wc.name.clone();
                    while used.contains(&name) {
                        name.push('\'');
                    }
                    used.push(name.clone());
                    connectors.push(MConnector {
                        name,
                        location: wc.location,
                        layer: wc.layer,
                        width: wc.width,
                    });
                }
            }
        }
        let count = connectors.len();
        let cell = &mut self.core.cells[self.edit_cell];
        cell.bbox = bbox;
        cell.connectors = connectors;
        Prediction::Ok(PredictedOk {
            outcome: POutcome::Count(count),
            warnings: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_core::Library;

    fn session() -> (Library, &'static str) {
        let mut lib = Library::new();
        lib.add_sticks_cell(riot_cells::nand2()).unwrap();
        (lib, "TOP")
    }

    #[test]
    fn model_mirrors_fresh_session() {
        let (mut lib, top) = session();
        let ed = Editor::open(&mut lib, top).unwrap();
        let m = Model::from_editor(&ed);
        assert_eq!(m.core.cells.len(), 2); // nand2 + TOP
        assert_eq!(m.edit_cell, m.find_cell("TOP").unwrap());
        assert!(m.core.slots.is_empty());
        assert!(m.core.pending.is_empty());
    }

    #[test]
    fn create_predicts_slot_and_dedup() {
        let (mut lib, top) = session();
        let ed = Editor::open(&mut lib, top).unwrap();
        let mut m = Model::from_editor(&ed);
        let p = m.apply(&Command::Create {
            cell: "nand2".into(),
            instance: "I0".into(),
        });
        assert!(matches!(
            p,
            Prediction::Ok(PredictedOk {
                outcome: POutcome::Instance(0),
                ..
            })
        ));
        let p = m.apply(&Command::Create {
            cell: "nand2".into(),
            instance: "I0".into(),
        });
        let Prediction::Ok(ok) = p else {
            panic!("dedup create succeeds")
        };
        assert_eq!(ok.warnings.len(), 1);
        assert_eq!(m.core.slots[1].as_ref().unwrap().name, "I0'");
    }

    #[test]
    fn unknown_cell_predicted() {
        let (mut lib, top) = session();
        let ed = Editor::open(&mut lib, top).unwrap();
        let mut m = Model::from_editor(&ed);
        let p = m.apply(&Command::Create {
            cell: "nope".into(),
            instance: "I0".into(),
        });
        assert_eq!(p, Prediction::Err(RiotError::UnknownCell("nope".into())));
    }

    #[test]
    fn undo_redo_round_trip() {
        let (mut lib, top) = session();
        let ed = Editor::open(&mut lib, top).unwrap();
        let mut m = Model::from_editor(&ed);
        let before = m.core.clone();
        let pre = m.core.clone();
        m.apply(&Command::Create {
            cell: "nand2".into(),
            instance: "I0".into(),
        });
        m.push_history(pre);
        let after = m.core.clone();
        assert!(m.undo());
        assert_eq!(m.core, before);
        assert!(m.redo());
        assert_eq!(m.core, after);
        assert!(!m.redo());
    }
}
