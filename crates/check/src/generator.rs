//! The seeded command-sequence generator.
//!
//! Commands are generated **adaptively** against the current
//! [`Model`] state: instance names come from the live slots, connector
//! names from the model's own world-connector computation, and most
//! CONNECTs are steered toward layer-matched, opposed pairs so the
//! solver-backed commands (ABUT/ROUTE/STRETCH) actually have work to
//! do. A tunable minority of commands deliberately references unknown
//! names or illegal parameters to exercise the editor's error paths —
//! the model predicts those errors exactly.

use crate::model::Model;
use riot_core::Command;
use riot_geom::{Orientation, Point, Side, LAMBDA};
use riot_rest::SolveMode;
use riot_route::{RouterEngine, RouterOptions};

/// SplitMix64: a tiny, seedable, statistically solid generator — the
/// same family the core fault plan uses, with a different stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1F12_3BB5_159A_55E5,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() % 1_000_000) < (p.clamp(0.0, 1.0) * 1_000_000.0) as u64
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, s: &'a [T]) -> &'a T {
        &s[self.below(s.len() as u64) as usize]
    }

    /// Uniform signed value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }
}

/// The adaptive command generator for one harness run.
#[derive(Debug, Clone)]
pub struct Generator {
    rng: SplitMix64,
    fresh: u64,
}

impl Generator {
    /// A generator for `seed`.
    pub fn new(seed: u64) -> Generator {
        Generator {
            rng: SplitMix64::new(seed),
            fresh: 0,
        }
    }

    /// The names of menu cells worth instantiating: everything except
    /// the cell under edit (no recursive composition).
    fn menu(&self, model: &Model) -> Vec<String> {
        model
            .core
            .cells
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != model.edit_cell)
            .map(|(_, c)| c.name.clone())
            .collect()
    }

    fn live_names(&self, model: &Model) -> Vec<String> {
        model.live().iter().map(|(_, i)| i.name.clone()).collect()
    }

    fn some_instance(&mut self, model: &Model) -> String {
        let live = self.live_names(model);
        if live.is_empty() || self.rng.chance(0.05) {
            "I999".to_owned()
        } else {
            self.rng.pick(&live).clone()
        }
    }

    /// A CONNECT biased (~70%) toward a pair the editor will accept:
    /// layer-matched connectors on opposed world sides, consistent with
    /// whatever is already pending.
    fn gen_connect(&mut self, model: &Model) -> Command {
        let live = model.live();
        if live.len() >= 2 && self.rng.chance(0.7) {
            // Respect the pending list's from-instance, if any.
            let from_slot = match model.core.pending.first() {
                Some(p) => p.from,
                None => live[self.rng.below(live.len() as u64) as usize].0,
            };
            let candidates: Vec<usize> = live
                .iter()
                .map(|(s, _)| *s)
                .filter(|s| {
                    *s != from_slot && !model.core.pending.iter().any(|p| p.to == from_slot)
                })
                .collect();
            if !candidates.is_empty() {
                let to_slot = *self.rng.pick(&candidates);
                let fcs = model.world_connectors(from_slot);
                let tcs = model.world_connectors(to_slot);
                let mut pairs = Vec::new();
                for fc in &fcs {
                    for tc in &tcs {
                        if fc.layer == tc.layer {
                            if let (Some(a), Some(b)) = (fc.side, tc.side) {
                                if a.opposes(b) {
                                    pairs.push((fc.name.clone(), tc.name.clone()));
                                }
                            }
                        }
                    }
                }
                if !pairs.is_empty() {
                    let (fc, tc) = self.rng.pick(&pairs).clone();
                    let from = model.inst_name(from_slot);
                    let to = model.inst_name(to_slot);
                    return Command::Connect {
                        from,
                        from_connector: fc,
                        to,
                        to_connector: tc,
                    };
                }
            }
        }
        // Fallback / error-path connect: random names and connectors.
        let from = self.some_instance(model);
        let to = self.some_instance(model);
        let pick_conn = |g: &mut Generator, name: &str| -> String {
            if let Some(slot) = model.find_instance(name) {
                let wcs = model.world_connectors(slot);
                if !wcs.is_empty() && g.rng.chance(0.8) {
                    return g.rng.pick(&wcs).name.clone();
                }
            }
            "NOPE".to_owned()
        };
        let fc = pick_conn(self, &from);
        let tc = pick_conn(self, &to);
        Command::Connect {
            from,
            from_connector: fc,
            to,
            to_connector: tc,
        }
    }

    /// A BRING-OUT of 1–2 same-side boundary connectors of one live
    /// instance (falls back to an error-path command when none exist).
    fn gen_bring_out(&mut self, model: &Model) -> Command {
        let live = model.live();
        if !live.is_empty() {
            let (slot, inst) = live[self.rng.below(live.len() as u64) as usize];
            let wcs = model.world_connectors(slot);
            let sides: Vec<Side> = Side::ALL
                .iter()
                .copied()
                .filter(|s| wcs.iter().any(|w| w.side == Some(*s)))
                .collect();
            if !sides.is_empty() && self.rng.chance(0.85) {
                let side = *self.rng.pick(&sides);
                let on_side: Vec<String> = wcs
                    .iter()
                    .filter(|w| w.side == Some(side))
                    .map(|w| w.name.clone())
                    .collect();
                let take = 1 + self.rng.below(on_side.len().min(2) as u64) as usize;
                let mut connectors = Vec::new();
                let mut pool = on_side;
                for _ in 0..take {
                    let i = self.rng.below(pool.len() as u64) as usize;
                    connectors.push(pool.swap_remove(i));
                }
                return Command::BringOut {
                    instance: inst.name.clone(),
                    connectors,
                    side,
                };
            }
        }
        Command::BringOut {
            instance: self.some_instance(model),
            connectors: vec!["NOPE".to_owned()],
            side: Side::Left,
        }
    }

    /// The next command, generated against the model's current state.
    pub fn next_command(&mut self, model: &Model) -> Command {
        let live = self.live_names(model);
        // Seed the session: until a couple of instances exist, mostly
        // CREATE.
        if live.len() < 2 && self.rng.chance(0.8) {
            return self.gen_create(model);
        }
        match self.rng.below(100) {
            0..=11 => self.gen_create(model),
            12..=27 => {
                // MOVE: lambda-grid deltas keep stretch/route targets
                // on-grid most of the time. A third of the moves are
                // small nudges, which packs instances close together —
                // obstacle-dense placements for the grid router.
                let reach = if self.rng.chance(0.33) { 8 } else { 24 };
                let d = Point::new(
                    self.rng.range(-reach, reach) * LAMBDA,
                    self.rng.range(-reach, reach) * LAMBDA,
                );
                Command::Translate {
                    instance: self.some_instance(model),
                    d,
                }
            }
            28..=32 => Command::Orient {
                instance: self.some_instance(model),
                orient: *self.rng.pick(&Orientation::ALL),
            },
            33..=36 => {
                let bad = self.rng.chance(0.08);
                Command::Replicate {
                    instance: self.some_instance(model),
                    cols: if bad { 0 } else { 1 + self.rng.below(3) as u32 },
                    rows: 1 + self.rng.below(3) as u32,
                }
            }
            37..=39 => {
                let bad = self.rng.chance(0.08);
                Command::Spacing {
                    instance: self.some_instance(model),
                    col: if bad {
                        0
                    } else {
                        self.rng.range(4, 40) * LAMBDA
                    },
                    row: self.rng.range(4, 40) * LAMBDA,
                }
            }
            40..=44 => Command::Delete {
                instance: self.some_instance(model),
            },
            45..=62 => self.gen_connect(model),
            63..=64 => Command::RemovePending {
                index: self.rng.below(model.core.pending.len().max(1) as u64 + 1) as usize,
            },
            65..=66 => Command::ClearPending,
            67..=74 => Command::Abut {
                overlap: self.rng.chance(0.3),
            },
            75..=77 => Command::AbutInstances {
                from: self.some_instance(model),
                to: self.some_instance(model),
            },
            78..=83 => Command::Route {
                move_from: self.rng.chance(0.8),
                // Half the routes pick the grid engine explicitly;
                // the river half can still fall back to it.
                router: RouterOptions {
                    engine: if self.rng.chance(0.5) {
                        RouterEngine::Grid
                    } else {
                        RouterEngine::River
                    },
                    ..RouterOptions::default()
                },
            },
            84..=87 => Command::Stretch {
                mode: if self.rng.chance(0.5) {
                    SolveMode::PreserveGaps
                } else {
                    SolveMode::DesignRules
                },
            },
            88..=89 => self.gen_bring_out(model),
            90..=91 => Command::Finish,
            92..=96 => Command::Undo,
            _ => Command::Redo,
        }
    }

    fn gen_create(&mut self, model: &Model) -> Command {
        let menu = self.menu(model);
        let cell = if menu.is_empty() || self.rng.chance(0.04) {
            "NOPE".to_owned()
        } else {
            self.rng.pick(&menu).clone()
        };
        let instance = if self.rng.chance(0.1) {
            // Deliberate collision to exercise name dedup.
            self.some_instance(model)
        } else {
            self.fresh += 1;
            format!("I{}", self.fresh)
        };
        Command::Create { cell, instance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn generator_is_deterministic() {
        let model = Model::default();
        let mut a = Generator::new(42);
        let mut b = Generator::new(42);
        for _ in 0..50 {
            assert_eq!(a.next_command(&model), b.next_command(&model));
        }
    }
}
