//! The lockstep runner: drives a real [`Editor`] and the reference
//! [`Model`] through the same command stream and fails loudly on the
//! first observable divergence.
//!
//! The per-step protocol ([`step`]):
//!
//! 1. snapshot the model's observable state (`pre`);
//! 2. ask the model for a [`Prediction`] (which, for fully-modeled
//!    commands, already commits the model's own state change);
//! 3. run the command through [`Editor::execute`];
//! 4. reconcile:
//!    * **injected fault** — the editor must have rolled back; the
//!      model's tentative change is discarded and full equivalence is
//!      asserted (this is the rollback proof);
//!    * **predicted success** — outcomes and warnings must match, the
//!      model pushes undo history;
//!    * **predicted error** — the editor must fail with *exactly* the
//!      predicted [`RiotError`];
//!    * **observed command** (successful ROUTE/STRETCH/BRING-OUT) —
//!      solver post-conditions are checked and the model adopts the
//!      editor's new cells verbatim (ROUTE failures are exactly
//!      predicted, not observed);
//! 5. assert full equivalence: captured state, independently
//!    recomputed world connectors and bounding boxes for every live
//!    instance, and undo/redo depth parity.
//!
//! [`crash_check`] additionally serializes the session journal to the
//! crash-safe WAL, corrupts it (or not), recovers, asserts the
//! recovered journal is a prefix of the truth, and replays that prefix
//! through a *fresh* editor + model pair in lockstep.

use crate::generator::{Generator, SplitMix64};
use crate::model::{capture_core, Core, Model, Prediction};
use riot_core::{
    command_to_line, Command, Editor, FaultPlan, Journal, Library, Outcome, RiotError,
};
use std::fmt;

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Seed for the command generator, fault plan, and crash fuzzing.
    pub seed: u64,
    /// Number of commands to generate.
    pub steps: usize,
    /// Fault-injection rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Arm the model's seeded known-failure (mispredicts `clearpend`
    /// on an empty list) to demonstrate failure reporting + shrinking.
    pub demo_bug: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            seed: 0,
            steps: 200,
            fault_rate: 0.0,
            demo_bug: false,
        }
    }
}

/// Statistics of a passing run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Commands executed.
    pub steps: usize,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Fault sites consulted.
    pub faults_consulted: u64,
    /// WAL crash/recovery checks performed.
    pub crash_checks: usize,
}

/// A conformance failure: where, what, and the full command history
/// needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The run's seed.
    pub seed: u64,
    /// Zero-based step index of the failure.
    pub step: usize,
    /// The failing command (`None` when a crash check failed).
    pub command: Option<Command>,
    /// Human-readable divergence description.
    pub message: String,
    /// Every command executed up to and including the failure.
    pub history: Vec<Command>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {} step {}: ", self.seed, self.step)?;
        if let Some(cmd) = &self.command {
            write!(f, "`{}`: ", command_to_line(cmd))?;
        }
        write!(f, "{}", self.message)
    }
}

/// The standard cell menu the harness edits against: the three Sticks
/// gates plus the CIF pad (which exercises the not-stretchable path).
pub fn menu_library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot_cells::nand2())
        .expect("nand2 loads");
    lib.add_sticks_cell(riot_cells::or2()).expect("or2 loads");
    lib.add_sticks_cell(riot_cells::shift_register())
        .expect("shift_register loads");
    lib.load_cif(&riot_cells::pads_cif()).expect("pads load");
    lib
}

/// Checks that every expected warning substring appears among the
/// step's new warnings at least as often as it was predicted.
fn check_warnings(news: &[String], expected: &[String]) -> Result<(), String> {
    for want in expected {
        let predicted = expected.iter().filter(|w| *w == want).count();
        let got = news.iter().filter(|w| w.contains(want.as_str())).count();
        if got < predicted {
            return Err(format!(
                "expected warning `{want}` x{predicted}, saw {got} among {news:?}"
            ));
        }
    }
    Ok(())
}

/// Full equivalence between editor and model: captured observable
/// state, independently recomputed world connectors and bounding boxes
/// per live instance, and undo/redo depth parity.
pub fn check_equiv(ed: &Editor<'_>, model: &Model) -> Result<(), String> {
    let cap = capture_core(ed, model.core.slots.len());
    if cap != model.core {
        return Err(format!(
            "observable state diverged\n  editor: {cap:?}\n  model:  {:?}",
            model.core
        ));
    }
    let ids = ed.instances();
    for (slot, _) in model.live() {
        let id = ids
            .iter()
            .find(|(id, _)| id.index() == slot)
            .map(|(id, _)| *id)
            .ok_or_else(|| format!("model slot {slot} is live but the editor lost it"))?;
        let ew = ed
            .world_connectors(id)
            .map_err(|e| format!("editor world_connectors({slot}): {e}"))?;
        let mw = model.world_connectors(slot);
        if ew.len() != mw.len() {
            return Err(format!(
                "slot {slot}: editor exposes {} world connectors, model {}",
                ew.len(),
                mw.len()
            ));
        }
        for (e, m) in ew.iter().zip(&mw) {
            if e.instance_name != m.instance_name
                || e.name != m.name
                || e.location != m.location
                || e.layer != m.layer
                || e.width != m.width
                || e.side != m.side
            {
                return Err(format!(
                    "slot {slot}: world connector diverged\n  editor: {e:?}\n  model:  {m:?}"
                ));
            }
        }
        let eb = ed
            .instance_bbox(id)
            .map_err(|e| format!("editor instance_bbox({slot}): {e}"))?;
        let mb = model.world_bbox(slot);
        if eb != mb {
            return Err(format!(
                "slot {slot}: bbox diverged: editor {eb:?}, model {mb:?}"
            ));
        }
    }
    if ed.undo_depth() != model.undo_depth() {
        return Err(format!(
            "undo depth diverged: editor {}, model {}",
            ed.undo_depth(),
            model.undo_depth()
        ));
    }
    if ed.redo_depth() != model.redo_depth() {
        return Err(format!(
            "redo depth diverged: editor {}, model {}",
            ed.redo_depth(),
            model.redo_depth()
        ));
    }
    Ok(())
}

/// Post-conditions of the solver-backed commands, checked against the
/// pre-command state before the model syncs from the editor.
fn observe_check(ed: &Editor<'_>, pre: &Core, cmd: &Command, out: &Outcome) -> Result<(), String> {
    let post = capture_core(ed, pre.slots.len());
    if post.cells.len() != pre.cells.len() + 1 {
        return Err(format!(
            "expected exactly one new menu cell, had {} now {}",
            pre.cells.len(),
            post.cells.len()
        ));
    }
    let new_cell = post.cells.last().expect("one cell was added");
    let moving = pre.pending.first().map(|p| p.from);
    match cmd {
        Command::Route { .. } | Command::BringOut { .. } => {
            if !matches!(out, Outcome::CellInstance(..)) {
                return Err(format!("expected CellInstance outcome, got {out:?}"));
            }
            if !new_cell.name.starts_with("route") {
                return Err(format!("new cell `{}` is not a route cell", new_cell.name));
            }
            let inst_name = format!("{}i", new_cell.name);
            if !post
                .slots
                .iter()
                .flatten()
                .any(|i| i.name == inst_name && post.cells[i.cell].name == new_cell.name)
            {
                return Err(format!("route instance `{inst_name}` missing"));
            }
        }
        Command::Stretch { .. } => {
            if !matches!(out, Outcome::Cell(_)) {
                return Err(format!("expected Cell outcome, got {out:?}"));
            }
            let from = moving.expect("stretch resolved a pending list");
            let old = &pre.cells[pre.slots[from].as_ref().expect("live").cell].name;
            let primes = new_cell.name.strip_prefix(old.as_str());
            if !primes.is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c == '\'')) {
                return Err(format!(
                    "stretched cell `{}` is not `{old}` plus primes",
                    new_cell.name
                ));
            }
            let fi = post.slots[from]
                .as_ref()
                .ok_or("stretch deleted the from instance")?;
            if fi.cell != post.cells.len() - 1 {
                return Err("from instance was not swapped onto the stretched cell".into());
            }
            // Coincidence: the first pending pair's connectors touch.
            if let Some(p) = pre.pending.first() {
                let find = |slot: usize, name: &str| {
                    ed.instances()
                        .iter()
                        .find(|(id, _)| id.index() == slot)
                        .and_then(|(id, _)| ed.world_connector(*id, name).ok())
                };
                if let (Some(fc), Some(tc)) =
                    (find(p.from, &p.from_connector), find(p.to, &p.to_connector))
                {
                    if fc.location != tc.location {
                        return Err(format!(
                            "stretch did not land `{}` on `{}`: {:?} vs {:?}",
                            p.from_connector, p.to_connector, fc.location, tc.location
                        ));
                    }
                }
            }
        }
        _ => unreachable!("only solver commands are observed"),
    }
    // Pending-list discipline.
    match cmd {
        Command::Route { .. } | Command::Stretch { .. } => {
            if !post.pending.is_empty() {
                return Err("pending list not cleared by the connection command".into());
            }
        }
        Command::BringOut { .. } => {
            if post.pending != pre.pending {
                return Err("bring-out disturbed the pending list".into());
            }
        }
        _ => unreachable!(),
    }
    // Bystander instances must be untouched (cell indices are stable:
    // the menu only grew).
    let from_may_move = matches!(
        cmd,
        Command::Route {
            move_from: true,
            ..
        } | Command::Stretch { .. }
    );
    for (i, s) in pre.slots.iter().enumerate() {
        if from_may_move && Some(i) == moving {
            continue;
        }
        if post.slots.get(i) != Some(s) {
            return Err(format!(
                "bystander slot {i} changed\n  before: {s:?}\n  after:  {:?}",
                post.slots.get(i)
            ));
        }
    }
    Ok(())
}

/// One lockstep step: executes `cmd` on both the editor and the model
/// and reconciles per the module protocol.
pub fn step(ed: &mut Editor<'_>, model: &mut Model, cmd: &Command) -> Result<(), String> {
    match cmd {
        Command::Edit { .. } => Err("`edit` is only valid as a journal head".into()),
        Command::Undo => {
            let expected = model.undo_depth() > 0;
            match ed.execute(Command::Undo) {
                Ok(Outcome::Count(n)) => {
                    if n != usize::from(expected) {
                        return Err(format!(
                            "undo reverted {n} commands, model expected {}",
                            usize::from(expected)
                        ));
                    }
                    if expected {
                        model.undo();
                    }
                }
                Ok(o) => return Err(format!("undo reported {o:?}")),
                Err(e) => return Err(format!("undo failed: {e}")),
            }
            check_equiv(ed, model)
        }
        Command::Redo => {
            let expected = model.redo_depth() > 0;
            match ed.execute(Command::Redo) {
                Ok(Outcome::Count(n)) => {
                    if n != usize::from(expected) {
                        return Err(format!(
                            "redo re-applied {n} commands, model expected {}",
                            usize::from(expected)
                        ));
                    }
                    if expected {
                        model.redo();
                    }
                }
                Ok(o) => return Err(format!("redo reported {o:?}")),
                // A fault during redo: the editor pushed the command
                // back onto its redo stack and rolled back; the model
                // is untouched, so plain equivalence must hold.
                Err(RiotError::FaultInjected(_)) => {}
                Err(e) => return Err(format!("redo failed: {e}")),
            }
            check_equiv(ed, model)
        }
        cmd => {
            let pre = model.core.clone();
            let warn_len = ed.warnings().len();
            let prediction = model.apply(cmd);
            match (ed.execute(cmd.clone()), prediction) {
                // The rollback proof: an injected fault must leave the
                // editor exactly where the pre-command model stands.
                (Err(RiotError::FaultInjected(_)), pred) => {
                    if matches!(pred, Prediction::Ok(_)) {
                        model.core = pre;
                    }
                    check_equiv(ed, model)
                        .map_err(|e| format!("state after injected fault diverged: {e}"))
                }
                (Ok(out), Prediction::Ok(pok)) => {
                    if !pok.outcome.matches(&out) {
                        return Err(format!(
                            "outcome diverged: editor {out:?}, model {:?}",
                            pok.outcome
                        ));
                    }
                    check_warnings(&ed.warnings()[warn_len..], &pok.warnings)?;
                    model.push_history(pre);
                    check_equiv(ed, model)
                }
                (Err(e), Prediction::Err(pe)) => {
                    if e != pe {
                        return Err(format!("error diverged: editor `{e}`, model `{pe}`"));
                    }
                    check_equiv(ed, model)
                }
                (Ok(out), Prediction::Observe) => {
                    observe_check(ed, &pre, cmd, &out)?;
                    model.core = capture_core(ed, pre.slots.len());
                    model.push_history(pre);
                    check_equiv(ed, model)
                }
                (Err(_), Prediction::Observe) => {
                    // Solver failure: the compound command rolled back
                    // and the model never moved.
                    check_equiv(ed, model)
                        .map_err(|e| format!("state after solver failure diverged: {e}"))
                }
                (Ok(out), Prediction::Err(pe)) => Err(format!(
                    "editor accepted ({out:?}) a command the model rejects with `{pe}`"
                )),
                (Err(e), Prediction::Ok(_)) => {
                    model.core = pre;
                    Err(format!(
                        "editor rejected (`{e}`) a command the model accepts"
                    ))
                }
            }
        }
    }
}

/// Serializes the session journal to the WAL, corrupts it per the
/// fuzzing stream, recovers, and proves both the prefix property and
/// that the recovered prefix replays cleanly through a fresh editor +
/// model pair.
pub fn crash_check(ed: &Editor<'_>, rng: &mut SplitMix64) -> Result<(), String> {
    let mut bytes = ed.journal().to_wal();
    let mode = rng.below(4);
    match mode {
        0 => {} // intact: recovery must be clean and complete
        1 => {
            // Torn tail: an interrupted write loses 1..=16 bytes.
            if bytes.len() > 9 {
                let cut = 1 + rng.below(16) as usize;
                let keep = bytes.len().saturating_sub(cut).max(8);
                bytes.truncate(keep);
            }
        }
        2 => {
            // Bit rot past the magic.
            if bytes.len() > 8 {
                let off = 8 + rng.below((bytes.len() - 8) as u64) as usize;
                bytes[off] ^= 1 << rng.below(8);
            }
        }
        _ => {
            // Garbage appended after a clean shutdown.
            bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x51, 0x07]);
        }
    }
    let rec = Journal::recover_wal(&bytes);
    let full: Vec<String> = ed
        .journal()
        .commands()
        .iter()
        .map(command_to_line)
        .collect();
    let got: Vec<String> = rec.journal.commands().iter().map(command_to_line).collect();
    if got.len() > full.len() || got[..] != full[..got.len()] {
        return Err(format!(
            "recovered journal is not a prefix of the truth\n  truth:     {full:?}\n  recovered: {got:?}"
        ));
    }
    if mode == 0 && (!rec.is_clean() || got.len() != full.len()) {
        return Err(format!(
            "intact WAL did not recover cleanly: {:?}, {}/{} records",
            rec.corruption,
            got.len(),
            full.len()
        ));
    }
    // Replay the recovered prefix through a fresh session, in lockstep
    // with a fresh model. The journal only records successes, so every
    // replayed command must succeed and conform.
    let cmds = rec.journal.commands();
    if let Some(Command::Edit { cell }) = cmds.first() {
        let mut lib = menu_library();
        let mut ed2 = Editor::open(&mut lib, cell)
            .map_err(|e| format!("recovered journal head failed to open: {e}"))?;
        let mut model2 = Model::from_editor(&ed2);
        for (i, cmd) in cmds[1..].iter().enumerate() {
            step(&mut ed2, &mut model2, cmd).map_err(|e| {
                format!(
                    "replay of recovered record {} (`{}`) diverged: {e}",
                    i + 1,
                    command_to_line(cmd)
                )
            })?;
        }
    } else if !cmds.is_empty() {
        return Err("recovered journal does not start with `edit`".into());
    }
    Ok(())
}

// A `Failure` carries the whole command history for shrinking, so it is
// necessarily bigger than clippy's default Err budget; boxing it would
// only push the indirection onto every caller.
#[allow(clippy::result_large_err)]
fn run_inner(
    cfg: &CheckConfig,
    mut commands: impl FnMut(&Model) -> Option<Command>,
) -> Result<Report, Failure> {
    let mut lib = menu_library();
    let mut ed = Editor::open(&mut lib, "TOP").expect("TOP opens");
    ed.set_fault_plan(FaultPlan::new(cfg.seed ^ 0xFA17_FA17, cfg.fault_rate));
    let mut model = Model::from_editor(&ed);
    model.demo_bug = cfg.demo_bug;
    let mut crash_rng = SplitMix64::new(cfg.seed ^ 0xC4A5_11C4);
    let mut history: Vec<Command> = Vec::new();
    let mut crash_checks = 0usize;
    let fail =
        |step: usize, command: Option<Command>, message: String, history: Vec<Command>| Failure {
            seed: cfg.seed,
            step,
            command,
            message,
            history,
        };
    let mut i = 0usize;
    while let Some(cmd) = commands(&model) {
        history.push(cmd.clone());
        if let Err(message) = step(&mut ed, &mut model, &cmd) {
            return Err(fail(i, Some(cmd), message, history));
        }
        if (i + 1).is_multiple_of(97) {
            crash_checks += 1;
            if let Err(message) = crash_check(&ed, &mut crash_rng) {
                return Err(fail(i, None, message, history));
            }
        }
        i += 1;
    }
    crash_checks += 1;
    if let Err(message) = crash_check(&ed, &mut crash_rng) {
        return Err(fail(i, None, message, history));
    }
    let plan = ed.fault_plan().expect("plan was set");
    Ok(Report {
        steps: i,
        faults_injected: plan.injected(),
        faults_consulted: plan.consulted(),
        crash_checks,
    })
}

/// One full harness run: `cfg.steps` generated commands with lockstep
/// conformance, fault injection, and periodic crash checks.
#[allow(clippy::result_large_err)]
pub fn run_check(cfg: &CheckConfig) -> Result<Report, Failure> {
    let mut generator = Generator::new(cfg.seed);
    let mut left = cfg.steps;
    run_inner(cfg, move |model| {
        if left == 0 {
            return None;
        }
        left -= 1;
        Some(generator.next_command(model))
    })
}

/// Replays a recovered journal (an `edit` head plus accepted commands
/// — exactly what [`riot_core::Journal::recover_wal`] or a riot-serve
/// session WAL yields) through a **fresh** editor and reference model
/// in lockstep on `lib`, checking full observable equivalence after
/// every command. Returns the number of records replayed (head
/// included).
///
/// This is how external subsystems prove a durability claim: if the
/// WAL's commands replay in lockstep with the model, the recovered
/// state is model-equivalent — not merely "did not crash".
///
/// # Errors
///
/// The first divergence (or replay failure), with its command index.
pub fn lockstep_replay(lib: &mut Library, cmds: &[Command]) -> Result<usize, String> {
    lockstep_model(lib, cmds).map(|(_, n)| n)
}

/// [`lockstep_replay`] that also hands back the final reference
/// [`Model`], so a session recovered by some *other* route — a
/// snapshot plus a compacted WAL tail, say — can be proved equivalent
/// to the full-history replay with [`check_equiv`].
///
/// # Errors
///
/// The first divergence (or replay failure), with its command index.
pub fn lockstep_model(lib: &mut Library, cmds: &[Command]) -> Result<(Model, usize), String> {
    let Some(Command::Edit { cell }) = cmds.first() else {
        return Err("journal must start with an `edit` head".into());
    };
    let cell = cell.clone();
    let mut ed = Editor::open(lib, &cell).map_err(|e| format!("open `{cell}`: {e}"))?;
    let mut model = Model::from_editor(&ed);
    check_equiv(&ed, &model).map_err(|e| format!("after `edit` head: {e}"))?;
    let mut n = 1usize;
    for cmd in &cmds[1..] {
        step(&mut ed, &mut model, cmd)
            .map_err(|e| format!("record {n} `{}`: {e}", command_to_line(cmd)))?;
        check_equiv(&ed, &model)
            .map_err(|e| format!("after record {n} `{}`: {e}", command_to_line(cmd)))?;
        n += 1;
    }
    Ok((model, n))
}

/// [`lockstep_replay`] over text command lines — the form a flight
/// recorder dump or a WAL tail carries. Each line is parsed with the
/// replay grammar before the lockstep check runs; the line number in
/// a parse error is 1-based.
///
/// # Errors
///
/// The first parse failure or lockstep divergence.
pub fn lockstep_replay_lines(lib: &mut Library, lines: &[String]) -> Result<usize, String> {
    let mut cmds = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        cmds.push(
            riot_core::parse_command_line(line, i + 1)
                .map_err(|e| format!("line {} `{line}`: {e}", i + 1))?,
        );
    }
    lockstep_replay(lib, &cmds)
}

/// Replays a fixed command list under the same protocol (the shrinking
/// predicate). Faults and crash fuzzing re-derive from `cfg.seed`, so
/// replaying an unshrunk failure history reproduces it exactly.
#[allow(clippy::result_large_err)]
pub fn run_commands(cfg: &CheckConfig, cmds: &[Command]) -> Result<Report, Failure> {
    let mut it = cmds.iter().cloned();
    run_inner(cfg, move |_| it.next())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_faultless_run_passes() {
        let cfg = CheckConfig {
            seed: 1,
            steps: 60,
            ..CheckConfig::default()
        };
        let report = run_check(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.steps, 60);
        assert_eq!(report.faults_injected, 0);
        assert!(report.crash_checks >= 1);
    }

    #[test]
    fn grid_solver_fault_site_rolls_back() {
        use riot_route::{RouterEngine, RouterOptions};

        // Build a session whose next ROUTE will reach the grid engine,
        // then arm a plan that passes `route.solve` and trips
        // `route.grid.solve` — its first two consults must be
        // [false, true], found by scanning seeds (deterministic).
        let seed = (0u64..10_000)
            .find(|&s| {
                let mut p = FaultPlan::new(s, 0.5);
                !p.should_inject(riot_core::FAULT_ROUTE_SOLVE)
                    && p.should_inject(riot_core::FAULT_ROUTE_GRID_SOLVE)
            })
            .expect("some seed starts [false, true]");

        let mut lib = menu_library();
        let mut ed = Editor::open(&mut lib, "TOP").expect("TOP opens");
        let mut model = Model::from_editor(&ed);
        let setup = [
            Command::Create {
                cell: "nand2".into(),
                instance: "I0".into(),
            },
            Command::Create {
                cell: "nand2".into(),
                instance: "I1".into(),
            },
            Command::Translate {
                instance: "I1".into(),
                d: riot_geom::Point::new(0, 60 * riot_geom::LAMBDA),
            },
        ];
        for cmd in setup {
            step(&mut ed, &mut model, &cmd).unwrap_or_else(|e| panic!("{e}"));
        }
        // A layer-matched, opposed from(I1)/to(I0) connector pair.
        let (fc, tc) = model
            .world_connectors(1)
            .iter()
            .flat_map(|f| {
                model
                    .world_connectors(0)
                    .into_iter()
                    .map(move |t| (f.clone(), t))
            })
            .find(|(f, t)| {
                f.layer == t.layer
                    && matches!(
                        (f.side, t.side),
                        (Some(a), Some(b)) if a.opposes(b)
                    )
            })
            .map(|(f, t)| (f.name, t.name))
            .expect("stacked nand2s expose an opposed pair");
        step(
            &mut ed,
            &mut model,
            &Command::Connect {
                from: "I1".into(),
                from_connector: fc,
                to: "I0".into(),
                to_connector: tc,
            },
        )
        .unwrap_or_else(|e| panic!("{e}"));

        ed.set_fault_plan(FaultPlan::new(seed, 0.5));
        let err = ed
            .execute(Command::Route {
                move_from: true,
                router: riot_route::RouterOptions {
                    engine: RouterEngine::Grid,
                    ..RouterOptions::new()
                },
            })
            .expect_err("the armed plan must trip the grid solver site");
        assert_eq!(
            err,
            RiotError::FaultInjected("route.grid.solve".into()),
            "the grid site, not route.solve, must have tripped"
        );
        let plan = ed.fault_plan().expect("plan was set");
        assert_eq!(plan.by_site(), &[("route.grid.solve", 1)]);
        // The rollback proof: the editor is exactly where the
        // untouched model stands — menu, slots, pending, geometry.
        check_equiv(&ed, &model).unwrap_or_else(|e| panic!("rollback diverged: {e}"));
    }

    #[test]
    fn faulted_run_rolls_back_everywhere() {
        let cfg = CheckConfig {
            seed: 2,
            steps: 80,
            fault_rate: 0.25,
            ..CheckConfig::default()
        };
        let report = run_check(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            report.faults_injected > 0,
            "a 25% plan over 80 steps should trip"
        );
    }

    #[test]
    fn demo_bug_is_caught() {
        let cfg = CheckConfig {
            seed: 3,
            steps: 400,
            demo_bug: true,
            ..CheckConfig::default()
        };
        let f = run_check(&cfg).expect_err("the seeded misprediction must surface");
        assert!(matches!(f.command, Some(Command::ClearPending)));
        // And the recorded history reproduces it exactly.
        assert!(run_commands(&cfg, &f.history).is_err());
    }

    #[test]
    fn replaying_a_failure_history_reproduces_it() {
        let cfg = CheckConfig {
            seed: 4,
            steps: 300,
            fault_rate: 0.15,
            demo_bug: true,
        };
        if let Err(f) = run_check(&cfg) {
            let again = run_commands(&cfg, &f.history).expect_err("history must reproduce");
            assert_eq!(again.step, f.step);
        }
    }
}
