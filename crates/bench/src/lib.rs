//! Shared workload generators for the benchmarks and the `figures`
//! regeneration binary.
//!
//! Workloads are deterministic (seeded [`rand::rngs::StdRng`]) so bench
//! runs and EXPERIMENTS.md numbers are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riot::geom::{Layer, Rect};
use riot::route::{RouteProblem, RouterOptions, Terminal};

/// A deterministic RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// An order-preserving metal route problem with `n` nets: both edges
/// get increasing offsets with random design-rule-respecting gaps, and
/// the top edge is shifted right by `shift` lambda (bigger shifts mean
/// more overlapping jog spans, hence more tracks).
pub fn route_problem(n: usize, shift: i64, seed: u64) -> RouteProblem {
    let mut r = rng(seed);
    let mut bottom = Vec::with_capacity(n);
    let mut top = Vec::with_capacity(n);
    let (mut xb, mut xt) = (0i64, shift);
    for i in 0..n {
        xb += 6 + r.gen_range(0..8);
        xt += 6 + r.gen_range(0..8);
        bottom.push(Terminal::new(format!("n{i}"), xb, Layer::Metal, 3));
        top.push(Terminal::new(format!("n{i}"), xt, Layer::Metal, 3));
    }
    RouteProblem::new(bottom, top)
}

/// The same problem with a given channel capacity.
pub fn route_problem_with_capacity(n: usize, shift: i64, cap: usize, seed: u64) -> RouteProblem {
    route_problem(n, shift, seed).with_options(RouterOptions {
        tracks_per_channel: cap,
        ..RouterOptions::new()
    })
}

/// The grid-router channel height used by [`grid_route_workload`].
pub const GRID_WORKLOAD_HEIGHT: i64 = 48;

/// A synthetic chip channel the river router **cannot route at all**:
/// every net changes layers between its bottom and top terminal
/// (bottom on diffusion/poly/metal, top on a different routable
/// layer), so the river router's single-layer precondition fails on
/// net 0 — only the A* grid router, with vias, can solve it. Terminals
/// sit on jittered ~10λ columns with small top-edge jogs; the channel
/// height is pinned to [`GRID_WORKLOAD_HEIGHT`] so the obstacle field
/// from [`grid_route_obstacles`] stays clear of the terminal rows.
pub fn grid_route_workload(n: usize, seed: u64) -> RouteProblem {
    let mut r = rng(seed);
    let mut bottom = Vec::with_capacity(n);
    let mut top = Vec::with_capacity(n);
    let mut x = 0i64;
    for i in 0..n {
        x += 10 + r.gen_range(0..5);
        let blayer = Layer::ROUTABLE[r.gen_range(0..Layer::ROUTABLE.len())];
        let others: Vec<Layer> = Layer::ROUTABLE
            .iter()
            .copied()
            .filter(|l| *l != blayer)
            .collect();
        let tlayer = others[r.gen_range(0..others.len())];
        let jog = r.gen_range(-2..3);
        bottom.push(Terminal::new(format!("n{i}"), x, blayer, 2));
        top.push(Terminal::new(format!("n{i}"), x + jog, tlayer, 2));
    }
    RouteProblem::new(bottom, top).with_options(RouterOptions {
        exact_height: Some(GRID_WORKLOAD_HEIGHT),
        ..RouterOptions::new()
    })
}

/// The obstacle field that goes with [`grid_route_workload`]: `count`
/// blocks on random routable layers scattered across the channel's
/// mid-band (clear of both terminal escape zones), in channel-local
/// lambda. Dense enough to force detours and layer hops; sparse enough
/// that every net still has a path.
pub fn grid_route_obstacles(n: usize, count: usize, seed: u64) -> Vec<(Layer, Rect)> {
    let mut r = rng(seed ^ 0x0B57_AC1E);
    let span = 15 * n as i64 + 10;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let layer = Layer::ROUTABLE[r.gen_range(0..Layer::ROUTABLE.len())];
        let x0 = r.gen_range(0..span);
        let y0 = r.gen_range(14..33);
        let w = r.gen_range(3..7);
        let h = r.gen_range(2..5);
        out.push((layer, Rect::new(x0, y0, x0 + w, y0 + h)));
    }
    out
}

/// A comb cell with `n` left-edge pins for stretch benchmarks, plus a
/// stretch spec that moves every pin to a random (monotone) target.
pub fn stretch_workload(
    n: usize,
    seed: u64,
) -> (riot::sticks::SticksCell, riot::rest::StretchSpec) {
    let mut r = rng(seed);
    let cell = riot::cells::parametric::comb("bench", riot::geom::Side::Left, n, 6);
    // The comb's pins are at pitch 6; targets grow each gap by 0..8.
    let mut spec = riot::rest::StretchSpec::new(riot::rest::Axis::Y);
    let mut cum = 0;
    for i in 0..n {
        cum += r.gen_range(0..8);
        let original = 6 * (i as i64 + 1);
        spec.push_target(format!("P{i}"), original + cum);
    }
    (cell, spec)
}

/// CIF text for a synthetic chip with `cells` definitions of `shapes`
/// boxes each, and one top-level call per definition.
pub fn cif_workload(cells: usize, shapes: usize, seed: u64) -> String {
    let mut r = rng(seed);
    let mut out = String::new();
    use std::fmt::Write as _;
    for c in 1..=cells {
        let _ = writeln!(out, "DS {c} 1 1;");
        let _ = writeln!(out, "9 cell{c};");
        let _ = writeln!(out, "L NM;");
        for _ in 0..shapes {
            let x = r.gen_range(0..100_000);
            let y = r.gen_range(0..100_000);
            let w = 2 * r.gen_range(1..200);
            let h = 2 * r.gen_range(1..200);
            let _ = writeln!(out, "B {w} {h} {x} {y};");
        }
        let _ = writeln!(out, "94 P{c} 0 0 NM 250;");
        let _ = writeln!(out, "DF;");
    }
    for c in 1..=cells {
        let _ = writeln!(out, "C {c} T {} {};", (c as i64) * 1000, 0);
    }
    out.push_str("E\n");
    out
}

/// A flat soup of `n` boxes and wires spread over the four checked DRC
/// layers at roughly constant density (the occupied area grows with
/// `n`, so spacing-violation counts scale linearly, not quadratically).
pub fn rect_soup(n: usize, seed: u64) -> Vec<riot::cif::FlatShape> {
    use riot::cif::{FlatShape, Geometry};
    use riot::geom::{Layer, Path, Point, Rect, LAMBDA};
    let mut r = rng(seed);
    let layers = [Layer::Metal, Layer::Poly, Layer::Diffusion, Layer::Contact];
    let side = ((n as f64).sqrt() * 4.0).ceil() as i64 + 8;
    let mut shapes = Vec::with_capacity(n);
    for _ in 0..n {
        let layer = layers[r.gen_range(0..layers.len())];
        let x = r.gen_range(0..side) * LAMBDA;
        let y = r.gen_range(0..side) * LAMBDA;
        if r.gen_range(0..5) == 0 {
            let len = r.gen_range(2..10) * LAMBDA;
            let path = Path::from_points([
                Point::new(x, y),
                Point::new(x + len, y),
                Point::new(x + len, y + len),
            ])
            .expect("manhattan by construction");
            shapes.push(FlatShape {
                layer,
                geometry: Geometry::Wire {
                    width: r.gen_range(1..4) * LAMBDA,
                    path,
                },
                depth: 0,
            });
        } else {
            let w = r.gen_range(1..7) * LAMBDA;
            let h = r.gen_range(1..7) * LAMBDA;
            shapes.push(FlatShape {
                layer,
                geometry: Geometry::Box(Rect::new(x, y, x + w, y + h)),
                depth: 0,
            });
        }
    }
    shapes
}

/// CIF text for a DRC-clean chip built from one leaf symbol placed on
/// a `grid`×`grid` lattice — `leaf_shapes * grid * grid` flat shapes
/// total. Every box is 4λ×4λ metal with ≥4λ gaps inside the leaf and
/// ≥12λ between instances, so the whole chip passes `RuleSet::nmos`
/// with zero violations, and a single instance moved by ≤4λ stays
/// clean. This is the damage-region benchmark workload: huge chip, tiny
/// edits.
pub fn grid_chip(leaf_shapes: usize, grid: usize) -> String {
    use riot::geom::LAMBDA;
    use std::fmt::Write as _;
    assert!(leaf_shapes >= 1 && grid >= 1);
    let side = (leaf_shapes as f64).sqrt().ceil() as i64;
    let pitch = 8 * LAMBDA;
    let mut out = String::new();
    let _ = writeln!(out, "DS 1 1 1;");
    let _ = writeln!(out, "L NM;");
    for i in 0..leaf_shapes as i64 {
        let cx = (i % side) * pitch + 2 * LAMBDA;
        let cy = (i / side) * pitch + 2 * LAMBDA;
        let _ = writeln!(out, "B {} {} {cx} {cy};", 4 * LAMBDA, 4 * LAMBDA);
    }
    let _ = writeln!(out, "DF;");
    let instance_pitch = side * pitch + 8 * LAMBDA;
    for gy in 0..grid as i64 {
        for gx in 0..grid as i64 {
            let _ = writeln!(
                out,
                "C 1 T {} {};",
                gx * instance_pitch,
                gy * instance_pitch
            );
        }
    }
    out.push_str("E\n");
    out
}

/// CIF text for a deeply shared hierarchy: symbol `k` calls symbol
/// `k-1` `fanout` times (rotated and mirrored, so the flattener pays
/// full transform cost inside the tree), and the top level places the
/// deepest symbol `top_calls` times by translation. The flattened shape
/// count grows as `fanout^(levels-1)`, but there are only `levels`
/// distinct symbols — the memoizing flattener expands each exactly
/// once.
pub fn shared_hierarchy(
    levels: usize,
    fanout: usize,
    leaf_shapes: usize,
    top_calls: usize,
) -> String {
    use std::fmt::Write as _;
    assert!(levels >= 2 && fanout >= 1);
    let mut out = String::new();
    let orientations = ["R 0 1", "R -1 0", "R 0 -1", "M X", "M Y", "R 1 0"];
    for level in 1..=levels {
        let _ = writeln!(out, "DS {level} 1 1;");
        if level == 1 {
            let _ = writeln!(out, "L NM;");
            for s in 0..leaf_shapes {
                let x = (s as i64) * 700;
                if s % 4 != 3 {
                    // Multi-segment wires dominate assembled layouts;
                    // they are also where transform cost concentrates.
                    let _ = writeln!(
                        out,
                        "L NP; W 200 {x} 0 {x} 800 {} 800 {} 1600 {} 1600;",
                        x + 600,
                        x + 600,
                        x + 1200
                    );
                } else {
                    let _ = writeln!(out, "L NM; B 400 250 {x} {};", (s as i64) * 300);
                }
            }
        } else {
            for c in 0..fanout {
                let orient = orientations[c % orientations.len()];
                let _ = writeln!(
                    out,
                    "C {} T {} {} {orient};",
                    level - 1,
                    (c as i64) * 5000,
                    (level as i64) * 2500
                );
            }
        }
        let _ = writeln!(out, "DF;");
    }
    for c in 0..top_calls {
        let _ = writeln!(out, "C {levels} T {} 0;", (c as i64) * 100_000);
    }
    out.push_str("E\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_workloads_always_route() {
        for n in [4, 32] {
            for shift in [0, 50] {
                let p = route_problem(n, shift, 42);
                let r = riot::route::river_route(&p).expect("workload routable");
                assert_eq!(r.wires().len(), n);
            }
        }
    }

    #[test]
    fn grid_workload_routes_where_the_river_cannot() {
        let p = grid_route_workload(24, 7);
        let obstacles = grid_route_obstacles(24, 24, 7);
        assert!(
            matches!(
                riot::route::river_route(&p),
                Err(riot::route::RouteError::LayerMismatch { .. })
            ),
            "the workload must defeat the river router"
        );
        let route = riot::route::grid_route(&p, &obstacles).expect("grid routes it");
        assert_eq!(route.wires().len(), 24);
        riot::route::grid::verify_clearance(&route, &obstacles).unwrap();
    }

    #[test]
    fn workloads_deterministic() {
        assert_eq!(route_problem(16, 10, 7), route_problem(16, 10, 7));
        assert_eq!(cif_workload(3, 5, 1), cif_workload(3, 5, 1));
    }

    #[test]
    fn stretch_workload_feasible() {
        let (cell, spec) = stretch_workload(8, 3);
        let out = riot::rest::stretch(&cell, &spec).expect("monotone targets");
        out.validate().unwrap();
    }

    #[test]
    fn rect_soup_is_deterministic_and_checkable() {
        let a = rect_soup(200, 11);
        assert_eq!(a, rect_soup(200, 11));
        let rules = riot::drc::RuleSet::nmos();
        let indexed = riot::drc::check(&a, &rules);
        let naive = riot::drc::naive::check(&a, &rules);
        assert_eq!(indexed.len(), naive.len());
    }

    #[test]
    fn shared_hierarchy_flattens_both_ways() {
        let text = shared_hierarchy(4, 3, 4, 2);
        let file = riot::cif::parse(&text).unwrap();
        let memo = riot::cif::flatten(&file).unwrap();
        let rec = riot::cif::flatten_recursive(&file).unwrap();
        assert_eq!(memo, rec);
        // fanout^(levels-1) leaf instances per top call, times shapes.
        assert!(memo.len() >= 2 * 27 * 4);
    }

    #[test]
    fn grid_chip_is_drc_clean_and_sized_right() {
        let file = riot::cif::parse(&grid_chip(9, 3)).unwrap();
        let flat = riot::cif::flatten(&file).unwrap();
        assert_eq!(flat.len(), 9 * 3 * 3);
        let violations = riot::drc::check(&flat, &riot::drc::RuleSet::nmos());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn cif_workload_parses() {
        let f = riot::cif::parse(&cif_workload(4, 10, 9)).unwrap();
        assert_eq!(f.cells().len(), 4);
        assert_eq!(f.top_calls().len(), 4);
    }
}
