//! The spatial-pipeline benchmark: naive vs indexed DRC and recursive
//! vs memoized CIF flatten, emitting `BENCH_spatial.json`.
//!
//! ```text
//! cargo run --release -p riot-bench --bin spatial -- \
//!     [--shapes N] [--levels L] [--fanout F] [--top-calls C] \
//!     [--iters K] [--out PATH]
//! ```
//!
//! The indexed DRC timings are repeated at 1, 2 and 4 worker threads
//! (via `riot::geom::par::set_threads`); the headline `speedup` numbers
//! compare the best indexed/memoized time against the retained
//! reference implementations on identical inputs, after asserting both
//! sides produce identical results.

use riot::cif::FlatShape;
use riot::drc::{naive, RuleSet, Violation};
use riot::geom::par;
use std::time::Instant;

struct Args {
    shapes: usize,
    levels: usize,
    fanout: usize,
    top_calls: usize,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        shapes: 10_000,
        levels: 5,
        fanout: 8,
        top_calls: 8,
        iters: 3,
        out: "BENCH_spatial.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--shapes" => args.shapes = value("--shapes").parse().expect("--shapes"),
            "--levels" => args.levels = value("--levels").parse().expect("--levels"),
            "--fanout" => args.fanout = value("--fanout").parse().expect("--fanout"),
            "--top-calls" => args.top_calls = value("--top-calls").parse().expect("--top-calls"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Minimum wall time of `iters` runs, in nanoseconds, plus the last
/// result (minimum, not mean: the steady-state cost is what the
/// speedup claims are about).
fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

fn violation_keys(mut vs: Vec<Violation>) -> Vec<String> {
    vs.sort_by_key(|v| format!("{v:?}"));
    vs.into_iter().map(|v| format!("{v:?}")).collect()
}

fn bench_drc(args: &Args) -> String {
    let shapes: Vec<FlatShape> = riot_bench::rect_soup(args.shapes, 0xD0C);
    let rules = RuleSet::nmos();

    let (naive_ns, reference) = time_ns(args.iters, || naive::check(&shapes, &rules));
    let mut indexed_ns = Vec::new();
    let mut last = Vec::new();
    for threads in [1usize, 2, 4] {
        par::set_threads(threads);
        let (ns, got) = time_ns(args.iters, || riot::drc::check(&shapes, &rules));
        par::set_threads(0);
        assert_eq!(
            violation_keys(got.clone()),
            violation_keys(reference.clone()),
            "indexed DRC diverged from naive at {threads} threads"
        );
        indexed_ns.push((threads, ns));
        last = got;
    }
    let best = indexed_ns.iter().map(|&(_, ns)| ns).min().unwrap();
    let speedup = naive_ns as f64 / best as f64;
    eprintln!(
        "drc: {} shapes, {} violations, naive {:.2} ms, indexed best {:.2} ms, speedup {speedup:.1}x",
        args.shapes,
        last.len(),
        naive_ns as f64 / 1e6,
        best as f64 / 1e6
    );
    let per_thread = indexed_ns
        .iter()
        .map(|(t, ns)| format!("\"{t}\": {ns}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n    \"shapes\": {},\n    \"violations\": {},\n    \"naive_ns\": {},\n    \"indexed_ns\": {{ {} }},\n    \"speedup\": {:.2}\n  }}",
        args.shapes,
        last.len(),
        naive_ns,
        per_thread,
        speedup
    )
}

fn bench_flatten(args: &Args) -> String {
    let text = riot_bench::shared_hierarchy(args.levels, args.fanout, 6, args.top_calls);
    let file = riot::cif::parse(&text).expect("generated CIF parses");

    let (recursive_ns, reference) =
        time_ns(args.iters, || riot::cif::flatten_recursive(&file).unwrap());
    let (memo_ns, (flat, stats)) =
        time_ns(args.iters, || riot::cif::flatten_counted(&file).unwrap());
    assert_eq!(flat, reference, "memoized flatten diverged from recursive");
    let speedup = recursive_ns as f64 / memo_ns as f64;
    eprintln!(
        "flatten: {} shapes ({} levels, fanout {}), recursive {:.2} ms, memo {:.2} ms, speedup {speedup:.1}x",
        stats.shapes,
        args.levels,
        args.fanout,
        recursive_ns as f64 / 1e6,
        memo_ns as f64 / 1e6
    );
    format!(
        "{{\n    \"levels\": {},\n    \"fanout\": {},\n    \"shapes\": {},\n    \"memo_cells\": {},\n    \"memo_hits\": {},\n    \"memo_misses\": {},\n    \"recursive_ns\": {},\n    \"memo_ns\": {},\n    \"speedup\": {:.2}\n  }}",
        args.levels,
        args.fanout,
        stats.shapes,
        stats.memo_cells,
        stats.memo_hits,
        stats.memo_misses,
        recursive_ns,
        memo_ns,
        speedup
    )
}

fn main() {
    let args = parse_args();
    let drc = bench_drc(&args);
    let flatten = bench_flatten(&args);
    let json = format!(
        "{{\n  \"schema\": \"riot-bench-spatial/1\",\n  \"iters\": {},\n  \"drc\": {},\n  \"flatten\": {}\n}}\n",
        args.iters, drc, flatten
    );
    std::fs::write(&args.out, &json).expect("write benchmark output");
    eprintln!("wrote {}", args.out);
}
