//! `riot-profile`: replay a command journal under tracing and report
//! per-command-kind latency.
//!
//! ```text
//! riot-profile <journal.replay> [--json-out PATH] [--chrome PATH]
//! riot-profile gen [PATH]
//! ```
//!
//! The first form replays the journal against the built-in standard
//! cell library with `riot-trace` enabled, prints a latency table
//! (count / total / p50 / p99 per command kind), and writes
//! `BENCH_profile.json` with the schema
//! `{command_kind: {count, total_ns, p50_ns, p99_ns}}`. `--chrome`
//! additionally writes a Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or Perfetto.
//!
//! The `gen` form records a representative editing session — abutment
//! chain, river route, stretch, undo/redo, finish — and writes it as a
//! replay journal (default `examples/profile_session.replay`), which is
//! exactly the artifact the CI profile smoke step replays.

use riot::core::{replay, AbutOptions, Editor, Journal, Library, RouteOptions, StretchOptions};
use riot::geom::{Point, LAMBDA};
use riot::trace::export::fmt_ns;
use std::fmt::Write as _;
use std::process::ExitCode;

/// A two-output driver leaf: pins `X`/`Y` on the right edge, 8λ apart.
const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

/// A two-input receiver leaf: pins `A`/`B` on the left edge, 6λ apart.
const RECEIVER: &str = "\
sticks receiver
bbox 0 0 12 24
pin A left NP 0 6 2
pin B left NP 0 12 2
wire NP 2 0 6 8 6
wire NP 2 0 12 8 12
end
";

/// The fixed cell menu every profile run starts from. Journals replayed
/// by this tool may reference any of these cells by name.
fn standard_library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register())
        .expect("standard cell loads");
    lib.add_sticks_cell(riot::cells::nand2())
        .expect("standard cell loads");
    lib.add_sticks_cell(riot::cells::or2())
        .expect("standard cell loads");
    lib.load_sticks(DRIVER).expect("driver loads");
    lib.load_sticks(RECEIVER).expect("receiver loads");
    lib
}

/// Records the canonical profile session: an abutted shift-register
/// chain, a river route, a stretch connection, an undo/redo pair, and
/// the finishing pass.
fn record_session() -> Result<Journal, Box<dyn std::error::Error>> {
    let mut lib = standard_library();
    let sr = lib.find("shiftcell").ok_or("shiftcell missing")?;
    let drv = lib.find("driver").ok_or("driver missing")?;
    let rcv = lib.find("receiver").ok_or("receiver missing")?;

    let mut ed = Editor::open(&mut lib, "PROFILE")?;

    // A 4-stage shift-register chain, connected by abutment.
    let mut prev = ed.create_instance(sr)?;
    for k in 1..4 {
        let next = ed.create_instance(sr)?;
        ed.translate_instance(next, Point::new(30 * k * LAMBDA, 0))?;
        ed.connect(next, "SI", prev, "SO")?;
        ed.abut(AbutOptions::default())?;
        prev = next;
    }

    // A river route between a driver/receiver pair above the chain.
    let d1 = ed.create_instance(drv)?;
    ed.translate_instance(d1, Point::new(0, 100 * LAMBDA))?;
    let r1 = ed.create_instance(rcv)?;
    ed.translate_instance(r1, Point::new(40 * LAMBDA, 107 * LAMBDA))?;
    ed.connect(r1, "A", d1, "X")?;
    ed.route(RouteOptions::default())?;

    // A stretch connection on a second pair: the receiver's pins grow
    // apart to meet the driver's.
    let d2 = ed.create_instance(drv)?;
    ed.translate_instance(d2, Point::new(0, 200 * LAMBDA))?;
    let r2 = ed.create_instance(rcv)?;
    ed.translate_instance(r2, Point::new(40 * LAMBDA, 200 * LAMBDA))?;
    ed.connect(r2, "A", d2, "X")?;
    ed.connect(r2, "B", d2, "Y")?;
    ed.stretch(StretchOptions::default())?;

    // Exercise the history machinery.
    ed.translate_instance(d2, Point::new(0, 2 * LAMBDA))?;
    ed.undo()?;
    ed.redo()?;

    ed.finish()?;
    Ok(ed.journal().clone())
}

/// One aggregated row of the per-kind latency report.
struct KindRow {
    kind: String,
    count: u64,
    total_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Reads every `cmd.*` histogram out of the registry.
fn aggregate() -> Vec<KindRow> {
    let mut rows: Vec<KindRow> = riot::trace::registry()
        .histograms()
        .into_iter()
        .filter_map(|(name, h)| {
            let kind = name.strip_prefix("cmd.")?;
            if h.count() == 0 {
                return None;
            }
            Some(KindRow {
                kind: kind.to_owned(),
                count: h.count(),
                total_ns: h.sum(),
                p50_ns: h.p50().unwrap_or(0),
                p99_ns: h.p99().unwrap_or(0),
            })
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    rows
}

fn table(rows: &[KindRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>10} {:>10}",
        "command", "count", "total", "p50", "p99"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>10} {:>10} {:>10}",
            r.kind,
            r.count,
            fmt_ns(r.total_ns),
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
        );
    }
    out
}

fn profile_json(rows: &[KindRow]) -> String {
    let mut out = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  \"{}\": {{\"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            riot::trace::export::escape_json(&r.kind),
            r.count,
            r.total_ns,
            r.p50_ns,
            r.p99_ns,
        );
    }
    out.push_str("\n}\n");
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: riot-profile <journal.replay> [--json-out PATH] [--chrome PATH]\n       riot-profile gen [PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-V" || a == "--version") {
        println!("riot-profile {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        return usage();
    }

    if args[0] == "gen" {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("examples/profile_session.replay");
        let journal = match record_session() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("riot-profile: session recording failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, journal.to_text()) {
            eprintln!("riot-profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} commands)", journal.commands().len());
        return ExitCode::SUCCESS;
    }

    let mut journal_path: Option<&str> = None;
    let mut json_path = "BENCH_profile.json".to_owned();
    let mut chrome_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" | "--json-out" => match it.next() {
                Some(p) => json_path = p.clone(),
                None => return usage(),
            },
            "--chrome" => match it.next() {
                Some(p) => chrome_path = Some(p.clone()),
                None => return usage(),
            },
            p if journal_path.is_none() => journal_path = Some(p),
            _ => return usage(),
        }
    }
    let Some(journal_path) = journal_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(journal_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("riot-profile: cannot read {journal_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match Journal::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("riot-profile: bad journal {journal_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    riot::trace::reset();
    riot::trace::enable(true);
    let mut lib = standard_library();
    let replay_result = replay(&journal, &mut lib);
    riot::trace::enable(false);
    let warnings = match replay_result {
        Ok(w) => w,
        Err(e) => {
            eprintln!("riot-profile: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &warnings {
        eprintln!("warning: {w}");
    }

    let rows = aggregate();
    print!("{}", table(&rows));
    let json = profile_json(&rows);
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("riot-profile: cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {json_path}");
    if let Some(p) = chrome_path {
        if let Err(e) = std::fs::write(&p, riot::trace::chrome_trace()) {
            eprintln!("riot-profile: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {p}");
    }

    if rows.is_empty() {
        eprintln!("riot-profile: journal produced no command spans");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
