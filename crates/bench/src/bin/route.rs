//! The routing benchmark: river vs grid engines and serial vs parallel
//! grid planning, emitting `BENCH_route.json`.
//!
//! ```text
//! cargo run --release -p riot-bench --bin route -- \
//!     [--nets N] [--obstacles K] [--iters I] [--out PATH]
//! ```
//!
//! Two workloads:
//!
//! * **grid-only** — a layer-mismatched, obstacle-dense channel
//!   ([`riot_bench::grid_route_workload`]) the river router cannot
//!   route at all (asserted). The grid router solves it at 1 and 4
//!   planner threads; the results are asserted identical, clearance-
//!   and DRC-checked, and only then timed. The headline `speedup` is
//!   serial over parallel wall time.
//! * **river-routable** — the classic order-preserving metal channel,
//!   solved by both engines on identical input, giving the
//!   river-vs-grid cost ratio for the fast path the grid router is
//!   *not* meant to replace.

use riot::drc::RuleSet;
use riot::geom::par;
use riot::route::{grid, grid_route, river_route, GridRoute};
use std::time::Instant;

struct Args {
    nets: usize,
    obstacles: usize,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        nets: 256,
        obstacles: 256,
        iters: 3,
        out: "BENCH_route.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--nets" => args.nets = value("--nets").parse().expect("--nets"),
            "--obstacles" => args.obstacles = value("--obstacles").parse().expect("--obstacles"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Minimum wall time of `iters` runs, in nanoseconds, plus the last
/// result (minimum, not mean: the steady-state cost is what the
/// speedup claims are about).
fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best, out.expect("at least one iteration"))
}

/// Full mask-level DRC of the route cell: sticks → CIF shapes →
/// `RuleSet::nmos`. Any violation is a routing bug, not a bench datum.
fn assert_drc_clean(route: &GridRoute, label: &str) {
    let cell = route.to_sticks_cell("bench_route");
    cell.validate().expect("route cell validates");
    let shapes: Vec<riot::cif::FlatShape> = riot::sticks::mask::to_cif_cell(&cell, 1)
        .shapes
        .into_iter()
        .map(|s| riot::cif::FlatShape {
            layer: s.layer,
            geometry: s.geometry,
            depth: 0,
        })
        .collect();
    let violations = riot::drc::check(&shapes, &RuleSet::nmos());
    assert!(
        violations.is_empty(),
        "{label}: route cell has DRC violations: {violations:?}"
    );
}

fn bench_grid(args: &Args) -> String {
    let problem = riot_bench::grid_route_workload(args.nets, 7);
    let obstacles = riot_bench::grid_route_obstacles(args.nets, args.obstacles, 42);

    // The workload's whole point: the river router cannot touch it.
    let river = river_route(&problem);
    assert!(
        matches!(river, Err(riot::route::RouteError::LayerMismatch { .. })),
        "the grid workload must defeat the river router, got {river:?}"
    );

    // Correctness before timing: serial and parallel planning must
    // produce the identical route, clearance-clean against the
    // obstacle field and DRC-clean at mask level.
    par::set_threads(1);
    let serial_route = grid_route(&problem, &obstacles).expect("serial grid solve");
    par::set_threads(4);
    let parallel_route = grid_route(&problem, &obstacles).expect("parallel grid solve");
    par::set_threads(0);
    assert_eq!(
        serial_route, parallel_route,
        "grid routing must be thread-count invariant"
    );
    grid::verify_clearance(&serial_route, &obstacles).expect("clearance");
    assert_drc_clean(&serial_route, "grid workload");

    // The gated speedup is the plan phase's deterministic work/span
    // decomposition: per-net expansion counts are identical at any
    // thread count (asserted above via route equality), so total plan
    // work over the heaviest contiguous 4-worker chunk — the same
    // chunking `par::map_heavy` uses — measures the parallelism the
    // plan/commit architecture exposes. Wall-clock at 1 vs 4 worker
    // threads is reported alongside, but only tracks the decomposition
    // on hosts with at least 4 real cores (CI containers often pin 1).
    let per = serial_route.plan_expansions();
    let plan_work: u64 = per.iter().sum();
    let workers = 4usize;
    let chunk = per.len().div_ceil(workers);
    let plan_span: u64 = per
        .chunks(chunk)
        .map(|c| c.iter().sum())
        .max()
        .unwrap_or(0)
        .max(1);
    let parallel_speedup = plan_work as f64 / plan_span as f64;

    par::set_threads(1);
    let (serial_ns, _) = time_ns(args.iters, || grid_route(&problem, &obstacles).unwrap());
    par::set_threads(4);
    let (parallel_ns, route) = time_ns(args.iters, || grid_route(&problem, &obstacles).unwrap());
    par::set_threads(0);
    let wall_speedup = serial_ns as f64 / parallel_ns as f64;
    let nets_per_sec = args.nets as f64 / (serial_ns.min(parallel_ns) as f64 / 1e9);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let stats = route.stats();
    eprintln!(
        "grid: {} nets, {} obstacles, serial {:.2} ms, parallel {:.2} ms (host has {} cpus), \
         plan speedup {parallel_speedup:.2}x at {workers} workers, {:.0} nets/s",
        args.nets,
        args.obstacles,
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
        host_cpus,
        nets_per_sec
    );
    format!(
        "{{\n    \"nets\": {},\n    \"obstacles\": {},\n    \"river_routable\": false,\n    \"serial_ns\": {},\n    \"parallel_ns\": {},\n    \"wall_speedup\": {:.2},\n    \"host_cpus\": {},\n    \"plan_workers\": {},\n    \"plan_work\": {},\n    \"plan_span\": {},\n    \"parallel_speedup\": {:.2},\n    \"speedup_model\": \"plan-phase work over heaviest {}-worker chunk, from thread-invariant per-net A* expansion counts; wall_speedup tracks this only when host_cpus >= plan_workers\",\n    \"nets_per_sec\": {:.0},\n    \"expansions\": {},\n    \"vias\": {},\n    \"conflicts\": {},\n    \"retries\": {},\n    \"restarts\": {}\n  }}",
        args.nets,
        args.obstacles,
        serial_ns,
        parallel_ns,
        wall_speedup,
        host_cpus,
        workers,
        plan_work,
        plan_span,
        parallel_speedup,
        workers,
        nets_per_sec,
        stats.expansions,
        stats.vias,
        stats.conflicts,
        stats.retries,
        stats.restarts
    )
}

fn bench_river_vs_grid(args: &Args) -> String {
    // An order-preserving all-metal channel both engines can solve.
    let problem = riot_bench::route_problem(args.nets, 20, 7);
    let (river_ns, river) = time_ns(args.iters, || river_route(&problem).unwrap());
    let (grid_ns, gridr) = time_ns(args.iters, || grid_route(&problem, &[]).unwrap());
    assert_eq!(river.wires().len(), gridr.wires().len());
    assert_drc_clean(&gridr, "river-routable workload");
    let ratio = grid_ns as f64 / river_ns as f64;
    eprintln!(
        "river-vs-grid: {} nets, river {:.3} ms, grid {:.3} ms, grid/river {ratio:.1}x",
        args.nets,
        river_ns as f64 / 1e6,
        grid_ns as f64 / 1e6
    );
    format!(
        "{{\n    \"nets\": {},\n    \"river_ns\": {},\n    \"grid_ns\": {},\n    \"grid_over_river\": {:.2}\n  }}",
        args.nets, river_ns, grid_ns, ratio
    )
}

fn main() {
    let args = parse_args();
    let grid = bench_grid(&args);
    let comparison = bench_river_vs_grid(&args);
    let json = format!(
        "{{\n  \"schema\": \"riot-bench-route/1\",\n  \"iters\": {},\n  \"grid\": {},\n  \"river_vs_grid\": {}\n}}\n",
        args.iters, grid, comparison
    );
    std::fs::write(&args.out, &json).expect("write benchmark output");
    eprintln!("wrote {}", args.out);
}
