//! Regenerates every figure of the paper and prints the measured
//! numbers recorded in EXPERIMENTS.md.
//!
//! Run with `cargo run -p riot-bench --bin figures`. Artifacts land in
//! `out/figures/`.

use riot::core::{Editor, Library};
use riot::filter::{build_chip, build_logic, LogicStyle};
use riot::geom::{Point, LAMBDA};
use riot::graphics::device::{charles, gigi};
use riot::graphics::svg::to_svg;
use riot::route::river_route;
use riot::ui::render::{editor_ops, flat_cif_ops, leaf_geometry_ops, RenderOptions};
use riot::ui::{GraphicalCommand, InteractiveSession};
use std::path::Path;

type Step = fn(&Path) -> Result<(), Box<dyn std::error::Error>>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("out/figures");
    std::fs::create_dir_all(dir)?;
    let steps: [(&str, Step); 11] = [
        ("figure 1", fig1),
        ("figure 2", fig2),
        ("figure 3", fig3),
        ("figure 4", fig4),
        ("figure 5", fig5),
        ("figure 6", fig6),
        ("figure 7", fig7),
        ("figure 8", fig8),
        ("figure 9", fig9),
        ("figure 10", fig10),
        ("verification", |_| verify()),
    ];
    let mut timings = Vec::with_capacity(steps.len());
    for (name, step) in steps {
        let t0 = std::time::Instant::now();
        step(dir)?;
        timings.push((name, t0.elapsed()));
    }
    println!("\n== generation timings ==");
    let total: std::time::Duration = timings.iter().map(|&(_, d)| d).sum();
    for (name, d) in &timings {
        println!(
            "  {name:<14} {}",
            riot::trace::export::fmt_ns(d.as_nanos() as u64)
        );
    }
    println!(
        "  {:<14} {}",
        "total",
        riot::trace::export::fmt_ns(total.as_nanos() as u64)
    );
    println!("\nall figures regenerated under {}", dir.display());
    Ok(())
}

/// Beyond the paper: DRC and electrical verification of the assembly.
fn verify() -> Result<(), Box<dyn std::error::Error>> {
    println!("== verification (paper's future work) ==");
    for style in [LogicStyle::Routed, LogicStyle::Stretched] {
        let logic = build_logic(4, style)?;
        let cif = riot::core::export::to_cif(&logic.lib, &logic.cell)?;
        let flat = riot::cif::flatten(&cif)?;
        let violations = riot::drc::check(&flat, &riot::drc::RuleSet::nmos());
        println!(
            "  DRC {:<10} {} violation(s){}",
            style.name(),
            violations.len(),
            if violations.is_empty() {
                " — clean"
            } else {
                ""
            }
        );
    }
    // Switch-level truth tables of the generated gates.
    use riot::extract::sim::{simulate, Level};
    let nl = riot::extract::extract(&riot::cells::nand2())?;
    let mut row = String::from("  NAND truth table:");
    for (a, b) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)] {
        let lv = |v: u8| if v == 1 { Level::High } else { Level::Low };
        let r = simulate(
            &nl,
            &[
                ("PWRL", Level::High),
                ("GNDL", Level::Low),
                ("A", lv(a)),
                ("B", lv(b)),
            ],
        )?;
        row.push_str(&format!(" {a}{b}->{}", r.pin("OUT")));
    }
    println!("{row}");
    Ok(())
}

/// Figure 1: the two workstation configurations, exercised by pushing
/// the same display list through both device models.
fn fig1(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 1: workstation configurations ==");
    let logic = build_logic(4, LogicStyle::Routed)?;
    let mut lib = logic.lib;
    let ed = Editor::open(&mut lib, &logic.cell)?;
    let list = editor_ops(&ed, RenderOptions::default())?;
    for device in [charles(), gigi()] {
        let fb = device.render(&list);
        let file = dir.join(format!("fig1_{}.ppm", device.name().to_lowercase()));
        std::fs::write(&file, fb.to_ppm())?;
        println!(
            "  {:<8} {}x{} pixels, {:>2} colors, {:>6} lit -> {}",
            device.name(),
            device.width(),
            device.height(),
            device.palette().len(),
            fb.lit_pixels(),
            file.display()
        );
    }
    Ok(())
}

/// Figure 2: the display organization — a live screen with both menus.
fn fig2(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 2: display organization ==");
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register())?;
    lib.add_sticks_cell(riot::cells::nand2())?;
    lib.add_sticks_cell(riot::cells::or2())?;
    let ed = Editor::open(&mut lib, "EDIT")?;
    let mut s = InteractiveSession::new(ed, 512, 480);
    s.click_cell("shiftcell")?;
    s.click_command(GraphicalCommand::Create)?;
    s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA))?;
    s.fit_view();
    let fb = s.render();
    let file = dir.join("fig2_screen.ppm");
    std::fs::write(&file, fb.to_ppm())?;
    println!(
        "  editing area {:?}, cell menu {:?}, command menu {:?}",
        s.layout().editing_area(),
        s.layout().cell_menu_area(),
        s.layout().command_menu_area()
    );
    println!("  -> {}", file.display());
    Ok(())
}

/// Figure 3: Riot's view of a cell instance — bounding box, connector
/// crosses sized by width and colored by layer, names on.
fn fig3(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 3: instance view ==");
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register())?;
    let mut ed = Editor::open(&mut lib, "VIEW")?;
    let i = ed.create_instance(sr)?;
    let mut list = riot::graphics::DisplayList::new();
    riot::ui::render::instance_ops(
        &ed,
        i,
        RenderOptions {
            cell_names: true,
            connector_names: true,
        },
        &mut list,
    )?;
    let file = dir.join("fig3_instance.svg");
    std::fs::write(&file, to_svg(&list))?;
    println!(
        "  {} connectors drawn as crosses -> {}",
        ed.world_connectors(i)?.len(),
        file.display()
    );
    Ok(())
}

/// Figure 4: connection by abutment — measured: connectors coincide
/// after ABUT; the overlap option shares a rail.
fn fig4(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 4: connection by abutment ==");
    let mut lib = Library::new();
    let nand = lib.add_sticks_cell(riot::cells::nand2())?;
    let mut ed = Editor::open(&mut lib, "ABUT")?;
    let a = ed.create_instance(nand)?;
    let b = ed.create_instance(nand)?;
    ed.translate_instance(b, Point::new(60 * LAMBDA, 9 * LAMBDA))?;
    let before = ed.instance_bbox(b)?;
    ed.connect(b, "PWRL", a, "PWRR")?;
    ed.abut(Default::default())?;
    let after = ed.instance_bbox(b)?;
    println!(
        "  from instance moved {} -> {}; rails touch: {}",
        before.lower_left(),
        after.lower_left(),
        ed.world_connector(b, "PWRL")?.location == ed.world_connector(a, "PWRR")?.location
    );
    let list = editor_ops(&ed, RenderOptions::default())?;
    let file = dir.join("fig4_abut.svg");
    std::fs::write(&file, to_svg(&list))?;
    println!("  -> {}", file.display());
    Ok(())
}

/// Figure 5: connection by routing — the channel-count/height series.
fn fig5(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 5: connection by routing ==");
    println!(
        "  {:>5} {:>6} {:>7} {:>9}",
        "nets", "shift", "tracks", "height/λ"
    );
    for (n, shift) in [(4usize, 0i64), (4, 30), (16, 30), (16, 150), (64, 300)] {
        let p = riot_bench::route_problem(n, shift, 5);
        let r = river_route(&p)?;
        println!("  {n:>5} {shift:>6} {:>7} {:>9}", r.tracks(), r.height());
    }
    println!("  channel overflow (64 nets, shift 300):");
    println!("  {:>9} {:>9} {:>9}", "capacity", "channels", "height/λ");
    for cap in [2usize, 4, 8, 16] {
        let p = riot_bench::route_problem_with_capacity(64, 300, cap, 7);
        let r = river_route(&p)?;
        println!("  {cap:>9} {:>9} {:>9}", r.channels(), r.height());
    }
    // Render one route cell.
    let p = riot_bench::route_problem(8, 40, 5);
    let route = river_route(&p)?;
    let cell = route.to_sticks_cell("fig5route");
    let mut lib = Library::new();
    let id = lib.add_sticks_cell(cell)?;
    let list = leaf_geometry_ops(&lib, id);
    let file = dir.join("fig5_route.svg");
    std::fs::write(&file, to_svg(&list))?;
    println!("  -> {}", file.display());
    Ok(())
}

/// Figure 6: connection by stretching — the NAND re-solved to tap
/// pitch.
fn fig6(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 6: connection by stretching ==");
    let nand = riot::cells::nand2();
    let spec = riot::rest::StretchSpec::new(riot::rest::Axis::X)
        .target("A", 5)
        .target("B", 25);
    let stretched = riot::rest::stretch(&nand, &spec)?;
    println!(
        "  nand2 {}λ wide (pins 6λ apart) -> {}λ wide (pins 20λ apart)",
        nand.bbox().width(),
        stretched.bbox().width()
    );
    let mut lib = Library::new();
    let id = lib.add_sticks_cell(stretched)?;
    let list = leaf_geometry_ops(&lib, id);
    let file = dir.join("fig6_stretched_nand.svg");
    std::fs::write(&file, to_svg(&list))?;
    println!("  -> {}", file.display());
    Ok(())
}

/// Figure 7: the rough floorplan — reported as the row structure the
/// assembly follows.
fn fig7(_dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 7: rough floorplan ==");
    println!("  row 0: shiftcell x4 (abutting array)");
    println!("  row 1: nand2 x2 (AND of taps)");
    println!("  row 2: or2 x1 (the filter output)");
    println!("  pads: padin (serial in, left), padout (serial out, right)");
    Ok(())
}

/// Figure 8: the leaf-cell gallery.
fn fig8(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 8: leaf cells ==");
    let mut lib = Library::new();
    lib.load_cif(&riot::cells::pads_cif())?;
    lib.add_sticks_cell(riot::cells::shift_register())?;
    lib.add_sticks_cell(riot::cells::nand2())?;
    lib.add_sticks_cell(riot::cells::or2())?;
    for (id, cell) in lib
        .iter()
        .map(|(id, c)| (id, c.clone()))
        .collect::<Vec<_>>()
    {
        let list = leaf_geometry_ops(&lib, id);
        let file = dir.join(format!("fig8_{}.svg", cell.name));
        std::fs::write(&file, to_svg(&list))?;
        println!(
            "  {:<10} {:>4}λ x {:>4}λ, {} connectors -> {}",
            cell.name,
            cell.bbox.width() / LAMBDA,
            cell.bbox.height() / LAMBDA,
            cell.connectors.len(),
            file.display()
        );
    }
    Ok(())
}

/// Figure 9: the headline comparison — routed vs stretched logic.
fn fig9(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 9: routed vs stretched filter logic ==");
    println!(
        "  {:>4} {:<10} {:>8} {:>9} {:>12} {:>9} {:>9}",
        "bits", "style", "width/λ", "height/λ", "area/λ²", "routes", "routing%"
    );
    for bits in [4usize, 8, 16] {
        for style in [LogicStyle::Routed, LogicStyle::Stretched] {
            let logic = build_logic(bits, style)?;
            let r = &logic.report;
            let l2 = (LAMBDA as i128) * (LAMBDA as i128);
            println!(
                "  {bits:>4} {:<10} {:>8} {:>9} {:>12} {:>9} {:>8.1}%",
                style.name(),
                r.bbox.width() / LAMBDA,
                r.bbox.height() / LAMBDA,
                r.total_area / l2,
                r.route_instances,
                100.0 * r.routing_fraction()
            );
            if bits == 4 {
                let mut lib = logic.lib;
                let ed = Editor::open(&mut lib, &logic.cell)?;
                let list = editor_ops(&ed, RenderOptions::default())?;
                let file = dir.join(format!("fig9_{}.svg", style.name()));
                std::fs::write(&file, to_svg(&list))?;
            }
        }
    }
    println!("  -> fig9_routed.svg, fig9_stretched.svg");
    Ok(())
}

/// Figure 10: the completed chip geometry.
fn fig10(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    println!("== figure 10: completed chip ==");
    for style in [LogicStyle::Routed, LogicStyle::Stretched] {
        let chip = build_chip(4, style)?;
        let (w, h) = chip.report.size_microns();
        let cif = riot::core::export::to_cif(&chip.lib, &chip.cell)?;
        let flat = riot::cif::flatten(&cif)?;
        println!(
            "  {:<10} {:>5.0} x {:>4.0} µm, {} instances, {} mask shapes",
            style.name(),
            w,
            h,
            chip.report.instances,
            flat.len()
        );
        if style == LogicStyle::Stretched {
            let file = dir.join("fig10_chip.svg");
            std::fs::write(&file, to_svg(&flat_cif_ops(&flat)))?;
            let cif_file = dir.join("fig10_chip.cif");
            std::fs::write(&cif_file, riot::cif::to_text(&cif))?;
            println!("  -> {} and {}", file.display(), cif_file.display());
        }
    }
    Ok(())
}
