//! The damage-region benchmark: one-instance edits on a huge flat chip,
//! incremental recompute (flatten cache + DRC patch + dirty-band
//! repaint) vs full recompute, emitting `BENCH_incremental.json`.
//!
//! ```text
//! cargo run --release -p riot-bench --bin incremental -- \
//!     [--leaf-shapes L] [--grid G] [--iters K] [--min-speedup X] [--out PATH]
//! ```
//!
//! The workload is [`riot_bench::grid_chip`]: a DRC-clean leaf of `L`
//! metal boxes placed on a `G`×`G` lattice (`L*G*G` flat shapes; the
//! defaults give a one-million-shape chip). Each edit translates one
//! top-level instance by 4λ — the single-instance move the damage
//! engine is built for. Before a single number is timed, both pipelines
//! run once on the same edit and every artifact is asserted equal:
//! flattened shape lists, sorted violation sets, patched display lists,
//! and the framebuffer pixels. The speedup claim is only ever made
//! about results that were proven identical.

use riot::cif::{FlatShape, FlattenCache};
use riot::drc::{check_incremental, DrcState, RuleSet, Violation};
use riot::geom::{Point, Rect, Transform};
use riot::graphics::{render_ops_banded, DrawOp, Framebuffer, RenderCache, Viewport};
use riot::ui::render::flat_cif_ops;
use std::time::Instant;

const SCREEN_W: usize = 1024;
const SCREEN_H: usize = 768;

struct Args {
    leaf_shapes: usize,
    grid: usize,
    iters: usize,
    min_speedup: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        leaf_shapes: 100,
        grid: 100,
        iters: 5,
        min_speedup: 0.0,
        out: "BENCH_incremental.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--leaf-shapes" => {
                args.leaf_shapes = value("--leaf-shapes").parse().expect("--leaf-shapes")
            }
            "--grid" => args.grid = value("--grid").parse().expect("--grid"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup").parse().expect("--min-speedup");
            }
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn violation_keys(mut vs: Vec<Violation>) -> Vec<String> {
    vs.sort_by_key(|v| format!("{v:?}"));
    vs.into_iter().map(|v| format!("{v:?}")).collect()
}

/// Moves top call `k` to lattice position plus `dx`, returning the new
/// transform that was installed.
fn move_call(file: &mut riot::cif::CifFile, k: usize, base: Point, dx: i64) {
    file.top_calls_mut()[k].transform = Transform::translate(Point::new(base.x + dx, base.y));
}

/// Per-stage nanosecond record for one pipeline pass.
#[derive(Clone, Copy, Default)]
struct StageNs {
    flatten: u64,
    drc: u64,
    render: u64,
}

impl StageNs {
    fn total(&self) -> u64 {
        self.flatten + self.drc + self.render
    }

    fn min(self, other: StageNs) -> StageNs {
        StageNs {
            flatten: self.flatten.min(other.flatten),
            drc: self.drc.min(other.drc),
            render: self.render.min(other.render),
        }
    }
}

/// One full-recompute pass: flatten from scratch, check the whole chip,
/// rebuild the display list, render every band.
fn full_pass(
    file: &riot::cif::CifFile,
    rules: &RuleSet,
    vp: &Viewport,
) -> (
    StageNs,
    Vec<FlatShape>,
    Vec<Violation>,
    Vec<DrawOp>,
    Framebuffer,
) {
    let mut ns = StageNs::default();
    let t = Instant::now();
    let (shapes, _) = riot::cif::flatten_counted(file).expect("full flatten");
    ns.flatten = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let violations = riot::drc::check(&shapes, rules);
    ns.drc = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let ops = flat_cif_ops(&shapes).ops().to_vec();
    let mut fb = Framebuffer::new(SCREEN_W, SCREEN_H);
    render_ops_banded(&ops, vp, &mut fb);
    ns.render = t.elapsed().as_nanos() as u64;
    (ns, shapes, violations, ops, fb)
}

/// One incremental pass over an already-applied edit: sync the flatten
/// cache, patch the retained DRC state from the damage rects, patch the
/// retained display list (segment `k` of the uniform grid), and repaint
/// only the damaged pixels of the retained framebuffer through the
/// retained [`RenderCache`].
#[allow(clippy::too_many_arguments)]
fn incremental_pass(
    file: &riot::cif::CifFile,
    k: usize,
    leaf_shapes: usize,
    rules: &RuleSet,
    vp: &Viewport,
    cache: &mut FlattenCache,
    state: &mut DrcState,
    ops: &mut [DrawOp],
    rc: &mut RenderCache,
    fb: &mut Framebuffer,
) -> (StageNs, Vec<Rect>, usize) {
    let _ = rules;
    let mut ns = StageNs::default();
    let t = Instant::now();
    let delta = cache.update(file).expect("incremental flatten");
    ns.flatten = t.elapsed().as_nanos() as u64;
    assert!(!delta.full, "a single-instance move must not rebuild");
    let t = Instant::now();
    let patched = check_incremental(state, &delta.dirty, cache.shapes());
    ns.drc = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    // The grid is uniform — every top call expands to exactly
    // `leaf_shapes` ops at a known offset — so the retained display
    // list is patched in place (verified against a from-scratch build
    // before any timing below).
    let seg = &cache.shapes()[k * leaf_shapes..(k + 1) * leaf_shapes];
    let seg_ops = flat_cif_ops(seg);
    ops[k * leaf_shapes..(k + 1) * leaf_shapes].clone_from_slice(seg_ops.ops());
    let changed: Vec<usize> = (k * leaf_shapes..(k + 1) * leaf_shapes).collect();
    rc.sync(ops, vp, &changed);
    rc.render(ops, fb, &delta.dirty);
    ns.render = t.elapsed().as_nanos() as u64;
    (ns, delta.dirty, patched)
}

fn main() {
    let args = parse_args();
    let rules = RuleSet::nmos();
    let text = riot_bench::grid_chip(args.leaf_shapes, args.grid);
    let mut file = riot::cif::parse(&text).expect("grid chip parses");
    let calls = file.top_calls().len();
    let bases: Vec<Point> = file
        .top_calls()
        .iter()
        .map(|c| c.transform.apply(Point::new(0, 0)))
        .collect();

    // Retained state: flatten cache, DRC state, display list,
    // framebuffer. Built once; every edit patches them.
    let mut cache = FlattenCache::new();
    let first = cache.update(&file).expect("initial flatten");
    assert!(first.full, "first sync is the full build");
    let n = cache.shapes().len();
    let chip = cache
        .shapes()
        .iter()
        .map(|s| s.geometry.bounding_box())
        .reduce(|a, b| a.union(b))
        .expect("non-empty chip");
    let vp = Viewport::fit(chip, SCREEN_W, SCREEN_H);

    let t = Instant::now();
    let mut state = DrcState::build(cache.shapes(), &rules);
    let build_ns = t.elapsed().as_nanos() as u64;
    let mut ops = flat_cif_ops(cache.shapes()).ops().to_vec();
    let mut fb = Framebuffer::new(SCREEN_W, SCREEN_H);
    render_ops_banded(&ops, &vp, &mut fb);
    let mut rc = RenderCache::build(&ops, &vp);

    // -------- verify phase: one edit, both pipelines, everything equal
    let k0 = calls / 2;
    move_call(&mut file, k0, bases[k0], 4 * riot::geom::LAMBDA);
    let (_, dirty, _) = incremental_pass(
        &file,
        k0,
        args.leaf_shapes,
        &rules,
        &vp,
        &mut cache,
        &mut state,
        &mut ops,
        &mut rc,
        &mut fb,
    );
    let (_, shapes, violations, full_ops, full_fb) = full_pass(&file, &rules, &vp);
    assert_eq!(cache.shapes(), shapes.as_slice(), "flatten diverged");
    assert_eq!(
        violation_keys(state.violations()),
        violation_keys(violations),
        "DRC diverged"
    );
    assert_eq!(ops, full_ops, "patched display list diverged");
    assert_eq!(fb, full_fb, "dirty-band repaint diverged");
    assert_eq!(state.full_rebuilds(), 0, "damage under-reported");
    assert!(!dirty.is_empty(), "a move must report damage");
    eprintln!(
        "verified: {n} shapes, {} dirty rects, pipelines identical",
        dirty.len()
    );

    // -------- timing: full recompute (on the already-edited file)
    let mut full_ns = StageNs {
        flatten: u64::MAX,
        drc: u64::MAX,
        render: u64::MAX,
    };
    let mut full_total = u64::MAX;
    for _ in 0..args.iters.max(1) {
        let (ns, ..) = full_pass(&file, &rules, &vp);
        full_ns = full_ns.min(ns);
        full_total = full_total.min(ns.total());
    }

    // -------- timing: incremental, one fresh single-instance move each
    let mut incr_ns = StageNs {
        flatten: u64::MAX,
        drc: u64::MAX,
        render: u64::MAX,
    };
    let mut incr_total = u64::MAX;
    let mut dirty_rects = 0usize;
    let mut patched_pairs = 0usize;
    for i in 0..args.iters.max(1) {
        let k = (k0 + 1 + i * 37) % calls;
        let dx = if i % 2 == 0 { 4 } else { -4 } * riot::geom::LAMBDA;
        move_call(&mut file, k, bases[k], dx);
        let (ns, dirty, patched) = incremental_pass(
            &file,
            k,
            args.leaf_shapes,
            &rules,
            &vp,
            &mut cache,
            &mut state,
            &mut ops,
            &mut rc,
            &mut fb,
        );
        incr_ns = incr_ns.min(ns);
        incr_total = incr_total.min(ns.total());
        dirty_rects = dirty.len();
        patched_pairs = patched;
    }
    assert_eq!(state.full_rebuilds(), 0, "timed edits stayed incremental");

    // -------- final cross-check: the retained state is still exact
    let (_, shapes, violations, full_ops, full_fb) = full_pass(&file, &rules, &vp);
    assert_eq!(cache.shapes(), shapes.as_slice(), "flatten drifted");
    assert_eq!(
        violation_keys(state.violations()),
        violation_keys(violations),
        "DRC drifted"
    );
    assert_eq!(ops, full_ops, "display list drifted");
    assert_eq!(fb, full_fb, "framebuffer drifted");

    let speedup = full_total as f64 / incr_total as f64;
    eprintln!(
        "incremental: {n} shapes, full {:.2} ms (flatten {:.2} drc {:.2} render {:.2}), \
         incremental {:.3} ms (flatten {:.3} drc {:.3} render {:.3}), speedup {speedup:.1}x",
        full_total as f64 / 1e6,
        full_ns.flatten as f64 / 1e6,
        full_ns.drc as f64 / 1e6,
        full_ns.render as f64 / 1e6,
        incr_total as f64 / 1e6,
        incr_ns.flatten as f64 / 1e6,
        incr_ns.drc as f64 / 1e6,
        incr_ns.render as f64 / 1e6,
    );
    if args.min_speedup > 0.0 {
        assert!(
            speedup >= args.min_speedup,
            "speedup {speedup:.2}x below required {:.2}x",
            args.min_speedup
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"riot-bench-incremental/1\",\n  \"leaf_shapes\": {},\n  \"grid\": {},\n  \"flat_shapes\": {},\n  \"iters\": {},\n  \"state_build_ns\": {},\n  \"dirty_rects\": {},\n  \"patched_pairs\": {},\n  \"full\": {{ \"flatten_ns\": {}, \"drc_ns\": {}, \"render_ns\": {}, \"total_ns\": {} }},\n  \"incremental\": {{ \"flatten_ns\": {}, \"drc_ns\": {}, \"render_ns\": {}, \"total_ns\": {}, \"full_rebuilds\": {} }},\n  \"speedup\": {:.2}\n}}\n",
        args.leaf_shapes,
        args.grid,
        n,
        args.iters,
        build_ns,
        dirty_rects,
        patched_pairs,
        full_ns.flatten,
        full_ns.drc,
        full_ns.render,
        full_total,
        incr_ns.flatten,
        incr_ns.drc,
        incr_ns.render,
        incr_total,
        state.full_rebuilds(),
        speedup
    );
    std::fs::write(&args.out, &json).expect("write benchmark output");
    eprintln!("wrote {}", args.out);
}
