//! Figures 9 and 10: the logical-filter assembly, routed vs stretched,
//! across filter sizes — the paper's headline comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::filter::{build_chip, build_logic, LogicStyle};

fn bench_logic_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembly/logic");
    g.sample_size(20);
    for bits in [4usize, 8, 16] {
        for style in [LogicStyle::Routed, LogicStyle::Stretched] {
            g.bench_with_input(
                BenchmarkId::new(style.name(), bits),
                &(bits, style),
                |b, &(bits, style)| b.iter(|| build_logic(bits, style).expect("assembles")),
            );
        }
    }
    g.finish();
}

fn bench_full_chip(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembly/chip");
    g.sample_size(10);
    for style in [LogicStyle::Routed, LogicStyle::Stretched] {
        g.bench_with_input(
            BenchmarkId::from_parameter(style.name()),
            &style,
            |b, &style| b.iter(|| build_chip(4, style).expect("assembles")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_logic_styles, bench_full_chip);
criterion_main!(benches);
