//! The transactional command engine: raw command-apply throughput,
//! journal replay through the engine, and the event-invalidated caches
//! of derived geometry (world bboxes and world connector lists) against
//! recompute-per-call baselines on a 1k-instance composition.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use riot::core::{Command, Editor, InstanceId, Journal, Library};
use riot::geom::{Point, LAMBDA};

const N: usize = 1_000;

fn library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    lib
}

/// Builds an editor session holding `N` placed instances.
fn build_session(lib: &mut Library) -> (Editor<'_>, Vec<InstanceId>) {
    let sr = lib.find("shiftcell").expect("shift register cell");
    let mut ed = Editor::open(lib, "TOP").unwrap();
    let mut ids = Vec::with_capacity(N);
    for k in 0..N {
        let id = ed.create_instance(sr).unwrap();
        let (col, row) = ((k % 40) as i64, (k / 40) as i64);
        ed.translate_instance(id, Point::new(col * 60 * LAMBDA, row * 40 * LAMBDA))
            .unwrap();
        ids.push(id);
    }
    (ed, ids)
}

fn bench_command_apply(c: &mut Criterion) {
    let mut lib = library();
    let (mut ed, ids) = build_session(&mut lib);
    let mut g = c.benchmark_group("commands/apply");
    g.throughput(Throughput::Elements(ids.len() as u64));
    g.bench_function("translate_1k", |b| {
        b.iter(|| {
            for id in &ids {
                ed.translate_instance(*id, Point::new(LAMBDA, 0)).unwrap();
            }
        })
    });
    g.bench_function("execute_translate_1k", |b| {
        b.iter(|| {
            for id in &ids {
                let name = ed.instance(*id).unwrap().name.clone();
                ed.execute(Command::Translate {
                    instance: name,
                    d: Point::new(0, LAMBDA),
                })
                .unwrap();
            }
        })
    });
    g.bench_function("undo_redo_1k", |b| {
        b.iter(|| {
            for _ in 0..ids.len() {
                ed.undo().unwrap();
            }
            for _ in 0..ids.len() {
                ed.redo().unwrap();
            }
        })
    });
    g.finish();
}

fn bench_journal_replay(c: &mut Criterion) {
    // A journal of 1k creates + 1k moves, replayed through the one
    // engine dispatch.
    let journal = {
        let mut lib = library();
        let (ed, _) = build_session(&mut lib);
        ed.journal().clone()
    };
    let text = journal.to_text();
    let mut g = c.benchmark_group("commands/replay");
    g.throughput(Throughput::Elements(journal.commands().len() as u64));
    g.bench_function("journal_2k_commands", |b| {
        b.iter_batched(
            library,
            |mut lib| riot::core::replay(&journal, &mut lib).expect("replays"),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("parse_2k_commands", |b| {
        b.iter(|| Journal::parse(std::hint::black_box(&text)).expect("parses"))
    });
    g.finish();
}

fn bench_derived_caches(c: &mut Criterion) {
    let mut lib = library();
    let (ed, ids) = build_session(&mut lib);
    let mut g = c.benchmark_group("commands/derived");
    g.throughput(Throughput::Elements(ids.len() as u64));

    // World bounding boxes: cached accessor vs direct recompute.
    g.bench_function("bbox_cached_1k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for id in &ids {
                acc += ed.instance_bbox(*id).unwrap().width();
            }
            acc
        })
    });
    g.bench_function("bbox_recompute_1k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for id in &ids {
                let inst = ed.instance(*id).unwrap();
                acc += inst.world_bbox(ed.instance_cell(*id).unwrap()).width();
            }
            acc
        })
    });

    // World connector lists: cached Arc vs rebuild per call.
    g.bench_function("connectors_cached_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for id in &ids {
                acc += ed.world_connectors_arc(*id).unwrap().len();
            }
            acc
        })
    });
    g.bench_function("connectors_recompute_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for id in &ids {
                let inst = ed.instance(*id).unwrap();
                acc += inst.world_connectors(ed.instance_cell(*id).unwrap()).len();
            }
            acc
        })
    });

    // Composition extent: cached vs a fresh union over all instances.
    g.bench_function("extent_cached", |b| b.iter(|| ed.current_extent().unwrap()));
    g.finish();
}

/// Asserts the acceptance criterion outside criterion's statistics:
/// cached `world_connectors` must beat recompute-per-call by >=5x.
fn check_cache_speedup() {
    let mut lib = library();
    let (ed, ids) = build_session(&mut lib);
    // Warm the cache.
    for id in &ids {
        let _ = ed.world_connectors_arc(*id).unwrap();
    }
    let rounds = 20;
    let t0 = std::time::Instant::now();
    let mut acc = 0usize;
    for _ in 0..rounds {
        for id in &ids {
            acc += ed.world_connectors_arc(*id).unwrap().len();
        }
    }
    let cached = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..rounds {
        for id in &ids {
            acc += ed
                .instance(*id)
                .unwrap()
                .world_connectors(ed.instance_cell(*id).unwrap())
                .len();
        }
    }
    let recompute = t1.elapsed();
    std::hint::black_box(acc);
    let speedup = recompute.as_nanos() as f64 / cached.as_nanos().max(1) as f64;
    println!(
        "cache speedup: world_connectors cached {cached:?} vs recompute {recompute:?} ({speedup:.1}x)"
    );
    assert!(
        speedup >= 5.0,
        "cached world_connectors only {speedup:.1}x faster; acceptance needs >=5x"
    );
}

fn bench_all(c: &mut Criterion) {
    check_cache_speedup();
    bench_command_apply(c);
    bench_journal_replay(c);
    bench_derived_caches(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
