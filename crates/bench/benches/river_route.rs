//! Figure 5 (connection by routing): river-router performance across
//! net counts, jog densities and channel capacities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::route::river_route;
use riot_bench::{route_problem, route_problem_with_capacity};

fn bench_net_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("river_route/nets");
    for n in [8usize, 32, 128, 512] {
        let p = route_problem(n, 40, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| river_route(std::hint::black_box(p)).expect("routable"))
        });
    }
    g.finish();
}

fn bench_jog_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("river_route/shift");
    for shift in [0i64, 20, 100, 400] {
        let p = route_problem(64, shift, 6);
        g.bench_with_input(BenchmarkId::from_parameter(shift), &p, |b, p| {
            b.iter(|| river_route(std::hint::black_box(p)).expect("routable"))
        });
    }
    g.finish();
}

fn bench_channel_overflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("river_route/capacity");
    for cap in [2usize, 4, 8, 16] {
        let p = route_problem_with_capacity(64, 300, cap, 7);
        g.bench_with_input(BenchmarkId::from_parameter(cap), &p, |b, p| {
            b.iter(|| river_route(std::hint::black_box(p)).expect("routable"))
        });
    }
    g.finish();
}

fn bench_route_cell_generation(c: &mut Criterion) {
    let p = route_problem(64, 40, 8);
    let route = river_route(&p).expect("routable");
    c.bench_function("river_route/to_sticks_cell", |b| {
        b.iter(|| std::hint::black_box(&route).to_sticks_cell("rc"))
    });
}

criterion_group!(
    benches,
    bench_net_count,
    bench_jog_density,
    bench_channel_overflow,
    bench_route_cell_generation
);
criterion_main!(benches);
