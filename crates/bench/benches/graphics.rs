//! Figures 1–3: the graphics pipeline on both terminal models and the
//! pen plotter.

use criterion::{criterion_group, criterion_main, Criterion};
use riot::core::Editor;
use riot::graphics::device::{charles, gigi};
use riot::graphics::plotter;

/// The figure-9a display list: the routed filter on screen.
fn filter_list() -> riot::graphics::DisplayList {
    let logic = riot::filter::build_logic(4, riot::filter::LogicStyle::Routed).expect("logic");
    let mut lib = logic.lib;
    let ed = Editor::open(&mut lib, &logic.cell).expect("open");
    riot::ui::render::editor_ops(&ed, Default::default()).expect("ops")
}

fn bench_devices(c: &mut Criterion) {
    let list = filter_list();
    let mut g = c.benchmark_group("graphics/device_render");
    for device in [charles(), gigi()] {
        g.bench_function(device.name(), |b| {
            b.iter(|| device.render(std::hint::black_box(&list)))
        });
    }
    g.finish();
}

fn bench_plotter(c: &mut Criterion) {
    let list = filter_list();
    c.bench_function("graphics/hp7221a_plot", |b| {
        b.iter(|| plotter::plot(std::hint::black_box(&list)))
    });
}

fn bench_svg(c: &mut Criterion) {
    let list = filter_list();
    c.bench_function("graphics/svg", |b| {
        b.iter(|| riot::graphics::svg::to_svg(std::hint::black_box(&list)))
    });
}

fn bench_mask_plot(c: &mut Criterion) {
    // Figure 10: full flattened chip geometry on the Charles terminal.
    let chip = riot::filter::build_chip(4, riot::filter::LogicStyle::Stretched).expect("chip");
    let cif = riot::core::export::to_cif(&chip.lib, &chip.cell).expect("export");
    let flat = riot::cif::flatten(&cif).expect("flatten");
    let list = riot::ui::render::flat_cif_ops(&flat);
    let dev = charles();
    c.bench_function("graphics/chip_mask_render", |b| {
        b.iter(|| dev.render(std::hint::black_box(&list)))
    });
}

criterion_group!(
    benches,
    bench_devices,
    bench_plotter,
    bench_svg,
    bench_mask_plot
);
criterion_main!(benches);
