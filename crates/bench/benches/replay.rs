//! The REPLAY mechanism: journal serialization and session re-runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::core::{replay, AbutOptions, Editor, Journal, Library};
use riot::geom::{Point, LAMBDA};

/// Records a session that chains `n` shift-register stages one by one
/// (create + connect + abut per stage).
fn chain_journal(n: usize) -> Journal {
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let mut prev = ed.create_instance(sr).unwrap();
    for k in 1..n {
        let next = ed.create_instance(sr).unwrap();
        ed.translate_instance(next, Point::new((k as i64) * 60 * LAMBDA, 5 * LAMBDA))
            .unwrap();
        ed.connect(next, "SI", prev, "SO").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        prev = next;
    }
    ed.finish().unwrap();
    ed.journal().clone()
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay/stages");
    for n in [4usize, 16, 64] {
        let journal = chain_journal(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &journal, |b, journal| {
            b.iter_batched(
                || {
                    let mut lib = Library::new();
                    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
                    lib
                },
                |mut lib| replay(journal, &mut lib).expect("replays"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_journal_text(c: &mut Criterion) {
    let journal = chain_journal(64);
    c.bench_function("replay/journal_to_text", |b| {
        b.iter(|| std::hint::black_box(&journal).to_text())
    });
    let text = journal.to_text();
    c.bench_function("replay/journal_parse", |b| {
        b.iter(|| Journal::parse(std::hint::black_box(&text)).expect("parses"))
    });
}

criterion_group!(benches, bench_replay, bench_journal_text);
criterion_main!(benches);
