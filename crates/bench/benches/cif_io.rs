//! CIF interface throughput: parse, write, flatten — the format every
//! Riot session reads leaf cells through and writes masks to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use riot_bench::cif_workload;

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("cif/parse");
    for (cells, shapes) in [(10usize, 50usize), (50, 200), (200, 200)] {
        let text = cif_workload(cells, shapes, 21);
        g.throughput(Throughput::Bytes(text.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{cells}x{shapes}")),
            &text,
            |b, text| b.iter(|| riot::cif::parse(std::hint::black_box(text)).expect("parses")),
        );
    }
    g.finish();
}

fn bench_write(c: &mut Criterion) {
    let file = riot::cif::parse(&cif_workload(50, 200, 22)).expect("parses");
    c.bench_function("cif/write", |b| {
        b.iter(|| riot::cif::to_text(std::hint::black_box(&file)))
    });
}

fn bench_flatten(c: &mut Criterion) {
    let file = riot::cif::parse(&cif_workload(50, 200, 23)).expect("parses");
    c.bench_function("cif/flatten", |b| {
        b.iter(|| riot::cif::flatten(std::hint::black_box(&file)).expect("flattens"))
    });
}

fn bench_chip_export(c: &mut Criterion) {
    // The real path: export the assembled filter chip to CIF text.
    let chip = riot::filter::build_chip(4, riot::filter::LogicStyle::Stretched).expect("chip");
    c.bench_function("cif/export_chip", |b| {
        b.iter(|| {
            let f = riot::core::export::to_cif(&chip.lib, &chip.cell).expect("export");
            riot::cif::to_text(&f)
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_write,
    bench_flatten,
    bench_chip_export
);
criterion_main!(benches);
