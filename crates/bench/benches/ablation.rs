//! Ablations over the design choices DESIGN.md calls out:
//!
//! * stretch solve mode — gap-preserving (Riot's conservative stretch)
//!   vs design-rule (full REST re-compaction);
//! * connection specification — name-matched bus connection vs
//!   individual connector picks;
//! * the one-to-many restriction — assembling a row via a finished
//!   subcell (the paper's workaround) vs pairwise connections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::core::{AbutOptions, Editor, Library};
use riot::geom::{Point, LAMBDA};
use riot::rest::{stretch_with_mode, SolveMode};
use riot_bench::stretch_workload;

fn bench_solve_mode_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/solve_mode");
    for n in [16usize, 64] {
        let (cell, spec) = stretch_workload(n, 31);
        for (label, mode) in [
            ("preserve_gaps", SolveMode::PreserveGaps),
            ("design_rules", SolveMode::DesignRules),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, n),
                &(cell.clone(), spec.clone(), mode),
                |b, (cell, spec, mode)| {
                    b.iter(|| stretch_with_mode(cell, spec, *mode).expect("feasible"))
                },
            );
        }
    }
    g.finish();
}

fn row_library(n: usize) -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let _ = n;
    lib
}

/// Chain `n` stages with individual connect + abut per stage.
fn chain_individual(n: usize) {
    let mut lib = row_library(n);
    let sr = lib.find("shiftcell").unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let mut prev = ed.create_instance(sr).unwrap();
    for k in 1..n {
        let next = ed.create_instance(sr).unwrap();
        ed.translate_instance(next, Point::new(k as i64 * 60 * LAMBDA, 0))
            .unwrap();
        ed.connect(next, "SI", prev, "SO").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        prev = next;
    }
}

/// Chain `n` stages with a bus connection per stage.
fn chain_bus(n: usize) {
    let mut lib = row_library(n);
    let sr = lib.find("shiftcell").unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let mut prev = ed.create_instance(sr).unwrap();
    for k in 1..n {
        let next = ed.create_instance(sr).unwrap();
        ed.translate_instance(next, Point::new(k as i64 * 60 * LAMBDA, 0))
            .unwrap();
        ed.connect_bus(next, prev).unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        prev = next;
    }
}

/// Chain via array replication (one instance, the subcell workaround).
fn chain_array(n: usize) {
    let mut lib = row_library(n);
    let sr = lib.find("shiftcell").unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(sr).unwrap();
    ed.replicate_instance(i, n as u32, 1).unwrap();
    ed.finish().unwrap();
}

fn bench_connection_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/chain_style");
    g.sample_size(30);
    for n in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("individual", n), &n, |b, &n| {
            b.iter(|| chain_individual(n))
        });
        g.bench_with_input(BenchmarkId::new("bus", n), &n, |b, &n| {
            b.iter(|| chain_bus(n))
        });
        g.bench_with_input(BenchmarkId::new("array", n), &n, |b, &n| {
            b.iter(|| chain_array(n))
        });
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    // Extraction cost on the flattened filter tree (the verification
    // path added over the paper).
    let logic = riot::filter::build_logic(4, riot::filter::LogicStyle::Stretched).expect("logic");
    let flat = riot::extract::flatten_to_sticks(&logic.lib, &logic.cell).expect("flatten");
    c.bench_function("ablation/extract_flat_logic", |b| {
        b.iter(|| riot::extract::extract(std::hint::black_box(&flat)).expect("extracts"))
    });
}

criterion_group!(
    benches,
    bench_solve_mode_ablation,
    bench_connection_styles,
    bench_extraction
);
criterion_main!(benches);
