//! Figure 6 (connection by stretching): REST solver performance across
//! pin counts and solve modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::rest::{compact, stretch, stretch_with_mode, Axis, SolveMode};
use riot_bench::stretch_workload;

fn bench_stretch_pins(c: &mut Criterion) {
    let mut g = c.benchmark_group("stretch/pins");
    for n in [4usize, 16, 64, 256] {
        let (cell, spec) = stretch_workload(n, 11);
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(cell, spec),
            |b, (cell, spec)| {
                b.iter(|| {
                    stretch(std::hint::black_box(cell), std::hint::black_box(spec))
                        .expect("feasible")
                })
            },
        );
    }
    g.finish();
}

fn bench_solve_modes(c: &mut Criterion) {
    let (cell, spec) = stretch_workload(64, 12);
    let mut g = c.benchmark_group("stretch/mode");
    g.bench_function("preserve_gaps", |b| {
        b.iter(|| stretch_with_mode(&cell, &spec, SolveMode::PreserveGaps).expect("feasible"))
    });
    g.bench_function("design_rules", |b| {
        b.iter(|| stretch_with_mode(&cell, &spec, SolveMode::DesignRules).expect("feasible"))
    });
    g.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compact/pins");
    for n in [16usize, 128] {
        let (cell, _) = stretch_workload(n, 13);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cell, |b, cell| {
            b.iter(|| compact(std::hint::black_box(cell), Axis::Y).expect("compactable"))
        });
    }
    g.finish();
}

fn bench_gate_stretch(c: &mut Criterion) {
    // The actual figure-6 case: a NAND re-pinned to wider inputs.
    let nand = riot::cells::nand2();
    let spec = riot::rest::StretchSpec::new(Axis::X)
        .target("A", 5)
        .target("B", 25);
    c.bench_function("stretch/nand2_to_taps", |b| {
        b.iter(|| {
            stretch(std::hint::black_box(&nand), std::hint::black_box(&spec)).expect("feasible")
        })
    });
}

criterion_group!(
    benches,
    bench_stretch_pins,
    bench_solve_modes,
    bench_compaction,
    bench_gate_stretch
);
criterion_main!(benches);
