//! Figure 4 (connection by abutment): abut and bus-connection costs as
//! connector counts grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riot::core::{AbutOptions, Editor, Library};
use riot::geom::{Point, LAMBDA};

/// Two facing combs with n pins each, ready to connect.
fn comb_pair(n: usize) -> Library {
    let mut lib = Library::new();
    let right = riot::cells::parametric::comb("combR", riot::geom::Side::Right, n, 6);
    let left = riot::cells::parametric::comb("combL", riot::geom::Side::Left, n, 6);
    lib.add_sticks_cell(right).unwrap();
    lib.add_sticks_cell(left).unwrap();
    lib
}

fn bench_abut(c: &mut Criterion) {
    let mut g = c.benchmark_group("abut/pins");
    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || comb_pair(n),
                |mut lib| {
                    let r = lib.find("combR").unwrap();
                    let l = lib.find("combL").unwrap();
                    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
                    let a = ed.create_instance(r).unwrap();
                    let bi = ed.create_instance(l).unwrap();
                    ed.translate_instance(bi, Point::new(100 * LAMBDA, 0))
                        .unwrap();
                    for i in 0..n {
                        ed.connect(bi, &format!("P{i}"), a, &format!("P{i}"))
                            .unwrap();
                    }
                    ed.abut(AbutOptions::default()).unwrap();
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_connect_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("connect_bus/pins");
    for n in [8usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || comb_pair(n),
                |mut lib| {
                    let r = lib.find("combR").unwrap();
                    let l = lib.find("combL").unwrap();
                    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
                    let a = ed.create_instance(r).unwrap();
                    let bi = ed.create_instance(l).unwrap();
                    ed.translate_instance(bi, Point::new(100 * LAMBDA, 0))
                        .unwrap();
                    ed.connect_bus(bi, a).unwrap()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_world_connectors(c: &mut Criterion) {
    // Array connector enumeration (the screen redraw hot path).
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(sr).unwrap();
    ed.replicate_instance(i, 64, 1).unwrap();
    c.bench_function("world_connectors/64x1_array", |b| {
        b.iter(|| ed.world_connectors(std::hint::black_box(i)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_abut,
    bench_connect_bus,
    bench_world_connectors
);
criterion_main!(benches);
