//! The I/O pad library, as CIF text.
//!
//! "The input and output pads were taken from a library of CIF cells.
//! … the pads cannot be stretched by Riot and all connections to them
//! will have to be made by routing." These pads are plain mask
//! geometry: a large metal bonding area with an overglass opening, a
//! diffusion guard ring on the cell perimeter, and a signal connector
//! on the inner edge (plus power/ground rail stubs for the pad ring).

use riot_geom::LAMBDA;
use std::fmt::Write as _;

/// CIF text defining two pad cells, `padin` (signal connector `OUT` on
/// its right edge) and `padout` (signal connector `IN` on its left
/// edge).
///
/// Dimensions are the classic MPC-era 100λ pad pitch; the painted
/// geometry spans the full 100λ × 100λ cell so pads abut into a ring.
pub fn pads_cif() -> String {
    let mut out = String::new();
    let l = LAMBDA;
    // Symbol 1: input pad, signal leaves on the right (inner) edge.
    pad_body(&mut out, 1, "padin", false);
    let _ = writeln!(out, "94 OUT {} {} NM {};", 100 * l, 50 * l, 3 * l);
    let _ = writeln!(out, "94 PWR {} {} NM {};", 100 * l, 90 * l, 3 * l);
    let _ = writeln!(out, "94 GND {} {} NM {};", 100 * l, 10 * l, 3 * l);
    out.push_str("DF;\n");
    // Symbol 2: output pad, signal enters on the left (inner) edge.
    pad_body(&mut out, 2, "padout", true);
    let _ = writeln!(out, "94 IN 0 {} NM {};", 50 * l, 3 * l);
    let _ = writeln!(out, "94 PWR 0 {} NM {};", 90 * l, 3 * l);
    let _ = writeln!(out, "94 GND 0 {} NM {};", 10 * l, 3 * l);
    out.push_str("DF;\nE\n");
    out
}

fn pad_body(out: &mut String, symbol: u32, name: &str, mirror: bool) {
    let l = LAMBDA;
    // Wires are drawn with centerlines inset by half their width so the
    // painted extent lands exactly on the 0..100λ cell boundary.
    let m_half = 3 * l / 2;
    let (x0, x1) = (m_half, 100 * l - m_half);
    let bond_cx = if mirror { 60 * l } else { 40 * l };
    let _ = writeln!(out, "DS {symbol} 1 1;");
    let _ = writeln!(out, "9 {name};");
    let _ = writeln!(out, "L NM;");
    // 60λ bonding square, biased toward the outer edge.
    let _ = writeln!(out, "B {} {} {} {};", 60 * l, 60 * l, bond_cx, 50 * l);
    // Signal finger from the bond area to the inner edge.
    if mirror {
        let _ = writeln!(out, "W {} {} {} {} {};", 3 * l, x0, 50 * l, 40 * l, 50 * l);
    } else {
        let _ = writeln!(out, "W {} {} {} {} {};", 3 * l, 60 * l, 50 * l, x1, 50 * l);
    }
    // Power and ground rail stubs across the cell.
    let _ = writeln!(out, "W {} {} {} {} {};", 3 * l, x0, 90 * l, x1, 90 * l);
    let _ = writeln!(out, "W {} {} {} {} {};", 3 * l, x0, 10 * l, x1, 10 * l);
    // Overglass opening over the bond area.
    let _ = writeln!(out, "L NG;");
    let _ = writeln!(out, "B {} {} {} {};", 50 * l, 50 * l, bond_cx, 50 * l);
    // Diffusion guard ring around the whole cell perimeter.
    let _ = writeln!(out, "L ND;");
    let _ = writeln!(
        out,
        "W {} {} {} {} {} {} {} {} {} {} {};",
        2 * l,
        l,
        l,
        99 * l,
        l,
        99 * l,
        99 * l,
        l,
        99 * l,
        l,
        l
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::{Layer, Point};

    #[test]
    fn pads_parse_as_cif() {
        let file = riot_cif::parse(&pads_cif()).unwrap();
        assert_eq!(file.cells().len(), 2);
        assert!(file.cell_by_name("padin").is_some());
        assert!(file.cell_by_name("padout").is_some());
    }

    #[test]
    fn pad_connectors_on_inner_edges() {
        let file = riot_cif::parse(&pads_cif()).unwrap();
        let padin = file.cell_by_name("padin").unwrap();
        let out = padin.connector("OUT").unwrap();
        assert_eq!(out.layer, Layer::Metal);
        assert_eq!(out.location, Point::new(100 * LAMBDA, 50 * LAMBDA));
        let padout = file.cell_by_name("padout").unwrap();
        assert_eq!(padout.connector("IN").unwrap().location.x, 0);
    }

    #[test]
    fn pads_have_bond_glass() {
        let file = riot_cif::parse(&pads_cif()).unwrap();
        for cell in file.cells() {
            assert!(
                cell.shapes.iter().any(|s| s.layer == Layer::Glass),
                "pad without overglass opening"
            );
        }
    }

    #[test]
    fn pad_geometry_spans_full_pitch() {
        let file = riot_cif::parse(&pads_cif()).unwrap();
        for name in ["padin", "padout"] {
            let cell = file.cell_by_name(name).unwrap();
            let bb = cell.local_bounding_box().unwrap();
            assert_eq!(bb.width(), 100 * LAMBDA, "{name}");
            assert_eq!(bb.height(), 100 * LAMBDA, "{name}");
            assert_eq!(bb.x0, 0);
            assert_eq!(bb.y0, 0);
        }
    }
}
