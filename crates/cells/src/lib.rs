//! Leaf-cell generators for the RIOT reproduction.
//!
//! The paper's leaf cells came from elsewhere: "The input and output
//! pads were taken from a library of CIF cells. The shift register
//! cell, NAND and OR gates were laid out in REST, and are defined as
//! symbolic layout in Sticks." Those tools (the Caltech pad library,
//! Bristle Blocks, LAP) are gone, so this crate generates equivalent
//! cells (DESIGN.md §2):
//!
//! * [`pads_cif`] — an input and an output pad as CIF text with `94`
//!   connector extensions (fixed geometry — **not** stretchable, which
//!   is exactly why the paper routes to pads);
//! * [`shift_register`], [`nand2`], [`or2`] — the logical-filter leaf
//!   cells as Sticks symbolic layout (stretchable);
//! * [`pipe_corner`] — the "pre-defined pipe fittings" that aid complex
//!   power/ground/clock routes;
//! * [`parametric`] — parameterized gate generators for benchmark
//!   sweeps.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sr = riot_cells::shift_register();
//! sr.validate()?;
//! assert!(sr.pin("TAP").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;
pub mod pads;
pub mod parametric;
pub mod pipes;

pub use gates::{nand2, or2, shift_register};
pub use pads::pads_cif;
pub use pipes::pipe_corner;
