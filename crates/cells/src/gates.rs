//! The logical-filter leaf cells (paper figure 8), in Sticks form.
//!
//! All three cells share the gate-row discipline that makes the
//! paper's assembly work:
//!
//! * metal power at the **top rail** (y = height−2) and ground at the
//!   **bottom rail** (y = 2), exposed on both left and right edges so a
//!   row of gates abuts into continuous rails;
//! * logic inputs enter on **bottom** poly pins, outputs leave on
//!   **top** poly pins, so rows stack with routing or stretching in
//!   between.

use riot_geom::{Layer, Orientation, Path, Point, Rect, Side};
use riot_sticks::{Contact, ContactKind, Device, DeviceKind, Pin, SticksCell, SymWire};

fn pin(name: &str, side: Side, layer: Layer, x: i64, y: i64, width: i64) -> Pin {
    Pin {
        name: name.into(),
        side,
        layer,
        position: Point::new(x, y),
        width,
    }
}

fn wire(layer: Layer, width: i64, pts: &[(i64, i64)]) -> SymWire {
    SymWire {
        layer,
        width,
        path: Path::from_points(pts.iter().map(|&(x, y)| Point::new(x, y)))
            .expect("generator paths are Manhattan"),
    }
}

fn rails(cell: &mut SticksCell, width: i64, height: i64) {
    // Rails sit 3λ inside the cell so vertically stacked rows keep the
    // 3λ metal spacing rule between one row's power and the next's
    // ground.
    cell.push_pin(pin("PWRL", Side::Left, Layer::Metal, 0, height - 3, 3));
    cell.push_pin(pin("PWRR", Side::Right, Layer::Metal, width, height - 3, 3));
    cell.push_pin(pin("GNDL", Side::Left, Layer::Metal, 0, 3, 3));
    cell.push_pin(pin("GNDR", Side::Right, Layer::Metal, width, 3, 3));
    cell.push_wire(wire(
        Layer::Metal,
        3,
        &[(0, height - 3), (width, height - 3)],
    ));
    cell.push_wire(wire(Layer::Metal, 3, &[(0, 3), (width, 3)]));
}

/// The shift-register stage: serial data in on the left, out on the
/// right, and a `TAP` of the stored bit on the **top** edge feeding the
/// NAND row above. Abutting a row of these makes "the shift register
/// chain connections as well as power and ground connections".
pub fn shift_register() -> SticksCell {
    let (w, h) = (20, 24);
    let mut c = SticksCell::new("shiftcell", Rect::new(0, 0, w, h));
    rails(&mut c, w, h);
    // Serial chain in metal so the pad ring can route straight to it.
    c.push_pin(pin("SI", Side::Left, Layer::Metal, 0, 12, 3));
    c.push_pin(pin("SO", Side::Right, Layer::Metal, w, 12, 3));
    c.push_pin(pin("TAP", Side::Top, Layer::Poly, 10, h, 2));
    c.push_wire(wire(Layer::Metal, 3, &[(0, 12), (w, 12)]));
    c.push_device(Device {
        kind: DeviceKind::Enhancement,
        position: Point::new(3, 12),
        orient: Orientation::R90,
    });
    c.push_device(Device {
        kind: DeviceKind::Depletion,
        position: Point::new(3, 18),
        orient: Orientation::R90,
    });
    // Tap runs up from the stored node to the top edge (a metal-poly
    // contact joins it to the chain).
    c.push_contact(Contact {
        kind: ContactKind::MetalPoly,
        position: Point::new(10, 12),
    });
    c.push_wire(wire(Layer::Poly, 2, &[(10, 12), (10, h)]));
    // Pull-up to the power rail.
    c.push_wire(wire(Layer::Diffusion, 2, &[(3, 14), (3, 16)]));
    c.push_contact(Contact {
        kind: ContactKind::MetalDiffusion,
        position: Point::new(3, 20),
    });
    c
}

/// A two-input NAND with bottom inputs `A` (x=5) and `B` (x=9) and a
/// top output `OUT` (x=8). Series pull-down; electrically complete and
/// clean under the NMOS design rules.
pub fn nand2() -> SticksCell {
    gate_cell("nand2", 16, &[5, 9], 8, true)
}

/// A two-input OR gate cell with bottom inputs `A` (x=4), `B` (x=12)
/// and a top output `OUT` (x=8). Its NMOS topology is parallel
/// pull-downs — a NOR; the paper's "OR gate" in the filter is used the
/// same way. The wider input pitch keeps the R90 gates apart.
pub fn or2() -> SticksCell {
    gate_cell("or2", 16, &[4, 12], 8, false)
}

/// Shared gate body: `inputs` are bottom-pin x positions, `out_x` the
/// top output pin. `series` picks a NAND-like stacked pull-down
/// (parallel pull-downs otherwise, i.e. a NOR).
///
/// The pull path is electrically complete: ground rail → contact →
/// diffusion through the enhancement channels → output node →
/// depletion load → contact → power rail, so connectivity extraction
/// and switch-level simulation see the real gate.
fn gate_cell(name: &str, width: i64, inputs: &[i64], out_x: i64, series: bool) -> SticksCell {
    let h = 24;
    let node_x = width - 2; // output diffusion column
    let mut c = SticksCell::new(name, Rect::new(0, 0, width, h));
    rails(&mut c, width, h);
    if series {
        // One diffusion run from the ground contact through every gate
        // in series to the output node.
        c.push_contact(Contact {
            kind: ContactKind::MetalDiffusion,
            position: Point::new(4, 4),
        });
        c.push_wire(wire(Layer::Diffusion, 2, &[(4, 4), (4, 8), (node_x, 8)]));
        for (i, &x) in inputs.iter().enumerate() {
            let label = char::from(b'A' + i as u8).to_string();
            c.push_pin(pin(&label, Side::Bottom, Layer::Poly, x, 0, 2));
            // The input stops a lambda short of the channel row; the
            // gate rectangle bridges the rest.
            c.push_wire(wire(Layer::Poly, 2, &[(x, 0), (x, 7)]));
            c.push_device(Device {
                kind: DeviceKind::Enhancement,
                position: Point::new(x, 8),
                orient: Orientation::R0,
            });
        }
        c.push_wire(wire(Layer::Diffusion, 2, &[(node_x, 8), (node_x, 12)]));
    } else {
        // A parallel pull-down branch per input, joined at the output
        // node.
        for (i, &x) in inputs.iter().enumerate() {
            let label = char::from(b'A' + i as u8).to_string();
            c.push_pin(pin(&label, Side::Bottom, Layer::Poly, x, 0, 2));
            c.push_wire(wire(Layer::Poly, 2, &[(x, 0), (x, 7)]));
            c.push_contact(Contact {
                kind: ContactKind::MetalDiffusion,
                position: Point::new(x, 4),
            });
            c.push_wire(wire(Layer::Diffusion, 2, &[(x, 4), (x, 5)]));
            c.push_device(Device {
                kind: DeviceKind::Enhancement,
                position: Point::new(x, 8),
                orient: Orientation::R90,
            });
            c.push_wire(wire(Layer::Diffusion, 2, &[(x, 11), (x, 12), (node_x, 12)]));
        }
    }
    // The depletion load from the output node up to the power rail.
    c.push_device(Device {
        kind: DeviceKind::Depletion,
        position: Point::new(node_x, 15),
        orient: Orientation::R90,
    });
    c.push_wire(wire(Layer::Diffusion, 2, &[(node_x, 18), (node_x, 20)]));
    c.push_contact(Contact {
        kind: ContactKind::MetalDiffusion,
        position: Point::new(node_x, 20),
    });
    // Gate of the load ties to its source (the output node).
    c.push_contact(Contact {
        kind: ContactKind::Buried,
        position: Point::new(node_x, 13),
    });
    c.push_wire(wire(Layer::Poly, 2, &[(node_x, 13), (node_x, 14)]));
    // The output leaves in poly from the node to the top-edge pin,
    // jogging at y=13 to clear the input gates' poly.
    c.push_pin(pin("OUT", Side::Top, Layer::Poly, out_x, h, 2));
    c.push_wire(wire(
        Layer::Poly,
        2,
        &[
            (node_x, 14),
            (out_x - 4, 14),
            (out_x - 4, 20),
            (out_x, 20),
            (out_x, h),
        ],
    ));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gates_validate() {
        for cell in [shift_register(), nand2(), or2()] {
            cell.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
        }
    }

    #[test]
    fn rails_line_up_for_row_abutment() {
        // PWRR of one gate must meet PWRL of the next at the same height
        // and width when cells abut left-right.
        for cell in [nand2(), or2()] {
            let l = cell.pin("PWRL").unwrap();
            let r = cell.pin("PWRR").unwrap();
            assert_eq!(l.position.y, r.position.y, "{}", cell.name());
            assert_eq!(l.width, r.width);
            let g = cell.pin("GNDL").unwrap();
            assert_eq!(g.position.y, 3);
        }
    }

    #[test]
    fn shift_register_chain_pins_match() {
        let sr = shift_register();
        let si = sr.pin("SI").unwrap();
        let so = sr.pin("SO").unwrap();
        assert_eq!(si.position.y, so.position.y);
        assert_eq!(si.layer, so.layer);
        assert_eq!(si.side, Side::Left);
        assert_eq!(so.side, Side::Right);
    }

    #[test]
    fn gate_io_discipline() {
        for cell in [nand2(), or2()] {
            assert_eq!(cell.pin("A").unwrap().side, Side::Bottom);
            assert_eq!(cell.pin("B").unwrap().side, Side::Bottom);
            assert_eq!(cell.pin("OUT").unwrap().side, Side::Top);
            assert_eq!(cell.pin("A").unwrap().layer, Layer::Poly);
        }
    }

    #[test]
    fn cells_round_trip_through_sticks_text() {
        for cell in [shift_register(), nand2(), or2()] {
            let text = riot_sticks::to_text(&cell);
            let again = riot_sticks::parse(&text).unwrap();
            assert_eq!(cell, again);
        }
    }

    #[test]
    fn cells_generate_mask_geometry() {
        for cell in [shift_register(), nand2(), or2()] {
            let cif = riot_sticks::mask::to_cif_cell(&cell, 1);
            assert!(!cif.shapes.is_empty());
            assert_eq!(cif.connectors.len(), cell.pins().len());
        }
    }
}
