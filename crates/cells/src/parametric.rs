//! Parameterized cell generators for benchmark sweeps.
//!
//! The benches regenerate the paper's figures at many sizes; these
//! generators build gate-row cells with any number of pins at any
//! pitch, all obeying the same rail discipline as [`crate::gates`].

use riot_geom::{Layer, Path, Point, Rect, Side};
use riot_sticks::{Pin, SticksCell, SymWire};

/// A comb cell: `n` poly fingers entering on one `side` at `pitch`
/// lambda apart, each wired `depth` lambda into the cell. Used to build
/// arbitrarily wide routing and stretching problems.
///
/// Pins are named `P0…P(n-1)` in increasing coordinate order.
///
/// # Panics
///
/// Panics for `n == 0` or a pitch below the poly design rule (4λ).
pub fn comb(name: &str, side: Side, n: usize, pitch: i64) -> SticksCell {
    assert!(n > 0, "comb needs at least one finger");
    assert!(pitch >= 4, "pitch {pitch} below poly pitch");
    let extent = pitch * (n as i64 + 1);
    let depth = 8;
    let bbox = if side.is_vertical() {
        Rect::new(0, 0, depth * 2, extent)
    } else {
        Rect::new(0, 0, extent, depth * 2)
    };
    let mut cell = SticksCell::new(name, bbox);
    for i in 0..n {
        let along = pitch * (i as i64 + 1);
        let (pos, inner) = match side {
            Side::Left => (Point::new(0, along), Point::new(depth, along)),
            Side::Right => (
                Point::new(bbox.x1, along),
                Point::new(bbox.x1 - depth, along),
            ),
            Side::Bottom => (Point::new(along, 0), Point::new(along, depth)),
            Side::Top => (
                Point::new(along, bbox.y1),
                Point::new(along, bbox.y1 - depth),
            ),
        };
        cell.push_pin(Pin {
            name: format!("P{i}"),
            side,
            layer: Layer::Poly,
            position: pos,
            width: 2,
        });
        cell.push_wire(SymWire {
            layer: Layer::Poly,
            width: 2,
            path: Path::from_points([pos, inner]).expect("straight finger"),
        });
    }
    cell
}

/// A gate-row cell with `n` bottom inputs at `pitch` and one top
/// output, like a scaled [`crate::gates::nand2`]. Stretchable.
///
/// # Panics
///
/// As [`comb`].
pub fn wide_gate(name: &str, n: usize, pitch: i64) -> SticksCell {
    assert!(n > 0 && pitch >= 4);
    let width = pitch * (n as i64 + 1);
    let h = 24;
    let mut cell = SticksCell::new(name, Rect::new(0, 0, width, h));
    cell.push_pin(Pin {
        name: "PWRL".into(),
        side: Side::Left,
        layer: Layer::Metal,
        position: Point::new(0, h - 2),
        width: 3,
    });
    cell.push_pin(Pin {
        name: "PWRR".into(),
        side: Side::Right,
        layer: Layer::Metal,
        position: Point::new(width, h - 2),
        width: 3,
    });
    cell.push_wire(SymWire {
        layer: Layer::Metal,
        width: 3,
        path: Path::from_points([Point::new(0, h - 2), Point::new(width, h - 2)]).expect("rail"),
    });
    for i in 0..n {
        let x = pitch * (i as i64 + 1);
        cell.push_pin(Pin {
            name: format!("IN{i}"),
            side: Side::Bottom,
            layer: Layer::Poly,
            position: Point::new(x, 0),
            width: 2,
        });
        cell.push_wire(SymWire {
            layer: Layer::Poly,
            width: 2,
            path: Path::from_points([Point::new(x, 0), Point::new(x, 10)]).expect("input"),
        });
    }
    let out_x = width / 2;
    cell.push_pin(Pin {
        name: "OUT".into(),
        side: Side::Top,
        layer: Layer::Poly,
        position: Point::new(out_x, h),
        width: 2,
    });
    cell.push_wire(SymWire {
        layer: Layer::Poly,
        width: 2,
        path: Path::from_points([Point::new(out_x, 14), Point::new(out_x, h)]).expect("out"),
    });
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combs_validate_on_all_sides() {
        for side in Side::ALL {
            let c = comb("c", side, 5, 6);
            c.validate().unwrap();
            assert_eq!(c.pins().len(), 5);
        }
    }

    #[test]
    fn comb_pins_ordered() {
        let c = comb("c", Side::Left, 4, 5);
        let pins = c.pins_on_side(Side::Left);
        let names: Vec<&str> = pins.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["P0", "P1", "P2", "P3"]);
        assert_eq!(pins[1].position.y - pins[0].position.y, 5);
    }

    #[test]
    fn wide_gate_validates_and_scales() {
        for n in [1, 4, 16] {
            let g = wide_gate("g", n, 6);
            g.validate().unwrap();
            assert_eq!(g.pins().len(), n + 3); // inputs + rails + OUT
            assert_eq!(g.bbox().width(), 6 * (n as i64 + 1));
        }
    }

    #[test]
    #[should_panic]
    fn tight_pitch_panics() {
        let _ = comb("c", Side::Left, 3, 2);
    }
}
