//! Pipe fittings: corner cells for power, ground and clock routing.
//!
//! "Pre-defined pipe fittings aid complex routes for power, ground and
//! clock lines." A pipe corner takes a wire in on one edge and turns it
//! 90° onto an adjacent edge; instances are oriented to produce any of
//! the four corners.

use riot_geom::{Layer, Path, Point, Rect, Side};
use riot_sticks::{Pin, SticksCell, SymWire};

/// A corner fitting: wire enters on the **left** edge (`A`) and leaves
/// on the **bottom** edge (`B`). Rotate/mirror the instance for other
/// corners.
///
/// `layer` and `width` (lambda) follow the line being turned; the cell
/// is sized to `width + 2·spacing` so corners abut cleanly.
///
/// # Panics
///
/// Panics when `width` is not positive.
pub fn pipe_corner(layer: Layer, width: i64) -> SticksCell {
    assert!(width > 0, "pipe width must be positive");
    let margin = 3;
    let size = width + 2 * margin;
    let mid = size / 2;
    let mut c = SticksCell::new(
        format!("pipe{}{}", layer.cif_name().to_ascii_lowercase(), width),
        Rect::new(0, 0, size, size),
    );
    c.push_pin(Pin {
        name: "A".into(),
        side: Side::Left,
        layer,
        position: Point::new(0, mid),
        width,
    });
    c.push_pin(Pin {
        name: "B".into(),
        side: Side::Bottom,
        layer,
        position: Point::new(mid, 0),
        width,
    });
    c.push_wire(SymWire {
        layer,
        width,
        path: Path::from_points([Point::new(0, mid), Point::new(mid, mid), Point::new(mid, 0)])
            .expect("L-shaped Manhattan path"),
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_validates() {
        for (layer, width) in [(Layer::Metal, 3), (Layer::Poly, 2), (Layer::Metal, 6)] {
            let c = pipe_corner(layer, width);
            c.validate().unwrap();
            assert_eq!(c.pin("A").unwrap().layer, layer);
        }
    }

    #[test]
    fn corner_turns_ninety_degrees() {
        let c = pipe_corner(Layer::Metal, 3);
        assert_eq!(c.pin("A").unwrap().side, Side::Left);
        assert_eq!(c.pin("B").unwrap().side, Side::Bottom);
        assert_eq!(c.wires()[0].path.corner_count(), 1);
    }

    #[test]
    fn names_encode_layer_and_width() {
        assert_eq!(pipe_corner(Layer::Metal, 3).name(), "pipenm3");
        assert_eq!(pipe_corner(Layer::Poly, 2).name(), "pipenp2");
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = pipe_corner(Layer::Metal, 0);
    }
}
