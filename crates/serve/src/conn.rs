//! The per-connection state machine behind the poll io-model.
//!
//! A [`Connection`] is a **pure** state machine: bytes in
//! ([`Connection::ingest`]), events out ([`Connection::next_event`]),
//! reply bytes queued ([`Connection::queue_reply`]) and drained
//! ([`Connection::writable_bytes`] / [`Connection::advance_write`]).
//! It owns no socket, takes no locks and never blocks, which is what
//! lets the proptests drive arbitrary interleavings of partial frames,
//! readiness events and backlog stalls without a single file
//! descriptor.
//!
//! # States
//!
//! ```text
//! handshaking ──magic ok──▶ reading ◀──backlog drained── backlogged
//!      │                      │  │                            ▲
//!   bad magic            corrupt│  └──backlog ≥ pause─────────┘
//!      │                 or EOF │
//!      ▼                        ▼
//!   closed ◀──out drained── draining ◀── begin_drain (shutdown)
//! ```
//!
//! "Dispatching" is the synchronous phase inside `reading`: a scanned
//! frame is decoded **in place** (zero-copy — the payload slice
//! borrows the receive buffer) and handed to the dispatcher before the
//! scan resumes. The receive buffer is a growable scratch buffer with
//! a consumed offset; it compacts at the next `ingest`, after every
//! borrowed payload is dead.
//!
//! # Backlog invariants
//!
//! The write backlog is bounded twice over: past `backlog_max / 4`
//! pending bytes the connection stops *reading* (so a slow reader
//! throttles its own pipeline instead of growing the server's memory);
//! past `backlog_max` it is evicted outright. Worker inboxes keep
//! their own bound (`busy` replies) — the two backpressure layers
//! compose, they do not replace each other.

use crate::proto::{
    encode_frame, scan_frame_ref, FrameCorruption, FrameScanRef, ProtoVersion, Reply, SRV_MAGIC,
    SRV_MAGIC_V2,
};

/// Where a connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for the 8-byte magic.
    Handshaking,
    /// Scanning frames and dispatching requests.
    Reading,
    /// Write backlog crossed the pause threshold: reads are off until
    /// the peer drains.
    Backlogged,
    /// No more reads; flush the backlog and any in-flight replies,
    /// then close.
    Draining,
    /// Fully closed; the owner should drop the socket.
    Closed,
}

/// What [`Connection::next_event`] surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    /// The handshake completed; the magic echo is queued for write.
    Handshake(ProtoVersion),
    /// The first 8 bytes were not a known magic; the connection is
    /// closed.
    BadMagic,
    /// One complete, checksum-verified frame. `off..off + len` indexes
    /// [`Connection::frame_payload`]'s window — valid until the next
    /// `ingest`.
    Frame {
        /// Absolute payload offset in the receive buffer.
        off: usize,
        /// Payload length.
        len: usize,
    },
    /// The buffer head is not a valid frame; the connection is
    /// draining (the owner may queue one final error reply first).
    Corrupt(FrameCorruption),
}

/// Did a reply fit the bounded backlog?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum QueueOutcome {
    /// Queued; the owner should try to flush.
    Queued,
    /// The backlog crossed `backlog_max`: the connection evicted
    /// itself (state is now [`ConnState::Closed`], the backlog
    /// discarded).
    Overflow,
}

/// One connection's pure state: receive scratch, bounded write
/// backlog, dispatch accounting.
#[derive(Debug)]
pub struct Connection {
    state: ConnState,
    version: Option<ProtoVersion>,
    /// Receive scratch: frames are scanned in place at `start`.
    buf: Vec<u8>,
    start: usize,
    /// Write backlog: encoded frames pending at `out_off`.
    out: Vec<u8>,
    out_off: usize,
    backlog_max: usize,
    /// Requests handed to the dispatcher whose replies have not come
    /// back yet. Draining waits for them.
    in_flight: usize,
    /// Frames decoded in place since the connection opened.
    frames_in_place: u64,
}

impl Connection {
    /// A fresh connection in `handshaking`, evicting past
    /// `backlog_max` pending write bytes (reads pause at a quarter of
    /// that).
    pub fn new(backlog_max: usize) -> Connection {
        Connection {
            state: ConnState::Handshaking,
            version: None,
            buf: Vec::with_capacity(4096),
            start: 0,
            out: Vec::new(),
            out_off: 0,
            backlog_max: backlog_max.max(16),
            in_flight: 0,
            frames_in_place: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// The negotiated protocol version (post-handshake).
    pub fn version(&self) -> Option<ProtoVersion> {
        self.version
    }

    /// Pending write-backlog bytes.
    pub fn backlog_bytes(&self) -> usize {
        self.out.len() - self.out_off
    }

    /// Frames decoded in place (zero-copy) so far.
    pub fn frames_in_place(&self) -> u64 {
        self.frames_in_place
    }

    /// Dispatched requests still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when the owner should poll for read readiness: the
    /// connection is handshaking or reading and the backlog is under
    /// the pause threshold.
    pub fn wants_read(&self) -> bool {
        matches!(self.state, ConnState::Handshaking | ConnState::Reading)
    }

    /// True when backlog bytes are waiting for the socket.
    pub fn wants_write(&self) -> bool {
        self.state != ConnState::Closed && self.backlog_bytes() > 0
    }

    /// Fully closed?
    pub fn is_closed(&self) -> bool {
        self.state == ConnState::Closed
    }

    /// Appends received bytes to the scratch buffer, compacting the
    /// consumed prefix first (every payload borrowed from the previous
    /// scan window is dead by the time more bytes arrive).
    pub fn ingest(&mut self, bytes: &[u8]) {
        if matches!(self.state, ConnState::Draining | ConnState::Closed) {
            return; // no more reads; drop anything racing in
        }
        if self.start > 0 {
            let len = self.buf.len() - self.start;
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(len);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Scans the next event out of the receive buffer. `None` means
    /// more bytes are needed (or the connection no longer reads).
    /// Frames advance the consumed offset immediately; their payload
    /// window stays valid until the next [`Connection::ingest`].
    pub fn next_event(&mut self) -> Option<ConnEvent> {
        match self.state {
            ConnState::Handshaking => {
                if self.buf.len() - self.start < 8 {
                    return None;
                }
                let magic: [u8; 8] = self.buf[self.start..self.start + 8]
                    .try_into()
                    .expect("8 bytes");
                self.start += 8;
                let version = if &magic == SRV_MAGIC {
                    ProtoVersion::V1
                } else if &magic == SRV_MAGIC_V2 {
                    ProtoVersion::V2
                } else {
                    self.state = ConnState::Closed;
                    return Some(ConnEvent::BadMagic);
                };
                self.version = Some(version);
                self.state = ConnState::Reading;
                self.out.extend_from_slice(version.magic());
                Some(ConnEvent::Handshake(version))
            }
            // A backlogged connection stops dispatching too — frames
            // already buffered wait until the peer drains, so a slow
            // reader cannot keep minting replies.
            ConnState::Backlogged => None,
            ConnState::Reading => {
                match scan_frame_ref(&self.buf[self.start..]) {
                    FrameScanRef::Complete { consumed, payload } => {
                        let len = payload.len();
                        let off = self.start + 8;
                        self.start += consumed;
                        self.frames_in_place += 1;
                        Some(ConnEvent::Frame { off, len })
                    }
                    FrameScanRef::Incomplete => None,
                    FrameScanRef::Corrupt(c) => {
                        // Draining, not closed: the owner gets to queue
                        // one final error reply, and the close happens
                        // when the backlog flushes.
                        self.state = ConnState::Draining;
                        Some(ConnEvent::Corrupt(c))
                    }
                }
            }
            ConnState::Draining | ConnState::Closed => None,
        }
    }

    /// The payload window a [`ConnEvent::Frame`] named.
    pub fn frame_payload(&self, off: usize, len: usize) -> &[u8] {
        &self.buf[off..off + len]
    }

    /// Notes one request handed to the dispatcher; its reply must come
    /// back through [`Connection::deliver_reply`] before draining can
    /// finish.
    pub fn note_dispatched(&mut self) {
        self.in_flight += 1;
    }

    /// Queues a worker reply: balances [`Connection::note_dispatched`]
    /// then encodes the frame onto the backlog.
    pub fn deliver_reply(&mut self, reply: &Reply) -> QueueOutcome {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.queue_reply(reply)
    }

    /// Encodes `reply` onto the bounded write backlog. Crossing
    /// `backlog_max` evicts the connection ([`QueueOutcome::Overflow`]);
    /// crossing a quarter of it pauses reads until the peer drains.
    pub fn queue_reply(&mut self, reply: &Reply) -> QueueOutcome {
        if self.state == ConnState::Closed {
            return QueueOutcome::Queued; // nowhere to go; quietly dropped
        }
        self.out.extend_from_slice(&encode_frame(&reply.encode()));
        if self.backlog_bytes() > self.backlog_max {
            self.force_close();
            return QueueOutcome::Overflow;
        }
        self.update_backlog_state();
        QueueOutcome::Queued
    }

    /// The bytes the owner should write next.
    pub fn writable_bytes(&self) -> &[u8] {
        &self.out[self.out_off..]
    }

    /// Notes `n` backlog bytes written to the socket.
    pub fn advance_write(&mut self, n: usize) {
        self.out_off = (self.out_off + n).min(self.out.len());
        if self.out_off == self.out.len() {
            self.out.clear();
            self.out_off = 0;
        } else if self.out_off >= 64 * 1024 {
            let len = self.out.len() - self.out_off;
            self.out.copy_within(self.out_off.., 0);
            self.out.truncate(len);
            self.out_off = 0;
        }
        self.update_backlog_state();
        self.maybe_close();
    }

    /// Stops reading; once the backlog and every in-flight reply have
    /// drained, the connection closes. Idempotent.
    pub fn begin_drain(&mut self) {
        if self.state != ConnState::Closed {
            self.state = ConnState::Draining;
            self.maybe_close();
        }
    }

    /// Immediate eviction: discards the backlog and closes.
    pub fn force_close(&mut self) {
        self.state = ConnState::Closed;
        self.out.clear();
        self.out_off = 0;
        self.buf.clear();
        self.start = 0;
    }

    /// Reading ⇄ backlogged transitions driven by the pause threshold.
    fn update_backlog_state(&mut self) {
        let pause = self.backlog_max / 4;
        match self.state {
            ConnState::Reading if self.backlog_bytes() > pause => {
                self.state = ConnState::Backlogged;
            }
            ConnState::Backlogged if self.backlog_bytes() <= pause => {
                self.state = ConnState::Reading;
            }
            _ => {}
        }
    }

    fn maybe_close(&mut self) {
        if self.state == ConnState::Draining && self.backlog_bytes() == 0 && self.in_flight == 0 {
            self.state = ConnState::Closed;
        }
    }
}

// ----------------------------------------------------------------------
// Event-loop traces (the `examples/poll_trace.jsonl` golden format)
// ----------------------------------------------------------------------

/// One pinned event-loop trace record: what the loop saw (`accept`,
/// `readable`), what the state machine produced (`handshake`, `frame`,
/// `dispatch`), and what went back out (`reply`, `writable`, `close`).
/// The JSONL rendering is canonical — field order fixed — so a parsed
/// and re-encoded trace is byte-identical, and the golden test can
/// replay the `readable`/`reply` inputs through a fresh [`Connection`]
/// and demand the same outputs to the byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A connection was accepted.
    Accept {
        /// Loop-assigned connection token.
        conn: u64,
    },
    /// Bytes arrived from the socket (hex-encoded).
    Readable {
        /// Connection token.
        conn: u64,
        /// The bytes, lowercase hex.
        hex: String,
    },
    /// The handshake fixed the protocol version.
    Handshake {
        /// Connection token.
        conn: u64,
        /// 1 or 2.
        version: u8,
    },
    /// A frame decoded in place.
    Frame {
        /// Connection token.
        conn: u64,
        /// Request id.
        id: u64,
        /// The request's text form.
        text: String,
    },
    /// The request left for the worker pool.
    Dispatch {
        /// Connection token.
        conn: u64,
        /// Request id.
        id: u64,
        /// Target session.
        session: String,
    },
    /// A reply was queued onto the write backlog.
    Reply {
        /// Connection token.
        conn: u64,
        /// Request id echoed.
        id: u64,
        /// The reply's text form.
        text: String,
    },
    /// Backlog bytes left for the socket (hex-encoded).
    Writable {
        /// Connection token.
        conn: u64,
        /// The bytes written, lowercase hex.
        hex: String,
    },
    /// The connection closed.
    Close {
        /// Connection token.
        conn: u64,
    },
}

/// Lowercase hex of `bytes`.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase-hex string.
///
/// # Errors
///
/// A description of the malformed digit or length.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", s.len()));
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[1] as char))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            if let Some(n) = it.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Pulls `"key":"value"` out of a canonical trace line.
fn json_str(line: &str, key: &str) -> Result<String, String> {
    let tag = format!("\"{key}\":\"");
    let at = line
        .find(&tag)
        .ok_or_else(|| format!("missing `{key}` in {line}"))?
        + tag.len();
    let rest = &line[at..];
    let mut end = 0usize;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        if bytes[end] == b'\\' {
            end += 2;
            continue;
        }
        if bytes[end] == b'"' {
            return Ok(unesc(&rest[..end]));
        }
        end += 1;
    }
    Err(format!("unterminated `{key}` in {line}"))
}

/// Pulls `"key":N` out of a canonical trace line.
fn json_u64(line: &str, key: &str) -> Result<u64, String> {
    let tag = format!("\"{key}\":");
    let at = line
        .find(&tag)
        .ok_or_else(|| format!("missing `{key}` in {line}"))?
        + tag.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("bad `{key}` number in {line}"))
}

impl TraceEvent {
    /// The canonical JSONL rendering (fixed field order; re-encoding a
    /// parsed line reproduces it byte-for-byte).
    pub fn to_json_line(&self) -> String {
        match self {
            TraceEvent::Accept { conn } => format!("{{\"ev\":\"accept\",\"conn\":{conn}}}"),
            TraceEvent::Readable { conn, hex } => {
                format!("{{\"ev\":\"readable\",\"conn\":{conn},\"hex\":\"{hex}\"}}")
            }
            TraceEvent::Handshake { conn, version } => {
                format!("{{\"ev\":\"handshake\",\"conn\":{conn},\"version\":{version}}}")
            }
            TraceEvent::Frame { conn, id, text } => format!(
                "{{\"ev\":\"frame\",\"conn\":{conn},\"id\":{id},\"text\":\"{}\"}}",
                esc(text)
            ),
            TraceEvent::Dispatch { conn, id, session } => format!(
                "{{\"ev\":\"dispatch\",\"conn\":{conn},\"id\":{id},\"session\":\"{}\"}}",
                esc(session)
            ),
            TraceEvent::Reply { conn, id, text } => format!(
                "{{\"ev\":\"reply\",\"conn\":{conn},\"id\":{id},\"text\":\"{}\"}}",
                esc(text)
            ),
            TraceEvent::Writable { conn, hex } => {
                format!("{{\"ev\":\"writable\",\"conn\":{conn},\"hex\":\"{hex}\"}}")
            }
            TraceEvent::Close { conn } => format!("{{\"ev\":\"close\",\"conn\":{conn}}}"),
        }
    }

    /// Parses one canonical trace line.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
        let ev = json_str(line, "ev")?;
        let conn = json_u64(line, "conn")?;
        Ok(match ev.as_str() {
            "accept" => TraceEvent::Accept { conn },
            "readable" => TraceEvent::Readable {
                conn,
                hex: json_str(line, "hex")?,
            },
            "handshake" => TraceEvent::Handshake {
                conn,
                version: json_u64(line, "version")? as u8,
            },
            "frame" => TraceEvent::Frame {
                conn,
                id: json_u64(line, "id")?,
                text: json_str(line, "text")?,
            },
            "dispatch" => TraceEvent::Dispatch {
                conn,
                id: json_u64(line, "id")?,
                session: json_str(line, "session")?,
            },
            "reply" => TraceEvent::Reply {
                conn,
                id: json_u64(line, "id")?,
                text: json_str(line, "text")?,
            },
            "writable" => TraceEvent::Writable {
                conn,
                hex: json_str(line, "hex")?,
            },
            "close" => TraceEvent::Close { conn },
            other => return Err(format!("unknown trace event `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_frame, Reply, ReplyBody, Request, RequestBody};

    fn frame_for(req: &Request) -> Vec<u8> {
        encode_frame(&req.encode())
    }

    #[test]
    fn handshake_then_frames_decode_in_place() {
        let mut c = Connection::new(1 << 20);
        assert_eq!(c.state(), ConnState::Handshaking);
        assert!(c.next_event().is_none(), "no bytes yet");
        c.ingest(&SRV_MAGIC_V2[..4]);
        assert!(c.next_event().is_none(), "partial magic");
        c.ingest(&SRV_MAGIC_V2[4..]);
        assert_eq!(c.next_event(), Some(ConnEvent::Handshake(ProtoVersion::V2)));
        assert_eq!(c.state(), ConnState::Reading);
        assert_eq!(c.writable_bytes(), SRV_MAGIC_V2, "echo queued");
        c.advance_write(8);

        let req = Request {
            id: 7,
            body: RequestBody::Ping,
        };
        let bytes = frame_for(&req);
        // Feed in two torn halves: no event until the frame completes.
        c.ingest(&bytes[..5]);
        assert!(c.next_event().is_none());
        c.ingest(&bytes[5..]);
        let Some(ConnEvent::Frame { off, len }) = c.next_event() else {
            panic!("expected a frame");
        };
        let decoded = Request::decode(c.frame_payload(off, len)).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(c.frames_in_place(), 1);
    }

    #[test]
    fn bad_magic_closes() {
        let mut c = Connection::new(1 << 20);
        c.ingest(b"NOTRIOT!");
        assert_eq!(c.next_event(), Some(ConnEvent::BadMagic));
        assert!(c.is_closed());
        assert!(!c.wants_read() && !c.wants_write());
    }

    #[test]
    fn corrupt_frame_drains_after_error_reply() {
        let mut c = Connection::new(1 << 20);
        c.ingest(SRV_MAGIC);
        let _ = c.next_event();
        c.advance_write(8);
        let mut bytes = frame_for(&Request {
            id: 1,
            body: RequestBody::Ping,
        });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        c.ingest(&bytes);
        assert!(matches!(
            c.next_event(),
            Some(ConnEvent::Corrupt(FrameCorruption::BadChecksum { .. }))
        ));
        assert_eq!(c.state(), ConnState::Draining);
        let outcome = c.queue_reply(&Reply {
            id: u64::MAX,
            body: ReplyBody::Err("corrupt".into()),
        });
        assert_eq!(outcome, QueueOutcome::Queued);
        assert!(c.wants_write());
        let n = c.writable_bytes().len();
        c.advance_write(n);
        assert!(c.is_closed(), "drained ⇒ closed");
    }

    #[test]
    fn backlog_pauses_reads_then_evicts() {
        let mut c = Connection::new(400);
        c.ingest(SRV_MAGIC);
        let _ = c.next_event();
        c.advance_write(8);
        let big = Reply {
            id: 1,
            body: ReplyBody::Ok("x".repeat(120)),
        };
        // Past backlog_max/4 = 100 pending bytes: reads pause.
        assert_eq!(c.queue_reply(&big), QueueOutcome::Queued);
        assert_eq!(c.state(), ConnState::Backlogged);
        assert!(!c.wants_read());
        // Draining the backlog resumes reads.
        let n = c.writable_bytes().len();
        c.advance_write(n);
        assert_eq!(c.state(), ConnState::Reading);
        assert!(c.wants_read());
        // Past backlog_max pending bytes with nothing drained: evicted.
        let mut saw_overflow = false;
        for _ in 0..10 {
            if c.queue_reply(&big) == QueueOutcome::Overflow {
                saw_overflow = true;
                break;
            }
        }
        assert!(saw_overflow, "unbounded backlog never evicted");
        assert!(c.is_closed());
        assert_eq!(c.backlog_bytes(), 0, "evicted backlog is discarded");
    }

    #[test]
    fn drain_waits_for_in_flight_replies() {
        let mut c = Connection::new(1 << 20);
        c.ingest(SRV_MAGIC);
        let _ = c.next_event();
        c.advance_write(8);
        c.note_dispatched();
        c.begin_drain();
        assert_eq!(c.state(), ConnState::Draining, "in-flight reply pending");
        let _ = c.deliver_reply(&Reply {
            id: 3,
            body: ReplyBody::Ok("pong".into()),
        });
        assert_eq!(c.state(), ConnState::Draining, "backlog still queued");
        let n = c.writable_bytes().len();
        c.advance_write(n);
        assert!(c.is_closed());
    }

    #[test]
    fn scratch_compacts_without_losing_partial_frames() {
        let mut c = Connection::new(1 << 20);
        c.ingest(SRV_MAGIC);
        let _ = c.next_event();
        c.advance_write(8);
        let a = frame_for(&Request {
            id: 1,
            body: RequestBody::Ping,
        });
        let b = frame_for(&Request {
            id: 2,
            body: RequestBody::Cmd {
                session: "s".into(),
                line: "create nand2 A".into(),
            },
        });
        // Frame a plus half of frame b, then the rest: the consumed
        // prefix compacts away at the second ingest and both frames
        // decode intact.
        let mut wire = a.clone();
        wire.extend_from_slice(&b[..b.len() / 2]);
        c.ingest(&wire);
        let Some(ConnEvent::Frame { off, len }) = c.next_event() else {
            panic!("frame a");
        };
        assert_eq!(Request::decode(c.frame_payload(off, len)).unwrap().id, 1);
        assert!(c.next_event().is_none(), "frame b is torn");
        c.ingest(&b[b.len() / 2..]);
        let Some(ConnEvent::Frame { off, len }) = c.next_event() else {
            panic!("frame b");
        };
        assert_eq!(Request::decode(c.frame_payload(off, len)).unwrap().id, 2);
    }

    #[test]
    fn trace_events_round_trip_byte_identically() {
        let events = vec![
            TraceEvent::Accept { conn: 1 },
            TraceEvent::Readable {
                conn: 1,
                hex: to_hex(SRV_MAGIC_V2),
            },
            TraceEvent::Handshake {
                conn: 1,
                version: 2,
            },
            TraceEvent::Frame {
                conn: 1,
                id: 1,
                text: "ping".into(),
            },
            TraceEvent::Dispatch {
                conn: 1,
                id: 2,
                session: "s1".into(),
            },
            TraceEvent::Reply {
                conn: 1,
                id: 1,
                text: "ok pong".into(),
            },
            TraceEvent::Writable {
                conn: 1,
                hex: "deadbeef".into(),
            },
            TraceEvent::Close { conn: 1 },
        ];
        for ev in events {
            let line = ev.to_json_line();
            let parsed = TraceEvent::parse_line(&line).unwrap();
            assert_eq!(parsed, ev);
            assert_eq!(parsed.to_json_line(), line, "canonical re-encode");
        }
        assert_eq!(from_hex(&to_hex(b"\x00\xffriot")).unwrap(), b"\x00\xffriot");
        assert!(from_hex("abc").is_err());
        assert!(TraceEvent::parse_line("{\"ev\":\"warp\",\"conn\":1}").is_err());
    }
}
