//! # riot-serve — headless multi-session composition server
//!
//! Hosts many concurrent [`riot_core::Editor`] sessions behind the
//! `RIOTSRV1` binary wire protocol (length-prefixed, CRC-checksummed
//! frames with client-chosen request ids for pipelining) over TCP or
//! Unix-domain sockets.
//!
//! * [`proto`] — frames, requests, replies, handshake
//! * [`session`] — WAL-backed hosted sessions (durability + recovery)
//! * [`snapshot`] — `RIOTSNAP1` session snapshots (O(tail) recovery,
//!   WAL compaction)
//! * [`manager`] — the sharded worker pool (batching, backpressure,
//!   idle eviction)
//! * [`conn`] — the pure per-connection state machine behind the poll
//!   io-model (zero-copy scan buffer, bounded write backlog)
//! * [`server`] — the readiness-driven event loop (default) and the
//!   thread-per-connection fallback, accept, drain
//! * [`client`] — a small blocking client used by the bench, the CLI
//!   and the tests
//! * [`bench`] — the load generator behind `riot-serve bench`
//! * [`fault`] — request-path fault injection
//! * [`flightrec`] — the always-on bounded ring of recent events,
//!   dumped on panic, crash or the `dump` verb
//! * [`telemetry`] — the `--telemetry-addr` HTTP scrape endpoint
//!
//! The durability contract, in one line: **an `ok` reply is released
//! only after the command's journal record is flushed to the
//! session's WAL**, so anything a client saw acknowledged survives a
//! crash (recovery truncates at the first torn record and replays the
//! intact prefix).

pub mod bench;
pub mod client;
pub mod config;
pub mod conn;
pub mod fault;
pub mod flightrec;
pub mod manager;
pub mod net;
pub mod proto;
pub mod server;
pub mod session;
pub mod snapshot;
pub mod telemetry;

pub use bench::{
    run_bench, run_conn_point, run_conn_scaling, run_recovery_bench, run_suite, BenchConfig,
    BenchReport, BenchSuite, ConnScalePoint, RecoveryPoint, THREADS_SCALE_CAP,
};
pub use client::Client;
pub use config::{resolve_threads, standard_library, IoModel, LibraryFactory, ServeConfig};
pub use conn::{ConnEvent, ConnState, Connection, QueueOutcome, TraceEvent};
pub use fault::ServeFaults;
pub use flightrec::{FlightEvent, FlightKind, FlightRecorder};
pub use manager::{JobKind, ReplyTx, SessionManager};
pub use net::{Bind, BoundAddr, Interest, Listener, PollSet, Readiness, Stream, WakePipe};
pub use proto::{
    decode_frame_eof, encode_frame, handshake_client_v2, read_frame, read_frame_into, scan_frame,
    scan_frame_ref, valid_session_name, write_frame, FrameCorruption, FrameScan, FrameScanRef,
    ProtoError, ProtoVersion, Reply, ReplyBody, Request, RequestBody, RequestBodyRef, RequestRef,
    TelemetryFormat, SRV_MAGIC, SRV_MAGIC_V2,
};
pub use server::{Server, ServerHandle};
pub use session::{wal_path, OpenKind, SessionEntry};
pub use snapshot::{
    frame_snapshot, load_snapshot, parse_snapshot, snap_path, write_snapshot, SnapLoad,
    SnapshotError, SNAP_MAGIC,
};
pub use telemetry::TelemetryServer;
