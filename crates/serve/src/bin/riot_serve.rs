//! `riot-serve`: the headless multi-session composition server.
//!
//! ```text
//! riot-serve serve --addr 127.0.0.1:7117 --root ./riot-serve-data
//! riot-serve serve --socket /tmp/riot.sock --root ./riot-serve-data
//! riot-serve bench --addr 127.0.0.1:7117 --sessions 4 --commands 1000
//! riot-serve bench --spawn --out BENCH_serve.json
//! riot-serve stats --socket /tmp/riot.sock [--session NAME]
//! riot-serve telemetry --socket /tmp/riot.sock [--json]
//! riot-serve dump --socket /tmp/riot.sock
//! riot-serve shutdown --socket /tmp/riot.sock
//! ```
//!
//! `serve` blocks until a client sends the `shutdown` verb (or the
//! process receives a signal). `bench` either connects to a running
//! server (`--addr`/`--socket`) or, with `--spawn`, starts a private
//! Unix-socket server in a temp directory, drives it, and drains it —
//! the zero-setup path CI uses. The report is schema-validated before
//! a single number is printed or written.

use riot_serve::{
    run_bench, run_suite, BenchConfig, Bind, BoundAddr, Client, IoModel, ServeConfig, Server,
    TelemetryFormat,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

const USAGE: &str = "\
riot-serve: headless multi-session composition server (RIOTSRV2)

USAGE:
    riot-serve serve [--addr HOST:PORT | --socket PATH] [OPTIONS]
    riot-serve bench [--addr HOST:PORT | --socket PATH | --spawn] [OPTIONS]
    riot-serve stats (--addr HOST:PORT | --socket PATH) [--session NAME]
    riot-serve telemetry (--addr HOST:PORT | --socket PATH) [--json]
    riot-serve dump (--addr HOST:PORT | --socket PATH)
    riot-serve shutdown (--addr HOST:PORT | --socket PATH)

SERVE OPTIONS:
    --addr HOST:PORT   TCP listen address (default 127.0.0.1:7117)
    --socket PATH      Unix-domain socket (overrides --addr)
    --root DIR         WAL directory (default ./riot-serve-data)
    --threads N        worker threads (default: RIOT_SERVE_THREADS or
                       machine parallelism, clamped to 1..=64)
    --io-model MODEL   connection plane: `poll` (one readiness event
                       loop owns every connection; the default) or
                       `threads` (two OS threads per connection)
    --telemetry-addr HOST:PORT
                       serve /metrics, /metrics.json, /flightrec and
                       /healthz over HTTP on this address
    --slow-ms MS       slow-command log threshold (default 100)
    --group-commit-us N
                       group-commit window in microseconds (default
                       1000); one fsync covers every command staged
                       inside the window
    --no-group-commit  fsync once per command run (the pre-group-commit
                       behaviour; the bench baseline)
    --snapshot-every N cut a RIOTSNAP1 snapshot and compact the WAL
                       every N journal records (default 1000; 0 = off)

BENCH OPTIONS:
    --spawn            start a private Unix-socket server for the run
    --suite            spawn grouped + baseline servers, report the
                       durable-throughput speedup, the recovery curve
                       and the connection-scaling axis (implies --spawn)
    --sessions N       concurrent client connections (default 4)
    --commands M       commands per session (default 1000)
    --window W         pipelined requests in flight (default 32)
    --io-model MODEL   spawned-server connection plane (as for serve)
    --conn-scale LIST  comma-separated connection counts for the
                       suite's scaling axis (default 64,256,1024; the
                       threads model is capped at 256)
    --group-commit-us N / --no-group-commit / --snapshot-every N
                       spawned-server durability knobs (as for serve)
    --out PATH         write the JSON report here (default: stdout only)

STATS OPTIONS:
    --session NAME     one session's engine counters (cache hit rate,
                       damage totals) instead of the pool-wide line

TELEMETRY OPTIONS:
    --json             JSON snapshot instead of Prometheus text

GLOBAL:
    -h, --help         this help
    -V, --version      print version and exit
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-V" || a == "--version") {
        println!("riot-serve {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    match argv.first().map(String::as_str) {
        Some("serve") => cmd_serve(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("stats") => cmd_stats(&argv[1..]),
        Some("telemetry") => cmd_telemetry(&argv[1..]),
        Some("dump") => cmd_dump(&argv[1..]),
        Some("shutdown") => cmd_shutdown(&argv[1..]),
        Some("-h") | Some("--help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{USAGE}");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("riot-serve: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `--addr`/`--socket` pair shared by every subcommand.
struct Target {
    addr: Option<String>,
    socket: Option<PathBuf>,
}

impl Target {
    fn bind_or_default(&self) -> Bind {
        match (&self.socket, &self.addr) {
            (Some(p), _) => Bind::Unix(p.clone()),
            (None, Some(a)) => Bind::Tcp(a.clone()),
            (None, None) => Bind::Tcp("127.0.0.1:7117".to_owned()),
        }
    }

    fn connect(&self) -> Result<Client, String> {
        match (&self.socket, &self.addr) {
            (Some(p), _) => {
                Client::connect_unix(p).map_err(|e| format!("connect {}: {e}", p.display()))
            }
            (None, Some(a)) => Client::connect_tcp(a).map_err(|e| format!("connect {a}: {e}")),
            (None, None) => Err("need --addr or --socket".to_owned()),
        }
    }
}

/// The durability knobs `serve` and `bench --spawn` share:
/// `--group-commit-us`, `--no-group-commit`, `--snapshot-every`.
struct DurabilityFlags {
    group_commit_us: u64,
    no_group_commit: bool,
    snapshot_every: usize,
}

impl Default for DurabilityFlags {
    fn default() -> Self {
        DurabilityFlags {
            group_commit_us: 1000,
            no_group_commit: false,
            snapshot_every: 1000,
        }
    }
}

impl DurabilityFlags {
    /// Tries `flag` against the shared durability flags; returns
    /// `false` when the flag is not one of them.
    fn parse(&mut self, flag: &str, value: &mut dyn FnMut(&str) -> String) -> bool {
        match flag {
            "--group-commit-us" => {
                self.group_commit_us = value("--group-commit-us")
                    .parse()
                    .unwrap_or_else(|_| fail("`--group-commit-us` wants an integer"));
            }
            "--no-group-commit" => self.no_group_commit = true,
            "--snapshot-every" => {
                self.snapshot_every = value("--snapshot-every")
                    .parse()
                    .unwrap_or_else(|_| fail("`--snapshot-every` wants an integer"));
            }
            _ => return false,
        }
        true
    }

    /// Microseconds for the bench report: 0 = group commit off.
    fn effective_us(&self) -> u64 {
        if self.no_group_commit || self.group_commit_us == 0 {
            0
        } else {
            self.group_commit_us
        }
    }

    fn apply(&self, cfg: &mut ServeConfig) {
        cfg.group_commit = match self.effective_us() {
            0 => None,
            us => Some(Duration::from_micros(us)),
        };
        cfg.snapshot_every = self.snapshot_every;
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut root = PathBuf::from("./riot-serve-data");
    let mut threads = 0usize;
    let mut io_model = IoModel::default();
    let mut telemetry_addr: Option<String> = None;
    let mut slow_ms = 100u64;
    let mut durability = DurabilityFlags::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            "--root" => root = PathBuf::from(value("--root")),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("`--threads` wants an integer"));
            }
            "--io-model" => {
                io_model = IoModel::from_str(&value("--io-model")).unwrap_or_else(|e| fail(&e));
            }
            "--telemetry-addr" => telemetry_addr = Some(value("--telemetry-addr")),
            "--slow-ms" => {
                slow_ms = value("--slow-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("`--slow-ms` wants an integer"));
            }
            other => {
                if !durability.parse(other, &mut value) {
                    fail(&format!("unknown flag `{other}`"))
                }
            }
        }
    }
    let mut cfg = ServeConfig::new(root);
    cfg.threads = threads;
    cfg.io_model = io_model;
    cfg.telemetry_addr = telemetry_addr;
    cfg.slow_threshold = Duration::from_millis(slow_ms);
    durability.apply(&mut cfg);
    let bind = target.bind_or_default();
    let handle = match Server::start(cfg, &bind) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("riot-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("riot-serve: listening on {}", handle.addr());
    if let Some(t) = handle.telemetry_addr() {
        eprintln!("riot-serve: telemetry on http://{t}/metrics");
    }
    handle.wait();
    eprintln!("riot-serve: drained");
    riot_trace::dump_from_env();
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut bench = BenchConfig::default();
    let mut spawn = false;
    let mut suite = false;
    let mut io_model = IoModel::default();
    let mut conn_scales: Vec<usize> = vec![64, 256, 1024];
    let mut out: Option<PathBuf> = None;
    let mut durability = DurabilityFlags::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            "--spawn" => spawn = true,
            "--suite" => suite = true,
            "--sessions" => {
                bench.sessions = value("--sessions")
                    .parse()
                    .unwrap_or_else(|_| fail("`--sessions` wants an integer"));
            }
            "--commands" => {
                bench.commands = value("--commands")
                    .parse()
                    .unwrap_or_else(|_| fail("`--commands` wants an integer"));
            }
            "--window" => {
                bench.window = value("--window")
                    .parse()
                    .unwrap_or_else(|_| fail("`--window` wants an integer"));
            }
            "--io-model" => {
                io_model = IoModel::from_str(&value("--io-model")).unwrap_or_else(|e| fail(&e));
            }
            "--conn-scale" => {
                conn_scales = value("--conn-scale")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail("`--conn-scale` wants N,N,..."))
                    })
                    .collect();
                if conn_scales.is_empty() {
                    fail("`--conn-scale` wants at least one count");
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out"))),
            other => {
                if !durability.parse(other, &mut value) {
                    fail(&format!("unknown flag `{other}`"))
                }
            }
        }
    }

    // The suite spawns its own grouped and baseline servers and runs
    // the recovery curve; --addr/--socket would go unused.
    if suite {
        if target.addr.is_some() || target.socket.is_some() {
            eprintln!("riot-serve: --suite spawns its own servers; drop --addr/--socket");
            return ExitCode::from(2);
        }
        let gc_us = match durability.effective_us() {
            0 => {
                eprintln!("riot-serve: --suite compares group commit against baseline; it needs a nonzero window");
                return ExitCode::from(2);
            }
            us => us,
        };
        let result = run_suite(
            &bench,
            gc_us,
            durability.snapshot_every,
            &[500, 2000, 8000],
            64,
            &conn_scales,
        );
        return match result {
            Ok(s) => emit_json(&s.to_json(), out.as_deref()),
            Err(e) => {
                eprintln!("riot-serve: bench suite failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Either drive a live server, or spawn a private one.
    let (addr, spawned): (BoundAddr, Option<(Server2, PathBuf)>) = if spawn {
        let dir = std::env::temp_dir().join(format!("riot-serve-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("riot-serve: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let bind = Bind::Unix(dir.join("bench.sock"));
        let mut cfg = ServeConfig::new(dir.join("wal"));
        cfg.io_model = io_model;
        durability.apply(&mut cfg);
        // We know the spawned server's window; stamp it into the report.
        bench.group_commit_us = Some(durability.effective_us());
        match Server::start(cfg, &bind) {
            Ok(h) => {
                let addr = h.addr();
                (addr, Some((h, dir)))
            }
            Err(e) => {
                eprintln!("riot-serve: cannot spawn bench server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match (&target.socket, &target.addr) {
            (Some(p), _) => (BoundAddr::Unix(p.clone()), None),
            (None, Some(a)) => match a.parse() {
                Ok(sa) => (BoundAddr::Tcp(sa), None),
                Err(_) => {
                    eprintln!("riot-serve: `--addr` wants HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            (None, None) => {
                eprintln!("riot-serve: bench needs --addr, --socket or --spawn");
                return ExitCode::from(2);
            }
        }
    };

    let result = run_bench(&addr, &bench);
    if let Some((handle, dir)) = spawned {
        handle.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
    match result {
        Ok(report) => emit_json(&report.to_json(), out.as_deref()),
        Err(e) => {
            eprintln!("riot-serve: bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints `json` and optionally writes it to `out`.
fn emit_json(json: &str, out: Option<&std::path::Path>) -> ExitCode {
    print!("{json}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("riot-serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("riot-serve: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Alias so the spawned-server tuple above reads sanely.
type Server2 = riot_serve::ServerHandle;

fn cmd_stats(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut session: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            "--session" => session = Some(value("--session")),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let result = target.connect().and_then(|mut c| match &session {
        Some(s) => c.stats_session(s),
        None => c.stats(),
    });
    match result {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("riot-serve: stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_telemetry(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut format = TelemetryFormat::Prometheus;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            "--json" => format = TelemetryFormat::Json,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    match target.connect().and_then(|mut c| c.telemetry(format)) {
        Ok(snapshot) => {
            println!("{snapshot}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("riot-serve: telemetry failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    match target.connect().and_then(|mut c| c.dump()) {
        Ok(path) => {
            println!("{path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("riot-serve: dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_shutdown(args: &[String]) -> ExitCode {
    let mut target = Target {
        addr: None,
        socket: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("`{name}` needs a value")))
        };
        match flag.as_str() {
            "--addr" => target.addr = Some(value("--addr")),
            "--socket" => target.socket = Some(PathBuf::from(value("--socket"))),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    match target.connect().and_then(|mut c| c.shutdown_server()) {
        Ok(d) => {
            eprintln!("riot-serve: server says `{d}`");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("riot-serve: shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("riot-serve: {msg}\n\n{USAGE}");
    std::process::exit(2)
}
