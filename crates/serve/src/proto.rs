//! The `RIOTSRV1` wire protocol: length-prefixed, checksummed binary
//! frames carrying pipelined requests.
//!
//! # Connection handshake and version negotiation
//!
//! The client opens a socket and writes an 8-byte magic — [`SRV_MAGIC`]
//! (`RIOTSRV1`) or [`SRV_MAGIC_V2`] (`RIOTSRV2`); the server accepts
//! either and echoes back what it received, fixing the connection's
//! [`ProtoVersion`]. Everything after the handshake is frames in both
//! directions. Old clients keep sending `RIOTSRV1` and notice nothing;
//! new clients send `RIOTSRV2` to unlock the trace-context field.
//!
//! # Frame format
//!
//! Deliberately the same record shape as the crash-safe journal
//! ([`riot_core::WAL_MAGIC`] files): a `u32` little-endian payload
//! length, a `u32` little-endian CRC-32 (IEEE, zlib-compatible —
//! [`riot_core::crc32`]) of the payload, then the payload bytes. A
//! frame whose length exceeds [`MAX_FRAME_PAYLOAD`] or whose checksum
//! disagrees is a protocol error; the server replies with a
//! description and closes the connection rather than guessing at
//! resynchronization.
//!
//! # Payloads
//!
//! A **v1** request payload is an 8-byte little-endian **request id**
//! (chosen by the client, echoed verbatim in the reply — this is what
//! makes pipelining safe) followed by a UTF-8 command text. A **v2**
//! payload inserts a flags byte after the id; when
//! [`REQ_FLAG_TRACE`] is set, 16 bytes of trace context
//! (`trace_id u64 LE`, `parent_span u64 LE`) precede the text, letting
//! the server continue the client's trace through its decode → queue →
//! apply → WAL-flush phases:
//!
//! ```text
//! open <session> <cell>      create, attach or recover a session
//! cmd <session> <line…>      queue one editor command (replay syntax)
//! close <session>            flush the session's WAL and evict it
//! ping                       liveness probe
//! stats                      live session / queue-depth gauges
//! telemetry [prom|json]      metrics registry snapshot (Prometheus
//!                            text format or JSON)
//! dump                       write the flight recorder to a JSONL
//!                            file under --root, reply with its path
//! shutdown                   ask the server to drain and exit
//! ```
//!
//! The `cmd` line reuses the REPLAY/WAL command codec verbatim
//! ([`riot_core::parse_command_line`]), so anything a journal can hold
//! can travel the wire, and a session's WAL is byte-compatible with
//! what the offline tools read.
//!
//! A reply payload is the echoed request id followed by one of:
//!
//! ```text
//! ok <detail…>               request succeeded
//! err <message…>             request failed (session state unchanged
//!                            unless the message says otherwise)
//! busy                       backpressure: the session inbox is full,
//!                            retry after draining in-flight replies
//! ```

use riot_core::crc32;
use riot_trace::TraceContext;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every v1 connection, in both directions.
pub const SRV_MAGIC: &[u8; 8] = b"RIOTSRV1";

/// Magic bytes opening a v2 (trace-context-capable) connection.
pub const SRV_MAGIC_V2: &[u8; 8] = b"RIOTSRV2";

/// Request-payload flag: 16 bytes of trace context follow the flags
/// byte (v2 payloads only).
pub const REQ_FLAG_TRACE: u8 = 0x01;

/// The protocol revision a connection negotiated at handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoVersion {
    /// `RIOTSRV1`: id + text payloads.
    V1,
    /// `RIOTSRV2`: id + flags (+ optional trace context) + text.
    V2,
}

impl ProtoVersion {
    /// The magic bytes announcing this version.
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            ProtoVersion::V1 => SRV_MAGIC,
            ProtoVersion::V2 => SRV_MAGIC_V2,
        }
    }
}

/// Hard cap on a frame payload. Command lines are tiny; anything
/// approaching this is a corrupt length field or an abusive client.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Why a frame (or handshake) could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameCorruption {
    /// The connection did not open with [`SRV_MAGIC`].
    BadMagic,
    /// Fewer than 8 header bytes were available — a torn header.
    TornHeader,
    /// The header promises more payload than is available.
    TornPayload {
        /// Bytes the header claims.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge(usize),
    /// The stored checksum disagrees with the payload bytes.
    BadChecksum {
        /// Checksum in the frame header.
        stored: u32,
        /// Checksum of the received payload.
        computed: u32,
    },
}

impl fmt::Display for FrameCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameCorruption::BadMagic => f.write_str("missing RIOTSRV1 magic"),
            FrameCorruption::TornHeader => f.write_str("torn frame header"),
            FrameCorruption::TornPayload {
                expected,
                available,
            } => write!(
                f,
                "torn frame payload: {expected} bytes promised, {available} present"
            ),
            FrameCorruption::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            FrameCorruption::BadChecksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

/// A protocol-layer error: I/O or corruption.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (includes timeouts and EOF).
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The bytes on the wire are not a valid frame.
    Corrupt(FrameCorruption),
    /// The frame decoded but its payload is not a valid message.
    BadPayload(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Closed => f.write_str("connection closed"),
            ProtoError::Corrupt(c) => write!(f, "corrupt frame: {c}"),
            ProtoError::BadPayload(m) => write!(f, "bad payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Encodes one frame: `[len u32 LE][crc32 u32 LE][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of scanning a byte buffer for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameScan {
    /// A complete, intact frame: its payload and the total bytes
    /// consumed (header + payload).
    Complete {
        /// The verified payload.
        payload: Vec<u8>,
        /// Header + payload length in bytes.
        consumed: usize,
    },
    /// More bytes are needed; nothing was consumed.
    Incomplete,
    /// The buffer head is not a valid frame.
    Corrupt(FrameCorruption),
}

/// The outcome of the zero-copy scan: like [`FrameScan`], but a
/// complete frame's payload **borrows** the scanned buffer instead of
/// copying it — the event loop decodes requests straight out of each
/// connection's receive buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameScanRef<'a> {
    /// A complete, intact frame: its payload (borrowed, in place) and
    /// the total bytes consumed (header + payload).
    Complete {
        /// The verified payload, borrowed from the scanned buffer.
        payload: &'a [u8],
        /// Header + payload length in bytes.
        consumed: usize,
    },
    /// More bytes are needed; nothing was consumed.
    Incomplete,
    /// The buffer head is not a valid frame.
    Corrupt(FrameCorruption),
}

/// Scans `buf` for one frame at offset 0 without consuming input and
/// without copying the payload.
///
/// Unlike the streaming [`read_frame`], this never blocks: partial
/// frames report [`FrameScanRef::Incomplete`]. A length field beyond
/// [`MAX_FRAME_PAYLOAD`] and a checksum mismatch are immediately
/// [`FrameScanRef::Corrupt`] — a decoder must not wait for a 4 GiB
/// payload that a flipped length bit promised.
pub fn scan_frame_ref(buf: &[u8]) -> FrameScanRef<'_> {
    if buf.len() < 8 {
        return FrameScanRef::Incomplete;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return FrameScanRef::Corrupt(FrameCorruption::TooLarge(len));
    }
    let stored = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if buf.len() - 8 < len {
        return FrameScanRef::Incomplete;
    }
    let payload = &buf[8..8 + len];
    let computed = crc32(payload);
    if computed != stored {
        return FrameScanRef::Corrupt(FrameCorruption::BadChecksum { stored, computed });
    }
    FrameScanRef::Complete {
        payload,
        consumed: 8 + len,
    }
}

/// Copying variant of [`scan_frame_ref`], kept for callers that need
/// the payload to outlive the buffer (the threads io-model's reader
/// drains its buffer before dispatching).
pub fn scan_frame(buf: &[u8]) -> FrameScan {
    match scan_frame_ref(buf) {
        FrameScanRef::Complete { payload, consumed } => FrameScan::Complete {
            payload: payload.to_vec(),
            consumed,
        },
        FrameScanRef::Incomplete => FrameScan::Incomplete,
        FrameScanRef::Corrupt(c) => FrameScan::Corrupt(c),
    }
}

/// Scans a complete byte stream (no more input coming) for one frame —
/// the decoder used by the proptests and the golden fixture: torn
/// tails decode to a clean [`FrameCorruption`], never a panic.
pub fn decode_frame_eof(buf: &[u8]) -> Result<(Vec<u8>, usize), FrameCorruption> {
    match scan_frame(buf) {
        FrameScan::Complete { payload, consumed } => Ok((payload, consumed)),
        FrameScan::Corrupt(c) => Err(c),
        FrameScan::Incomplete => {
            if buf.len() < 8 {
                Err(FrameCorruption::TornHeader)
            } else {
                let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
                Err(FrameCorruption::TornPayload {
                    expected: len,
                    available: buf.len() - 8,
                })
            }
        }
    }
}

/// Writes one frame to `w` (no flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))
}

/// Reads one frame from `r`, blocking. Returns [`ProtoError::Closed`]
/// when the stream ends cleanly *between* frames; an EOF mid-frame is
/// a corrupt (torn) frame.
///
/// Allocates a fresh payload per call; hot loops should hold a scratch
/// buffer and call [`read_frame_into`] instead.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    read_frame_into(r, &mut payload)?;
    Ok(payload)
}

/// Reads one frame from `r` into `scratch`, reusing its allocation.
/// On success `scratch` holds exactly the payload bytes. A reuse —
/// the buffer's existing capacity was enough, no allocation — counts
/// `serve.frame.buf_reuse`.
///
/// # Errors
///
/// As [`read_frame`]: [`ProtoError::Closed`] on clean EOF between
/// frames, torn/corrupt frames, socket errors.
pub fn read_frame_into(r: &mut impl Read, scratch: &mut Vec<u8>) -> Result<(), ProtoError> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < 8 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    ProtoError::Closed
                } else {
                    ProtoError::Corrupt(FrameCorruption::TornHeader)
                });
            }
            Ok(n) => got += n,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Corrupt(FrameCorruption::TooLarge(len)));
    }
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > 0 && scratch.capacity() >= len {
        riot_trace::registry()
            .counter("serve.frame.buf_reuse")
            .inc();
    }
    scratch.clear();
    scratch.resize(len, 0);
    let mut got = 0usize;
    while got < len {
        match r.read(&mut scratch[got..]) {
            Ok(0) => {
                return Err(ProtoError::Corrupt(FrameCorruption::TornPayload {
                    expected: len,
                    available: got,
                }));
            }
            Ok(n) => got += n,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let computed = crc32(scratch);
    if computed != stored {
        return Err(ProtoError::Corrupt(FrameCorruption::BadChecksum {
            stored,
            computed,
        }));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

/// What a client asks the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Create, attach, or WAL-recover the named session editing `cell`.
    Open {
        /// Session name (`[A-Za-z0-9_-]{1,64}` — it names the WAL file).
        session: String,
        /// Composition cell to edit when the session is new.
        cell: String,
    },
    /// Queue one editor command (REPLAY line syntax) on a session.
    Cmd {
        /// Target session.
        session: String,
        /// The command in replay-line form, e.g. `create nand2 I0`.
        line: String,
    },
    /// Flush the session's WAL and evict it from memory.
    Close {
        /// Target session.
        session: String,
    },
    /// Liveness probe.
    Ping,
    /// Gauges: pool-wide (`stats`) or one session's engine counters
    /// (`stats <session>` — cache hit rate and damage-region totals).
    Stats {
        /// `None` for the pool-wide line; `Some` routes to the session's
        /// worker and reads its editor counters.
        session: Option<String>,
    },
    /// Live metrics exposition: a snapshot of the server's metrics
    /// registry in the requested rendering.
    Telemetry {
        /// Which rendering the `ok` detail carries.
        format: TelemetryFormat,
    },
    /// Write the flight recorder to a `flightrec-<ts>.jsonl` file
    /// under the server root; the `ok` detail is the file path.
    Dump,
    /// Drain every session and stop the server.
    Shutdown,
    /// Testing hook: occupy the target session's worker for the given
    /// number of milliseconds, so tests can fill inboxes
    /// deterministically and observe `busy` backpressure.
    #[doc(hidden)]
    Stall {
        /// Session whose worker to stall.
        session: String,
        /// Milliseconds to hold the worker.
        ms: u64,
    },
}

/// How a [`RequestBody::Telemetry`] snapshot should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryFormat {
    /// Prometheus text exposition format (the default).
    #[default]
    Prometheus,
    /// One JSON object (`riot-telemetry/1` schema).
    Json,
}

/// One pipelined request: a client-chosen id plus the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Echoed verbatim in the reply.
    pub id: u64,
    /// What to do.
    pub body: RequestBody,
}

impl RequestBody {
    /// The canonical text form shared by every protocol version.
    fn to_text(&self) -> String {
        match self {
            RequestBody::Open { session, cell } => format!("open {session} {cell}"),
            RequestBody::Cmd { session, line } => format!("cmd {session} {line}"),
            RequestBody::Close { session } => format!("close {session}"),
            RequestBody::Ping => "ping".to_owned(),
            RequestBody::Stats { session: None } => "stats".to_owned(),
            RequestBody::Stats {
                session: Some(session),
            } => format!("stats {session}"),
            RequestBody::Telemetry {
                format: TelemetryFormat::Prometheus,
            } => "telemetry prom".to_owned(),
            RequestBody::Telemetry {
                format: TelemetryFormat::Json,
            } => "telemetry json".to_owned(),
            RequestBody::Dump => "dump".to_owned(),
            RequestBody::Shutdown => "shutdown".to_owned(),
            RequestBody::Stall { session, ms } => format!("stall {session} {ms}"),
        }
    }

    /// Parses the text form (shared by every protocol version).
    /// Convenience over the zero-copy [`RequestBodyRef::parse`].
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn from_text(text: &str) -> Result<RequestBody, String> {
        RequestBodyRef::parse(text).map(RequestBodyRef::to_owned)
    }
}

/// A zero-copy view of a [`RequestBody`]: every field borrows the
/// frame payload it was decoded from. The event loop parses requests
/// in place over a connection's receive buffer and only materializes
/// owned strings ([`RequestBodyRef::to_owned`]) for verbs that cross a
/// thread boundary into the worker pool — `ping`, `stats`, `telemetry`,
/// `dump` and `shutdown` never allocate at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestBodyRef<'a> {
    /// See [`RequestBody::Open`].
    Open {
        /// Session name, borrowed from the payload.
        session: &'a str,
        /// Composition cell, borrowed from the payload.
        cell: &'a str,
    },
    /// See [`RequestBody::Cmd`]. `line` is the raw tail after the
    /// session token — interior whitespace is normalized only when the
    /// command is materialized for dispatch.
    Cmd {
        /// Target session, borrowed from the payload.
        session: &'a str,
        /// The command tail, borrowed from the payload.
        line: &'a str,
    },
    /// See [`RequestBody::Close`].
    Close {
        /// Target session, borrowed from the payload.
        session: &'a str,
    },
    /// See [`RequestBody::Ping`].
    Ping,
    /// See [`RequestBody::Stats`].
    Stats {
        /// `None` for the pool-wide line.
        session: Option<&'a str>,
    },
    /// See [`RequestBody::Telemetry`].
    Telemetry {
        /// Which rendering the reply carries.
        format: TelemetryFormat,
    },
    /// See [`RequestBody::Dump`].
    Dump,
    /// See [`RequestBody::Shutdown`].
    Shutdown,
    /// See [`RequestBody::Stall`].
    Stall {
        /// Session whose worker to stall.
        session: &'a str,
        /// Milliseconds to hold the worker.
        ms: u64,
    },
}

impl<'a> RequestBodyRef<'a> {
    /// Parses the canonical text form without copying any field.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed (identical to
    /// the owned parser's messages).
    pub fn parse(text: &'a str) -> Result<RequestBodyRef<'a>, String> {
        let f: Vec<&'a str> = text.split_whitespace().collect();
        Ok(match f.first().copied() {
            Some("open") if f.len() == 3 => RequestBodyRef::Open {
                session: f[1],
                cell: f[2],
            },
            Some("open") => return Err("`open` wants: open <session> <cell>".into()),
            Some("cmd") if f.len() >= 3 => {
                // The line is the raw tail starting at the third token:
                // borrowed, not joined — normalization happens only if
                // the command is materialized.
                let off = f[2].as_ptr() as usize - text.as_ptr() as usize;
                RequestBodyRef::Cmd {
                    session: f[1],
                    line: text[off..].trim_end(),
                }
            }
            Some("cmd") => return Err("`cmd` wants: cmd <session> <command…>".into()),
            Some("close") if f.len() == 2 => RequestBodyRef::Close { session: f[1] },
            Some("close") => return Err("`close` wants: close <session>".into()),
            Some("ping") if f.len() == 1 => RequestBodyRef::Ping,
            Some("stats") if f.len() == 1 => RequestBodyRef::Stats { session: None },
            Some("stats") if f.len() == 2 => RequestBodyRef::Stats {
                session: Some(f[1]),
            },
            Some("stats") => return Err("`stats` wants: stats [<session>]".into()),
            Some("telemetry") if f.len() == 1 => RequestBodyRef::Telemetry {
                format: TelemetryFormat::Prometheus,
            },
            Some("telemetry") if f.len() == 2 && f[1] == "prom" => RequestBodyRef::Telemetry {
                format: TelemetryFormat::Prometheus,
            },
            Some("telemetry") if f.len() == 2 && f[1] == "json" => RequestBodyRef::Telemetry {
                format: TelemetryFormat::Json,
            },
            Some("telemetry") => return Err("`telemetry` wants: telemetry [prom|json]".into()),
            Some("dump") if f.len() == 1 => RequestBodyRef::Dump,
            Some("dump") => return Err("`dump` takes no arguments".into()),
            Some("shutdown") if f.len() == 1 => RequestBodyRef::Shutdown,
            Some("stall") if f.len() == 3 => RequestBodyRef::Stall {
                session: f[1],
                ms: f[2].parse().map_err(|_| "stall wants integer ms")?,
            },
            Some(other) => return Err(format!("unknown verb `{other}`")),
            None => return Err("empty request".into()),
        })
    }

    /// Materializes owned strings (normalizing a `cmd` line's interior
    /// whitespace exactly like the owned parser always has).
    pub fn to_owned(self) -> RequestBody {
        match self {
            RequestBodyRef::Open { session, cell } => RequestBody::Open {
                session: session.to_owned(),
                cell: cell.to_owned(),
            },
            RequestBodyRef::Cmd { session, line } => RequestBody::Cmd {
                session: session.to_owned(),
                line: line.split_whitespace().collect::<Vec<_>>().join(" "),
            },
            RequestBodyRef::Close { session } => RequestBody::Close {
                session: session.to_owned(),
            },
            RequestBodyRef::Ping => RequestBody::Ping,
            RequestBodyRef::Stats { session } => RequestBody::Stats {
                session: session.map(str::to_owned),
            },
            RequestBodyRef::Telemetry { format } => RequestBody::Telemetry { format },
            RequestBodyRef::Dump => RequestBody::Dump,
            RequestBodyRef::Shutdown => RequestBody::Shutdown,
            RequestBodyRef::Stall { session, ms } => RequestBody::Stall {
                session: session.to_owned(),
                ms,
            },
        }
    }
}

/// One pipelined request decoded in place: the id plus a borrowed body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRef<'a> {
    /// Echoed verbatim in the reply.
    pub id: u64,
    /// What to do, borrowing the frame payload.
    pub body: RequestBodyRef<'a>,
}

impl<'a> RequestRef<'a> {
    /// Parses a v1 frame payload without copying.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn decode(payload: &'a [u8]) -> Result<RequestRef<'a>, String> {
        if payload.len() < 8 {
            return Err(format!(
                "request payload of {} bytes cannot hold an id",
                payload.len()
            ));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("not UTF-8: {e}"))?;
        Ok(RequestRef {
            id,
            body: RequestBodyRef::parse(text)?,
        })
    }

    /// Parses a v2 frame payload without copying: id, flags, optional
    /// trace context, text form.
    ///
    /// # Errors
    ///
    /// As [`Request::decode_v2`].
    pub fn decode_v2(payload: &'a [u8]) -> Result<(RequestRef<'a>, Option<TraceContext>), String> {
        if payload.len() < 9 {
            return Err(format!(
                "v2 request payload of {} bytes cannot hold id + flags",
                payload.len()
            ));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let flags = payload[8];
        if flags & !REQ_FLAG_TRACE != 0 {
            return Err(format!("unknown request flags {flags:#04x}"));
        }
        let mut at = 9usize;
        let trace = if flags & REQ_FLAG_TRACE != 0 {
            if payload.len() < at + 16 {
                return Err("trace flag set but context bytes missing".into());
            }
            let trace_id = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
            let parent_span =
                u64::from_le_bytes(payload[at + 8..at + 16].try_into().expect("8 bytes"));
            at += 16;
            Some(TraceContext {
                trace_id,
                parent_span,
            })
        } else {
            None
        };
        let text = std::str::from_utf8(&payload[at..]).map_err(|e| format!("not UTF-8: {e}"))?;
        Ok((
            RequestRef {
                id,
                body: RequestBodyRef::parse(text)?,
            },
            trace,
        ))
    }

    /// Version-dispatching zero-copy decode: v1 payloads never carry a
    /// context.
    ///
    /// # Errors
    ///
    /// As [`RequestRef::decode`] / [`RequestRef::decode_v2`].
    pub fn decode_versioned(
        payload: &'a [u8],
        version: ProtoVersion,
    ) -> Result<(RequestRef<'a>, Option<TraceContext>), String> {
        match version {
            ProtoVersion::V1 => Ok((RequestRef::decode(payload)?, None)),
            ProtoVersion::V2 => RequestRef::decode_v2(payload),
        }
    }

    /// Materializes an owned [`Request`].
    pub fn to_owned(self) -> Request {
        Request {
            id: self.id,
            body: self.body.to_owned(),
        }
    }
}

impl Request {
    /// Serializes to a v1 frame payload (id + text form).
    pub fn encode(&self) -> Vec<u8> {
        let text = self.body.to_text();
        let mut out = Vec::with_capacity(8 + text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(text.as_bytes());
        out
    }

    /// Parses a v1 frame payload into a request.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        Ok(RequestRef::decode(payload)?.to_owned())
    }

    /// Serializes to a v2 frame payload: id, flags, optional trace
    /// context, text form. `trace: None` (or a
    /// [`TraceContext::NONE`]) emits a zero flags byte and no context
    /// bytes.
    pub fn encode_v2(&self, trace: Option<TraceContext>) -> Vec<u8> {
        let text = self.body.to_text();
        let trace = trace.filter(|c| !c.is_none());
        let mut out = Vec::with_capacity(9 + 16 + text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        match trace {
            Some(ctx) => {
                out.push(REQ_FLAG_TRACE);
                out.extend_from_slice(&ctx.trace_id.to_le_bytes());
                out.extend_from_slice(&ctx.parent_span.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(text.as_bytes());
        out
    }

    /// Parses a v2 frame payload into a request plus its optional
    /// trace context.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed — including
    /// any flag bit this revision does not know (a v2 decoder cannot
    /// skip fields it cannot size).
    pub fn decode_v2(payload: &[u8]) -> Result<(Request, Option<TraceContext>), String> {
        let (req, trace) = RequestRef::decode_v2(payload)?;
        Ok((req.to_owned(), trace))
    }

    /// Version-dispatching decode: v1 payloads never carry a context.
    pub fn decode_versioned(
        payload: &[u8],
        version: ProtoVersion,
    ) -> Result<(Request, Option<TraceContext>), String> {
        match version {
            ProtoVersion::V1 => Ok((Request::decode(payload)?, None)),
            ProtoVersion::V2 => Request::decode_v2(payload),
        }
    }

    /// Version-dispatching encode (v1 silently drops the context).
    pub fn encode_versioned(&self, version: ProtoVersion, trace: Option<TraceContext>) -> Vec<u8> {
        match version {
            ProtoVersion::V1 => self.encode(),
            ProtoVersion::V2 => self.encode_v2(trace),
        }
    }
}

// ----------------------------------------------------------------------
// Replies
// ----------------------------------------------------------------------

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// Success; the detail is verb-specific (outcome text, counts…).
    Ok(String),
    /// Failure; session state is unchanged unless the message says
    /// otherwise (a crashed session says so explicitly).
    Err(String),
    /// Backpressure: the session inbox is full. The command was **not**
    /// queued; retry after in-flight replies drain.
    Busy,
}

/// One reply, tagged with the request id it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The id of the request this answers.
    pub id: u64,
    /// Outcome.
    pub body: ReplyBody,
}

impl Reply {
    /// Serializes to a frame payload (id + text form).
    pub fn encode(&self) -> Vec<u8> {
        let text = match &self.body {
            ReplyBody::Ok(d) if d.is_empty() => "ok".to_owned(),
            ReplyBody::Ok(d) => format!("ok {d}"),
            ReplyBody::Err(m) => format!("err {m}"),
            ReplyBody::Busy => "busy".to_owned(),
        };
        let mut out = Vec::with_capacity(8 + text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(text.as_bytes());
        out
    }

    /// Parses a frame payload into a reply.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn decode(payload: &[u8]) -> Result<Reply, String> {
        if payload.len() < 8 {
            return Err(format!(
                "reply payload of {} bytes cannot hold an id",
                payload.len()
            ));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("not UTF-8: {e}"))?;
        let body = if text == "ok" {
            ReplyBody::Ok(String::new())
        } else if let Some(d) = text.strip_prefix("ok ") {
            ReplyBody::Ok(d.to_owned())
        } else if let Some(m) = text.strip_prefix("err ") {
            ReplyBody::Err(m.to_owned())
        } else if text == "busy" {
            ReplyBody::Busy
        } else {
            return Err(format!("unknown reply form `{text}`"));
        };
        Ok(Reply { id, body })
    }
}

/// Server-side handshake: reads the client magic (either revision),
/// echoes it back, and returns the negotiated version. Old `RIOTSRV1`
/// clients see exactly the pre-v2 byte exchange.
pub fn handshake_server(stream: &mut (impl Read + Write)) -> Result<ProtoVersion, ProtoError> {
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Corrupt(FrameCorruption::BadMagic)
        } else {
            ProtoError::Io(e)
        }
    })?;
    let version = if &magic == SRV_MAGIC {
        ProtoVersion::V1
    } else if &magic == SRV_MAGIC_V2 {
        ProtoVersion::V2
    } else {
        return Err(ProtoError::Corrupt(FrameCorruption::BadMagic));
    };
    stream.write_all(version.magic())?;
    stream.flush()?;
    Ok(version)
}

/// Client-side v1 handshake: sends `RIOTSRV1` and verifies the echo.
pub fn handshake_client(stream: &mut (impl Read + Write)) -> Result<(), ProtoError> {
    stream.write_all(SRV_MAGIC)?;
    stream.flush()?;
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic)?;
    if &magic != SRV_MAGIC {
        return Err(ProtoError::Corrupt(FrameCorruption::BadMagic));
    }
    Ok(())
}

/// Client-side v2 handshake: announces `RIOTSRV2` and accepts either
/// echo, returning the version the server committed to (an up-level
/// server echoes v2; the negotiation degrades cleanly if a future
/// server chooses to pin v1).
pub fn handshake_client_v2(stream: &mut (impl Read + Write)) -> Result<ProtoVersion, ProtoError> {
    stream.write_all(SRV_MAGIC_V2)?;
    stream.flush()?;
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic)?;
    if &magic == SRV_MAGIC_V2 {
        Ok(ProtoVersion::V2)
    } else if &magic == SRV_MAGIC {
        Ok(ProtoVersion::V1)
    } else {
        Err(ProtoError::Corrupt(FrameCorruption::BadMagic))
    }
}

/// Is `name` acceptable as a session name? Session names become WAL
/// file names, so only `[A-Za-z0-9_-]`, 1..=64 characters, is allowed —
/// no path separators, no dots, no traversal.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(b"hello riot");
        let (payload, consumed) = decode_frame_eof(&frame).unwrap();
        assert_eq!(payload, b"hello riot");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let frame = encode_frame(b"");
        let (payload, consumed) = decode_frame_eof(&frame).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 8);
    }

    #[test]
    fn torn_header_and_payload_are_clean_errors() {
        let frame = encode_frame(b"payload");
        assert_eq!(
            decode_frame_eof(&frame[..5]),
            Err(FrameCorruption::TornHeader)
        );
        assert_eq!(
            decode_frame_eof(&frame[..frame.len() - 2]),
            Err(FrameCorruption::TornPayload {
                expected: 7,
                available: 5
            })
        );
    }

    #[test]
    fn bit_flip_is_a_checksum_error() {
        let mut frame = encode_frame(b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(
            decode_frame_eof(&frame),
            Err(FrameCorruption::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversize_length_is_rejected_without_waiting() {
        let mut frame = encode_frame(b"x");
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            scan_frame(&frame),
            FrameScan::Corrupt(FrameCorruption::TooLarge(_))
        ));
    }

    #[test]
    fn request_round_trip_all_verbs() {
        let bodies = [
            RequestBody::Open {
                session: "s1".into(),
                cell: "TOP".into(),
            },
            RequestBody::Cmd {
                session: "s1".into(),
                line: "create nand2 I0".into(),
            },
            RequestBody::Cmd {
                session: "s1".into(),
                line: "translate I0 -100 2500".into(),
            },
            RequestBody::Close {
                session: "s1".into(),
            },
            RequestBody::Ping,
            RequestBody::Stats { session: None },
            RequestBody::Stats {
                session: Some("s1".into()),
            },
            RequestBody::Shutdown,
            RequestBody::Stall {
                session: "s1".into(),
                ms: 250,
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let req = Request {
                id: 0xDEAD_0000 + i as u64,
                body,
            };
            let again = Request::decode(&req.encode()).unwrap();
            assert_eq!(req, again);
        }
    }

    #[test]
    fn reply_round_trip_all_forms() {
        for body in [
            ReplyBody::Ok(String::new()),
            ReplyBody::Ok("opened created".into()),
            ReplyBody::Err("no such session".into()),
            ReplyBody::Busy,
        ] {
            let rep = Reply { id: 77, body };
            assert_eq!(Reply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn request_decode_rejects_garbage() {
        assert!(Request::decode(b"short").is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"frobnicate x");
        assert!(Request::decode(&p).is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(&[0xFF, 0xFE, 0x80]);
        assert!(Request::decode(&p).is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"open only_two");
        assert!(Request::decode(&p).is_err());
    }

    #[test]
    fn v2_round_trip_with_and_without_context() {
        let req = Request {
            id: 99,
            body: RequestBody::Cmd {
                session: "s1".into(),
                line: "create or2 G0".into(),
            },
        };
        let ctx = TraceContext::new(0xABCD_EF01_2345_6789, 42);
        let (again, trace) = Request::decode_v2(&req.encode_v2(Some(ctx))).unwrap();
        assert_eq!(again, req);
        assert_eq!(trace, Some(ctx));
        let (again, trace) = Request::decode_v2(&req.encode_v2(None)).unwrap();
        assert_eq!(again, req);
        assert_eq!(trace, None);
        // A NONE context is normalized away rather than wasting bytes.
        let bytes = req.encode_v2(Some(TraceContext::NONE));
        assert_eq!(bytes[8], 0);
        assert_eq!(Request::decode_v2(&bytes).unwrap().1, None);
    }

    #[test]
    fn v2_rejects_unknown_flags_and_torn_context() {
        let req = Request {
            id: 7,
            body: RequestBody::Ping,
        };
        let mut bytes = req.encode_v2(None);
        bytes[8] = 0x80;
        assert!(Request::decode_v2(&bytes).is_err());
        let mut bytes = req.encode_v2(Some(TraceContext::new(1, 2)));
        bytes.truncate(12); // flags promise 16 context bytes
        assert!(Request::decode_v2(&bytes).is_err());
        assert!(Request::decode_v2(b"short").is_err());
    }

    #[test]
    fn telemetry_and_dump_verbs_round_trip() {
        for body in [
            RequestBody::Telemetry {
                format: TelemetryFormat::Prometheus,
            },
            RequestBody::Telemetry {
                format: TelemetryFormat::Json,
            },
            RequestBody::Dump,
        ] {
            let req = Request { id: 5, body };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
            let (again, trace) = Request::decode_v2(&req.encode_v2(None)).unwrap();
            assert_eq!(again, req);
            assert_eq!(trace, None);
        }
        // Bare `telemetry` defaults to Prometheus.
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"telemetry");
        assert_eq!(
            Request::decode(&p).unwrap().body,
            RequestBody::Telemetry {
                format: TelemetryFormat::Prometheus
            }
        );
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"telemetry xml");
        assert!(Request::decode(&p).is_err());
    }

    #[test]
    fn handshake_negotiates_both_versions() {
        use std::collections::VecDeque;
        // A loopback "socket": reads drain the front, writes append.
        struct Pipe(VecDeque<u8>);
        impl Read for Pipe {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(self.0.len());
                for b in buf.iter_mut().take(n) {
                    *b = self.0.pop_front().expect("len checked");
                }
                Ok(n)
            }
        }
        impl Write for Pipe {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.extend(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut p = Pipe(VecDeque::from(SRV_MAGIC.to_vec()));
        assert_eq!(handshake_server(&mut p).unwrap(), ProtoVersion::V1);
        assert_eq!(p.0.make_contiguous(), SRV_MAGIC);
        let mut p = Pipe(VecDeque::from(SRV_MAGIC_V2.to_vec()));
        assert_eq!(handshake_server(&mut p).unwrap(), ProtoVersion::V2);
        assert_eq!(p.0.make_contiguous(), SRV_MAGIC_V2);
        let mut p = Pipe(VecDeque::from(b"RIOTSRV9".to_vec()));
        assert!(handshake_server(&mut p).is_err());
    }

    #[test]
    fn session_names_are_fenced() {
        assert!(valid_session_name("alice-42_X"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("../../etc/passwd"));
        assert!(!valid_session_name("a.wal"));
        assert!(!valid_session_name(&"x".repeat(65)));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"one");
        assert_eq!(read_frame(&mut r).unwrap(), b"two");
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn scratch_buffer_is_reused_across_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"a long first payload").unwrap();
        write_frame(&mut buf, b"short").unwrap();
        write_frame(&mut buf, b"mid-sized one").unwrap();
        let reuse = riot_trace::registry().counter("serve.frame.buf_reuse");
        let before = reuse.get();
        let mut r = &buf[..];
        let mut scratch = Vec::new();
        read_frame_into(&mut r, &mut scratch).unwrap();
        assert_eq!(scratch, b"a long first payload");
        let cap = scratch.capacity();
        // The next two payloads fit in the first one's allocation.
        read_frame_into(&mut r, &mut scratch).unwrap();
        assert_eq!(scratch, b"short");
        read_frame_into(&mut r, &mut scratch).unwrap();
        assert_eq!(scratch, b"mid-sized one");
        assert_eq!(scratch.capacity(), cap, "no reallocation");
        assert_eq!(reuse.get() - before, 2, "two reused decodes counted");
        assert!(matches!(
            read_frame_into(&mut r, &mut scratch),
            Err(ProtoError::Closed)
        ));
    }
}
