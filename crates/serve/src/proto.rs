//! The `RIOTSRV1` wire protocol: length-prefixed, checksummed binary
//! frames carrying pipelined requests.
//!
//! # Connection handshake
//!
//! The client opens a socket and writes the 8-byte magic
//! [`SRV_MAGIC`]; the server verifies it and echoes the same magic
//! back. Everything after the handshake is frames in both directions.
//!
//! # Frame format
//!
//! Deliberately the same record shape as the crash-safe journal
//! ([`riot_core::WAL_MAGIC`] files): a `u32` little-endian payload
//! length, a `u32` little-endian CRC-32 (IEEE, zlib-compatible —
//! [`riot_core::crc32`]) of the payload, then the payload bytes. A
//! frame whose length exceeds [`MAX_FRAME_PAYLOAD`] or whose checksum
//! disagrees is a protocol error; the server replies with a
//! description and closes the connection rather than guessing at
//! resynchronization.
//!
//! # Payloads
//!
//! A request payload is an 8-byte little-endian **request id** (chosen
//! by the client, echoed verbatim in the reply — this is what makes
//! pipelining safe) followed by a UTF-8 command text:
//!
//! ```text
//! open <session> <cell>      create, attach or recover a session
//! cmd <session> <line…>      queue one editor command (replay syntax)
//! close <session>            flush the session's WAL and evict it
//! ping                       liveness probe
//! stats                      live session / queue-depth gauges
//! shutdown                   ask the server to drain and exit
//! ```
//!
//! The `cmd` line reuses the REPLAY/WAL command codec verbatim
//! ([`riot_core::parse_command_line`]), so anything a journal can hold
//! can travel the wire, and a session's WAL is byte-compatible with
//! what the offline tools read.
//!
//! A reply payload is the echoed request id followed by one of:
//!
//! ```text
//! ok <detail…>               request succeeded
//! err <message…>             request failed (session state unchanged
//!                            unless the message says otherwise)
//! busy                       backpressure: the session inbox is full,
//!                            retry after draining in-flight replies
//! ```

use riot_core::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every connection, in both directions.
pub const SRV_MAGIC: &[u8; 8] = b"RIOTSRV1";

/// Hard cap on a frame payload. Command lines are tiny; anything
/// approaching this is a corrupt length field or an abusive client.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Why a frame (or handshake) could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameCorruption {
    /// The connection did not open with [`SRV_MAGIC`].
    BadMagic,
    /// Fewer than 8 header bytes were available — a torn header.
    TornHeader,
    /// The header promises more payload than is available.
    TornPayload {
        /// Bytes the header claims.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge(usize),
    /// The stored checksum disagrees with the payload bytes.
    BadChecksum {
        /// Checksum in the frame header.
        stored: u32,
        /// Checksum of the received payload.
        computed: u32,
    },
}

impl fmt::Display for FrameCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameCorruption::BadMagic => f.write_str("missing RIOTSRV1 magic"),
            FrameCorruption::TornHeader => f.write_str("torn frame header"),
            FrameCorruption::TornPayload {
                expected,
                available,
            } => write!(
                f,
                "torn frame payload: {expected} bytes promised, {available} present"
            ),
            FrameCorruption::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            FrameCorruption::BadChecksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

/// A protocol-layer error: I/O or corruption.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (includes timeouts and EOF).
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The bytes on the wire are not a valid frame.
    Corrupt(FrameCorruption),
    /// The frame decoded but its payload is not a valid message.
    BadPayload(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Closed => f.write_str("connection closed"),
            ProtoError::Corrupt(c) => write!(f, "corrupt frame: {c}"),
            ProtoError::BadPayload(m) => write!(f, "bad payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Encodes one frame: `[len u32 LE][crc32 u32 LE][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of scanning a byte buffer for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameScan {
    /// A complete, intact frame: its payload and the total bytes
    /// consumed (header + payload).
    Complete {
        /// The verified payload.
        payload: Vec<u8>,
        /// Header + payload length in bytes.
        consumed: usize,
    },
    /// More bytes are needed; nothing was consumed.
    Incomplete,
    /// The buffer head is not a valid frame.
    Corrupt(FrameCorruption),
}

/// Scans `buf` for one frame at offset 0 without consuming input.
///
/// Unlike the streaming [`read_frame`], this never blocks: partial
/// frames report [`FrameScan::Incomplete`]. A length field beyond
/// [`MAX_FRAME_PAYLOAD`] and a checksum mismatch are immediately
/// [`FrameScan::Corrupt`] — a decoder must not wait for a 4 GiB
/// payload that a flipped length bit promised.
pub fn scan_frame(buf: &[u8]) -> FrameScan {
    if buf.len() < 8 {
        return FrameScan::Incomplete;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return FrameScan::Corrupt(FrameCorruption::TooLarge(len));
    }
    let stored = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if buf.len() - 8 < len {
        return FrameScan::Incomplete;
    }
    let payload = &buf[8..8 + len];
    let computed = crc32(payload);
    if computed != stored {
        return FrameScan::Corrupt(FrameCorruption::BadChecksum { stored, computed });
    }
    FrameScan::Complete {
        payload: payload.to_vec(),
        consumed: 8 + len,
    }
}

/// Scans a complete byte stream (no more input coming) for one frame —
/// the decoder used by the proptests and the golden fixture: torn
/// tails decode to a clean [`FrameCorruption`], never a panic.
pub fn decode_frame_eof(buf: &[u8]) -> Result<(Vec<u8>, usize), FrameCorruption> {
    match scan_frame(buf) {
        FrameScan::Complete { payload, consumed } => Ok((payload, consumed)),
        FrameScan::Corrupt(c) => Err(c),
        FrameScan::Incomplete => {
            if buf.len() < 8 {
                Err(FrameCorruption::TornHeader)
            } else {
                let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
                Err(FrameCorruption::TornPayload {
                    expected: len,
                    available: buf.len() - 8,
                })
            }
        }
    }
}

/// Writes one frame to `w` (no flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))
}

/// Reads one frame from `r`, blocking. Returns [`ProtoError::Closed`]
/// when the stream ends cleanly *between* frames; an EOF mid-frame is
/// a corrupt (torn) frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < 8 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    ProtoError::Closed
                } else {
                    ProtoError::Corrupt(FrameCorruption::TornHeader)
                });
            }
            Ok(n) => got += n,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Corrupt(FrameCorruption::TooLarge(len)));
    }
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ProtoError::Corrupt(FrameCorruption::TornPayload {
                    expected: len,
                    available: got,
                }));
            }
            Ok(n) => got += n,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let computed = crc32(&payload);
    if computed != stored {
        return Err(ProtoError::Corrupt(FrameCorruption::BadChecksum {
            stored,
            computed,
        }));
    }
    Ok(payload)
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

/// What a client asks the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Create, attach, or WAL-recover the named session editing `cell`.
    Open {
        /// Session name (`[A-Za-z0-9_-]{1,64}` — it names the WAL file).
        session: String,
        /// Composition cell to edit when the session is new.
        cell: String,
    },
    /// Queue one editor command (REPLAY line syntax) on a session.
    Cmd {
        /// Target session.
        session: String,
        /// The command in replay-line form, e.g. `create nand2 I0`.
        line: String,
    },
    /// Flush the session's WAL and evict it from memory.
    Close {
        /// Target session.
        session: String,
    },
    /// Liveness probe.
    Ping,
    /// Gauges: pool-wide (`stats`) or one session's engine counters
    /// (`stats <session>` — cache hit rate and damage-region totals).
    Stats {
        /// `None` for the pool-wide line; `Some` routes to the session's
        /// worker and reads its editor counters.
        session: Option<String>,
    },
    /// Drain every session and stop the server.
    Shutdown,
    /// Testing hook: occupy the target session's worker for the given
    /// number of milliseconds, so tests can fill inboxes
    /// deterministically and observe `busy` backpressure.
    #[doc(hidden)]
    Stall {
        /// Session whose worker to stall.
        session: String,
        /// Milliseconds to hold the worker.
        ms: u64,
    },
}

/// One pipelined request: a client-chosen id plus the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Echoed verbatim in the reply.
    pub id: u64,
    /// What to do.
    pub body: RequestBody,
}

impl Request {
    /// Serializes to a frame payload (id + text form).
    pub fn encode(&self) -> Vec<u8> {
        let text = match &self.body {
            RequestBody::Open { session, cell } => format!("open {session} {cell}"),
            RequestBody::Cmd { session, line } => format!("cmd {session} {line}"),
            RequestBody::Close { session } => format!("close {session}"),
            RequestBody::Ping => "ping".to_owned(),
            RequestBody::Stats { session: None } => "stats".to_owned(),
            RequestBody::Stats {
                session: Some(session),
            } => format!("stats {session}"),
            RequestBody::Shutdown => "shutdown".to_owned(),
            RequestBody::Stall { session, ms } => format!("stall {session} {ms}"),
        };
        let mut out = Vec::with_capacity(8 + text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(text.as_bytes());
        out
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        if payload.len() < 8 {
            return Err(format!(
                "request payload of {} bytes cannot hold an id",
                payload.len()
            ));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("not UTF-8: {e}"))?;
        let f: Vec<&str> = text.split_whitespace().collect();
        let body = match f.first().copied() {
            Some("open") if f.len() == 3 => RequestBody::Open {
                session: f[1].to_owned(),
                cell: f[2].to_owned(),
            },
            Some("open") => return Err("`open` wants: open <session> <cell>".into()),
            Some("cmd") if f.len() >= 3 => RequestBody::Cmd {
                session: f[1].to_owned(),
                line: f[2..].join(" "),
            },
            Some("cmd") => return Err("`cmd` wants: cmd <session> <command…>".into()),
            Some("close") if f.len() == 2 => RequestBody::Close {
                session: f[1].to_owned(),
            },
            Some("close") => return Err("`close` wants: close <session>".into()),
            Some("ping") if f.len() == 1 => RequestBody::Ping,
            Some("stats") if f.len() == 1 => RequestBody::Stats { session: None },
            Some("stats") if f.len() == 2 => RequestBody::Stats {
                session: Some(f[1].to_owned()),
            },
            Some("stats") => return Err("`stats` wants: stats [<session>]".into()),
            Some("shutdown") if f.len() == 1 => RequestBody::Shutdown,
            Some("stall") if f.len() == 3 => RequestBody::Stall {
                session: f[1].to_owned(),
                ms: f[2].parse().map_err(|_| "stall wants integer ms")?,
            },
            Some(other) => return Err(format!("unknown verb `{other}`")),
            None => return Err("empty request".into()),
        };
        Ok(Request { id, body })
    }
}

// ----------------------------------------------------------------------
// Replies
// ----------------------------------------------------------------------

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// Success; the detail is verb-specific (outcome text, counts…).
    Ok(String),
    /// Failure; session state is unchanged unless the message says
    /// otherwise (a crashed session says so explicitly).
    Err(String),
    /// Backpressure: the session inbox is full. The command was **not**
    /// queued; retry after in-flight replies drain.
    Busy,
}

/// One reply, tagged with the request id it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The id of the request this answers.
    pub id: u64,
    /// Outcome.
    pub body: ReplyBody,
}

impl Reply {
    /// Serializes to a frame payload (id + text form).
    pub fn encode(&self) -> Vec<u8> {
        let text = match &self.body {
            ReplyBody::Ok(d) if d.is_empty() => "ok".to_owned(),
            ReplyBody::Ok(d) => format!("ok {d}"),
            ReplyBody::Err(m) => format!("err {m}"),
            ReplyBody::Busy => "busy".to_owned(),
        };
        let mut out = Vec::with_capacity(8 + text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(text.as_bytes());
        out
    }

    /// Parses a frame payload into a reply.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn decode(payload: &[u8]) -> Result<Reply, String> {
        if payload.len() < 8 {
            return Err(format!(
                "reply payload of {} bytes cannot hold an id",
                payload.len()
            ));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("not UTF-8: {e}"))?;
        let body = if text == "ok" {
            ReplyBody::Ok(String::new())
        } else if let Some(d) = text.strip_prefix("ok ") {
            ReplyBody::Ok(d.to_owned())
        } else if let Some(m) = text.strip_prefix("err ") {
            ReplyBody::Err(m.to_owned())
        } else if text == "busy" {
            ReplyBody::Busy
        } else {
            return Err(format!("unknown reply form `{text}`"));
        };
        Ok(Reply { id, body })
    }
}

/// Server-side handshake: reads and verifies the client magic, then
/// echoes it.
pub fn handshake_server(stream: &mut (impl Read + Write)) -> Result<(), ProtoError> {
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Corrupt(FrameCorruption::BadMagic)
        } else {
            ProtoError::Io(e)
        }
    })?;
    if &magic != SRV_MAGIC {
        return Err(ProtoError::Corrupt(FrameCorruption::BadMagic));
    }
    stream.write_all(SRV_MAGIC)?;
    stream.flush()?;
    Ok(())
}

/// Client-side handshake: sends the magic and verifies the echo.
pub fn handshake_client(stream: &mut (impl Read + Write)) -> Result<(), ProtoError> {
    stream.write_all(SRV_MAGIC)?;
    stream.flush()?;
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic)?;
    if &magic != SRV_MAGIC {
        return Err(ProtoError::Corrupt(FrameCorruption::BadMagic));
    }
    Ok(())
}

/// Is `name` acceptable as a session name? Session names become WAL
/// file names, so only `[A-Za-z0-9_-]`, 1..=64 characters, is allowed —
/// no path separators, no dots, no traversal.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(b"hello riot");
        let (payload, consumed) = decode_frame_eof(&frame).unwrap();
        assert_eq!(payload, b"hello riot");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let frame = encode_frame(b"");
        let (payload, consumed) = decode_frame_eof(&frame).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 8);
    }

    #[test]
    fn torn_header_and_payload_are_clean_errors() {
        let frame = encode_frame(b"payload");
        assert_eq!(
            decode_frame_eof(&frame[..5]),
            Err(FrameCorruption::TornHeader)
        );
        assert_eq!(
            decode_frame_eof(&frame[..frame.len() - 2]),
            Err(FrameCorruption::TornPayload {
                expected: 7,
                available: 5
            })
        );
    }

    #[test]
    fn bit_flip_is_a_checksum_error() {
        let mut frame = encode_frame(b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(
            decode_frame_eof(&frame),
            Err(FrameCorruption::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversize_length_is_rejected_without_waiting() {
        let mut frame = encode_frame(b"x");
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            scan_frame(&frame),
            FrameScan::Corrupt(FrameCorruption::TooLarge(_))
        ));
    }

    #[test]
    fn request_round_trip_all_verbs() {
        let bodies = [
            RequestBody::Open {
                session: "s1".into(),
                cell: "TOP".into(),
            },
            RequestBody::Cmd {
                session: "s1".into(),
                line: "create nand2 I0".into(),
            },
            RequestBody::Cmd {
                session: "s1".into(),
                line: "translate I0 -100 2500".into(),
            },
            RequestBody::Close {
                session: "s1".into(),
            },
            RequestBody::Ping,
            RequestBody::Stats { session: None },
            RequestBody::Stats {
                session: Some("s1".into()),
            },
            RequestBody::Shutdown,
            RequestBody::Stall {
                session: "s1".into(),
                ms: 250,
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let req = Request {
                id: 0xDEAD_0000 + i as u64,
                body,
            };
            let again = Request::decode(&req.encode()).unwrap();
            assert_eq!(req, again);
        }
    }

    #[test]
    fn reply_round_trip_all_forms() {
        for body in [
            ReplyBody::Ok(String::new()),
            ReplyBody::Ok("opened created".into()),
            ReplyBody::Err("no such session".into()),
            ReplyBody::Busy,
        ] {
            let rep = Reply { id: 77, body };
            assert_eq!(Reply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn request_decode_rejects_garbage() {
        assert!(Request::decode(b"short").is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"frobnicate x");
        assert!(Request::decode(&p).is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(&[0xFF, 0xFE, 0x80]);
        assert!(Request::decode(&p).is_err());
        let mut p = 1u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"open only_two");
        assert!(Request::decode(&p).is_err());
    }

    #[test]
    fn session_names_are_fenced() {
        assert!(valid_session_name("alice-42_X"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("../../etc/passwd"));
        assert!(!valid_session_name("a.wal"));
        assert!(!valid_session_name(&"x".repeat(65)));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"one");
        assert_eq!(read_frame(&mut r).unwrap(), b"two");
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }
}
