//! Hosted sessions: an owned [`Library`] plus a suspended editor
//! [`Checkpoint`], backed by a per-session `RIOTWAL1` write-ahead file.
//!
//! # Durability contract
//!
//! Every command the editor *accepts* is appended to the session's WAL
//! (the exact record the editor journaled — CREATE's deduplicated
//! instance name and all) before the `ok` reply is released, so an
//! acknowledged command is always recoverable. The WAL lives at
//! `<root>/<session>.wal` — the root directory is configuration, never
//! a hardcoded path.
//!
//! # Recovery
//!
//! Reopening a session whose WAL exists runs
//! [`riot_core::Journal::recover_wal`]: the longest intact prefix is
//! replayed through a fresh [`Editor`] (one command at a time, through
//! the same transactional `execute` everything else uses), the file is
//! truncated back to the recovered prefix, and the session resumes
//! from there. A torn tail — say, from a fault injected at
//! [`riot_core::FAULT_SERVE_JOURNAL_APPEND`] mid-append — therefore
//! costs at most the unacknowledged suffix, never consistency.

use riot_core::{
    command_to_line, crc32, Checkpoint, Command, Editor, Journal, Library, RiotError, WAL_MAGIC,
};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where a session's WAL file lives.
pub fn wal_path(root: &Path, session: &str) -> PathBuf {
    root.join(format!("{session}.wal"))
}

/// What happened when a session was brought into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenKind {
    /// Fresh session: no WAL existed.
    Created,
    /// WAL existed and was replayed.
    Recovered {
        /// Commands recovered and replayed (including the `edit` head).
        records: usize,
        /// `true` when the WAL had a corrupt tail that was truncated.
        truncated: bool,
    },
}

/// A hosted session at rest: owned library, suspended editor state,
/// and the open WAL append handle.
#[derive(Debug)]
pub struct SessionEntry {
    /// Session name (also the WAL file stem).
    pub name: String,
    /// The session's own cell menu.
    pub lib: Library,
    /// Suspended editor state; `None` only transiently while a worker
    /// has the editor resumed.
    pub cp: Option<Checkpoint>,
    /// Number of journal records already durable in the WAL.
    pub durable_records: usize,
    /// Last time a worker touched this session (drives idle eviction).
    pub last_touch: Instant,
    wal: File,
    path: PathBuf,
}

impl SessionEntry {
    /// Creates a brand-new session editing `cell`, writing the WAL
    /// magic and the `edit` head record.
    ///
    /// # Errors
    ///
    /// Editor errors (e.g. `cell` names a leaf) as a reply-ready
    /// string, or WAL I/O failures.
    pub fn create(
        root: &Path,
        name: &str,
        cell: &str,
        mut lib: Library,
    ) -> Result<SessionEntry, String> {
        let path = wal_path(root, name);
        let cp = {
            let ed = Editor::open(&mut lib, cell).map_err(|e| format!("open failed: {e}"))?;
            ed.suspend()
        };
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| format!("cannot create WAL {}: {e}", path.display()))?;
        wal.write_all(WAL_MAGIC)
            .and_then(|()| {
                wal.write_all(&record_bytes(&command_to_line(&Command::Edit {
                    cell: cell.to_owned(),
                })))
            })
            .and_then(|()| wal.flush())
            .map_err(|e| format!("cannot write WAL head: {e}"))?;
        riot_trace::registry()
            .counter("serve.sessions.created")
            .inc();
        Ok(SessionEntry {
            name: name.to_owned(),
            lib,
            cp: Some(cp),
            durable_records: 1,
            last_touch: Instant::now(),
            wal,
            path,
        })
    }

    /// Recovers a session from its WAL: reads the file, keeps the
    /// longest intact prefix, truncates the file back to it, and
    /// replays the prefix through a fresh editor.
    ///
    /// # Errors
    ///
    /// A reply-ready description when the WAL is unreadable, empty of
    /// even a head record, or the replay fails structurally.
    pub fn recover(
        root: &Path,
        name: &str,
        lib: Library,
    ) -> Result<(SessionEntry, OpenKind), String> {
        let path = wal_path(root, name);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read WAL {}: {e}", path.display()))?;
        let rec = Journal::recover_wal(&bytes);
        let truncated = !rec.is_clean();
        if truncated {
            riot_trace::registry()
                .counter("serve.recovery.truncated")
                .inc();
        }
        riot_trace::registry()
            .counter("serve.recovery.sessions")
            .inc();
        let cmds = rec.journal.commands();
        let Some(Command::Edit { cell }) = cmds.first() else {
            return Err(format!(
                "WAL {} has no intact `edit` head (recovered {} records{})",
                path.display(),
                cmds.len(),
                rec.corruption
                    .as_ref()
                    .map(|c| format!("; {c}"))
                    .unwrap_or_default(),
            ));
        };
        let cell = cell.clone();
        let mut lib = lib;
        // Replay: every record past the head goes through the one
        // transactional entry point. A record that fails to replay
        // (leaf cells changed shape since the WAL was written, say)
        // truncates the durable state at the last good record — the
        // same discipline recover_wal applies to corrupt bytes.
        let mut replayed = 1usize;
        let cp = {
            let mut ed =
                Editor::open(&mut lib, &cell).map_err(|e| format!("recovered head: {e}"))?;
            for cmd in &cmds[1..] {
                match ed.execute(cmd.clone()) {
                    Ok(_) => replayed += 1,
                    Err(e) => {
                        riot_trace::registry()
                            .counter("serve.recovery.replay_stopped")
                            .inc();
                        let _ = e;
                        break;
                    }
                }
            }
            ed.suspend()
        };
        // Truncate the file to exactly the replayed prefix.
        let mut prefix = Journal::new();
        for cmd in &cmds[..replayed] {
            prefix.record(cmd.clone());
        }
        let wal_bytes = prefix.to_wal();
        std::fs::write(&path, &wal_bytes)
            .map_err(|e| format!("cannot rewrite WAL {}: {e}", path.display()))?;
        let wal = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot reopen WAL {}: {e}", path.display()))?;
        Ok((
            SessionEntry {
                name: name.to_owned(),
                lib,
                cp: Some(cp),
                durable_records: replayed,
                last_touch: Instant::now(),
                wal,
                path,
            },
            OpenKind::Recovered {
                records: replayed,
                truncated,
            },
        ))
    }

    /// Opens a session: recover when its WAL exists, create otherwise.
    ///
    /// # Errors
    ///
    /// See [`SessionEntry::create`] / [`SessionEntry::recover`].
    pub fn open(
        root: &Path,
        name: &str,
        cell: &str,
        lib: Library,
    ) -> Result<(SessionEntry, OpenKind), String> {
        if wal_path(root, name).exists() {
            SessionEntry::recover(root, name, lib)
        } else {
            SessionEntry::create(root, name, cell, lib).map(|e| (e, OpenKind::Created))
        }
    }

    /// Appends every journal record the suspended checkpoint holds
    /// beyond what is already durable, then flushes. Returns the number
    /// of records appended.
    ///
    /// # Errors
    ///
    /// WAL I/O failures (the in-memory state is still intact).
    pub fn sync_journal(&mut self) -> io::Result<usize> {
        let cp = self
            .cp
            .as_ref()
            .expect("sync_journal requires a suspended session");
        let cmds = cp.journal().commands();
        let new = &cmds[self.durable_records.min(cmds.len())..];
        if new.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::with_capacity(new.len() * 24);
        for cmd in new {
            buf.extend_from_slice(&record_bytes(&command_to_line(cmd)));
        }
        let flush_start = Instant::now();
        self.wal.write_all(&buf)?;
        self.wal.flush()?;
        let reg = riot_trace::registry();
        reg.histogram("serve.wal.fsync_ns")
            .record(flush_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        reg.counter("serve.wal.bytes").add(buf.len() as u64);
        reg.counter("serve.wal.records").add(new.len() as u64);
        self.durable_records = cmds.len();
        Ok(new.len())
    }

    /// Simulates a crash mid-append: writes a deliberately **torn**
    /// record (full header, half the payload) for `line` and syncs it
    /// to disk. The caller drops the session afterwards; recovery on
    /// reopen truncates this record away.
    pub fn append_torn_record(&mut self, line: &str) {
        let payload = line.as_bytes();
        let mut buf = Vec::with_capacity(8 + payload.len() / 2);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(&payload[..payload.len() / 2]);
        let _ = self.wal.write_all(&buf);
        let _ = self.wal.flush();
        let _ = self.wal.sync_all();
    }

    /// Forces file durability (used on close/evict).
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.wal.flush()?;
        self.wal.sync_all()
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One WAL record for `line`: `u32` LE length, `u32` LE CRC-32,
/// payload — identical to [`Journal::to_wal`]'s per-record form.
fn record_bytes(line: &str) -> Vec<u8> {
    let payload = line.as_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Executes one wire command line against a resumed editor, mapping
/// the outcome to a reply detail string.
///
/// # Errors
///
/// The editor's error, reply-ready.
pub fn execute_line(ed: &mut Editor<'_>, line: &str) -> Result<String, RiotError> {
    let cmd = riot_core::parse_command_line(line, 0)?;
    let out = ed.execute(cmd)?;
    Ok(outcome_text(&out))
}

/// A compact, stable text form of an [`riot_core::Outcome`].
pub fn outcome_text(out: &riot_core::Outcome) -> String {
    use riot_core::Outcome;
    match out {
        Outcome::None => "done".to_owned(),
        Outcome::Instance(id) => format!("instance {}", id.index()),
        Outcome::Cell(id) => format!("cell {}", id.index()),
        Outcome::CellInstance(c, i) => format!("cell {} instance {}", c.index(), i.index()),
        Outcome::Count(n) => format!("count {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::standard_library;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("riot-serve-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_then_recover_round_trips_state() {
        let root = tmp_root("roundtrip");
        let (mut entry, kind) = SessionEntry::open(&root, "s1", "TOP", standard_library()).unwrap();
        assert_eq!(kind, OpenKind::Created);
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "create nand2 B").unwrap();
            execute_line(&mut ed, "translate B 5000 0").unwrap();
            entry.cp = Some(ed.suspend());
        }
        assert_eq!(entry.sync_journal().unwrap(), 3);
        assert_eq!(entry.durable_records, 4);
        drop(entry);

        let (mut entry2, kind2) =
            SessionEntry::open(&root, "s1", "TOP", standard_library()).unwrap();
        assert_eq!(
            kind2,
            OpenKind::Recovered {
                records: 4,
                truncated: false
            }
        );
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 2);
        assert_eq!(ed.journal().commands().len(), 4);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_append_recovers_to_the_acknowledged_prefix() {
        let root = tmp_root("torn");
        let (mut entry, _) = SessionEntry::open(&root, "s2", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        // Crash mid-append of a command that was never acknowledged.
        entry.append_torn_record("create nand2 B");
        drop(entry);

        let (mut entry2, kind) =
            SessionEntry::open(&root, "s2", "TOP", standard_library()).unwrap();
        assert_eq!(
            kind,
            OpenKind::Recovered {
                records: 2,
                truncated: true
            }
        );
        let wal_file = entry2.path().to_path_buf();
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 1, "only the acknowledged command");
        // And the rewritten file is now clean.
        let bytes = std::fs::read(&wal_file).unwrap();
        assert!(Journal::recover_wal(&bytes).is_clean());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn undo_redo_survive_the_wal() {
        let root = tmp_root("undo");
        let (mut entry, _) = SessionEntry::open(&root, "s3", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "undo").unwrap();
            execute_line(&mut ed, "redo").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        drop(entry);
        let (mut entry2, kind) =
            SessionEntry::open(&root, "s3", "TOP", standard_library()).unwrap();
        assert!(matches!(kind, OpenKind::Recovered { records: 4, .. }));
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 1);
        assert_eq!(ed.undo_depth(), 1);
        let _ = std::fs::remove_dir_all(root);
    }
}
