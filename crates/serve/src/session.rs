//! Hosted sessions: an owned [`Library`] plus a suspended editor
//! [`Checkpoint`], backed by a per-session `RIOTWAL1` write-ahead file
//! and an optional `RIOTSNAP1` snapshot.
//!
//! # Durability contract
//!
//! Every command the editor *accepts* is appended to the session's WAL
//! (the exact record the editor journaled — CREATE's deduplicated
//! instance name and all) before the `ok` reply is released, so an
//! acknowledged command is always recoverable. The WAL lives at
//! `<root>/<session>.wal` — the root directory is configuration, never
//! a hardcoded path.
//!
//! Appends move through two watermarks: [`SessionEntry::stage_journal`]
//! encodes fresh journal records into an in-memory staging buffer
//! (`staged_records`), and [`SessionEntry::flush_staged`] writes that
//! buffer and **fsyncs** (`durable_records`). The group-commit queue in
//! [`crate::manager`] stages many runs — across sessions — and pays one
//! fsync per dirty WAL per flush window; the per-run path
//! ([`SessionEntry::sync_journal`]) simply does both steps at once.
//! Every fsync the server issues, including close and idle-eviction
//! flushes, goes through one instrumented helper so the
//! `serve.wal.fsync_ns` histogram and `serve.wal.fsyncs` counter are
//! the whole story.
//!
//! # Recovery
//!
//! Reopening a session whose WAL exists runs
//! [`riot_core::Journal::recover_wal`]: the longest intact prefix is
//! kept, and a torn tail — say, from a fault injected at
//! [`riot_core::FAULT_SERVE_JOURNAL_APPEND`] mid-append — costs at
//! most the unacknowledged suffix, never consistency. With a snapshot
//! (see [`crate::snapshot`]) the session state is decoded directly and
//! only the WAL records *past* the snapshot replay through the engine;
//! without one (or when the snapshot is torn or fails its CRC) the
//! whole prefix replays, one command at a time, through the same
//! transactional `execute` everything else uses. Either way the file
//! is truncated back to what recovered, and recovery cost is bounded
//! by the snapshot interval instead of the session's lifetime.

use crate::fault::ServeFaults;
use crate::snapshot::{load_snapshot, write_snapshot, SnapLoad};
use riot_core::{
    command_to_line, crc32, encode_session, Checkpoint, Command, Editor, Journal, Library,
    RiotError, WAL_MAGIC,
};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where a session's WAL file lives.
pub fn wal_path(root: &Path, session: &str) -> PathBuf {
    root.join(format!("{session}.wal"))
}

/// What happened when a session was brought into memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenKind {
    /// Fresh session: no WAL existed.
    Created,
    /// WAL existed and was replayed.
    Recovered {
        /// Journal records recovered, counting the `edit` head and any
        /// records restored from a snapshot rather than replayed.
        records: usize,
        /// `true` when the WAL had a corrupt tail that was truncated.
        truncated: bool,
    },
}

/// A hosted session at rest: owned library, suspended editor state,
/// and the open WAL append handle.
#[derive(Debug)]
pub struct SessionEntry {
    /// Session name (also the WAL file stem).
    pub name: String,
    /// The session's own cell menu.
    pub lib: Library,
    /// Suspended editor state; `None` only transiently while a worker
    /// has the editor resumed.
    pub cp: Option<Checkpoint>,
    /// Number of journal records already durable in the WAL.
    pub durable_records: usize,
    /// Last time a worker touched this session (drives idle eviction).
    pub last_touch: Instant,
    /// Encoded records staged for the next group flush.
    staged: Vec<u8>,
    /// Journal records encoded into `staged` (absolute watermark;
    /// `durable_records <= staged_records <= journal length`).
    staged_records: usize,
    /// Journal records covered by the newest durable snapshot (0 when
    /// no snapshot exists).
    snap_covered: usize,
    wal: File,
    path: PathBuf,
}

impl SessionEntry {
    /// Creates a brand-new session editing `cell`, writing the WAL
    /// magic and the `edit` head record.
    ///
    /// # Errors
    ///
    /// Editor errors (e.g. `cell` names a leaf) as a reply-ready
    /// string, or WAL I/O failures.
    pub fn create(
        root: &Path,
        name: &str,
        cell: &str,
        mut lib: Library,
    ) -> Result<SessionEntry, String> {
        let path = wal_path(root, name);
        let cp = {
            let ed = Editor::open(&mut lib, cell).map_err(|e| format!("open failed: {e}"))?;
            ed.suspend()
        };
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| format!("cannot create WAL {}: {e}", path.display()))?;
        wal.write_all(WAL_MAGIC)
            .and_then(|()| {
                wal.write_all(&record_bytes(&command_to_line(&Command::Edit {
                    cell: cell.to_owned(),
                })))
            })
            .and_then(|()| fsync_file(&mut wal))
            .map_err(|e| format!("cannot write WAL head: {e}"))?;
        riot_trace::registry()
            .counter("serve.sessions.created")
            .inc();
        Ok(SessionEntry {
            name: name.to_owned(),
            lib,
            cp: Some(cp),
            durable_records: 1,
            last_touch: Instant::now(),
            staged: Vec::new(),
            staged_records: 1,
            snap_covered: 0,
            wal,
            path,
        })
    }

    /// Recovers a session from its WAL (and snapshot, when one exists):
    /// reads the file, keeps the longest intact prefix, and rebuilds
    /// the session per the recovery matrix in [`crate::snapshot`] —
    /// snapshot plus WAL-tail replay when possible, full-history replay
    /// as the fallback, an honest error when a compacted WAL's required
    /// snapshot is unusable. The file is truncated back to exactly what
    /// recovered.
    ///
    /// # Errors
    ///
    /// A reply-ready description when the WAL is unreadable, empty of
    /// even a head record, or the replay fails structurally.
    pub fn recover(
        root: &Path,
        name: &str,
        lib: Library,
    ) -> Result<(SessionEntry, OpenKind), String> {
        let path = wal_path(root, name);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read WAL {}: {e}", path.display()))?;
        let rec = Journal::recover_wal(&bytes);
        let truncated = !rec.is_clean();
        let reg = riot_trace::registry();
        if truncated {
            reg.counter("serve.recovery.truncated").inc();
        }
        reg.counter("serve.recovery.sessions").inc();
        let cmds = rec.journal.commands();
        // `edit` only ever appears as a journal head, so *first record
        // is `edit`* ⇔ *full-history WAL* (vs. compacted tail).
        if let Some(Command::Edit { cell }) = cmds.first() {
            // Fast path: an intact snapshot consistent with this WAL
            // means only the records past it replay through the engine.
            if let SnapLoad::Loaded {
                covered,
                lib: slib,
                cp,
            } = load_snapshot(root, name)
            {
                if covered >= 1 && covered <= cmds.len() && cp.journal().commands().len() == covered
                {
                    if let Ok((lib2, cp2, tail_ok)) =
                        resume_and_replay(*slib, *cp, &cmds[covered..])
                    {
                        reg.counter("serve.recovery.snapshot_loads").inc();
                        reg.counter("serve.recovery.replayed_records")
                            .add(tail_ok as u64);
                        let total = covered + tail_ok;
                        return finish_recovery(
                            name,
                            path,
                            lib2,
                            cp2,
                            &cmds[..total],
                            total,
                            covered,
                            truncated,
                        );
                    }
                    // A snapshot that will not resume is as good as
                    // corrupt — fall through to the full replay.
                    reg.counter("serve.recovery.snapshot_corrupt").inc();
                }
            }
            // Fallback: full-history replay. Every record past the head
            // goes through the one transactional entry point. A record
            // that fails to replay (leaf cells changed shape since the
            // WAL was written, say) truncates the durable state at the
            // last good record — the same discipline recover_wal
            // applies to corrupt bytes.
            reg.counter("serve.recovery.full_replay").inc();
            let cell = cell.clone();
            let mut lib = lib;
            let mut replayed = 1usize;
            let cp = {
                let mut ed =
                    Editor::open(&mut lib, &cell).map_err(|e| format!("recovered head: {e}"))?;
                for cmd in &cmds[1..] {
                    match ed.execute(cmd.clone()) {
                        Ok(_) => replayed += 1,
                        Err(e) => {
                            reg.counter("serve.recovery.replay_stopped").inc();
                            let _ = e;
                            break;
                        }
                    }
                }
                ed.suspend()
            };
            reg.counter("serve.recovery.replayed_records")
                .add((replayed - 1) as u64);
            finish_recovery(
                name,
                path,
                lib,
                cp,
                &cmds[..replayed],
                replayed,
                0,
                truncated,
            )
        } else {
            // Compacted WAL: the `edit` head (and everything up to
            // `covered`) lives only in the snapshot, which compaction
            // guarantees was durable first. Every file record replays
            // on top of it.
            match load_snapshot(root, name) {
                SnapLoad::Loaded {
                    covered,
                    lib: slib,
                    cp,
                } => {
                    if cp.journal().commands().len() != covered {
                        return Err(format!(
                            "snapshot for {} covers {covered} records but its journal holds {}",
                            path.display(),
                            cp.journal().commands().len(),
                        ));
                    }
                    let (lib2, cp2, tail_ok) = resume_and_replay(*slib, *cp, cmds)
                        .map_err(|e| format!("snapshot for {}: {e}", path.display()))?;
                    reg.counter("serve.recovery.snapshot_loads").inc();
                    reg.counter("serve.recovery.replayed_records")
                        .add(tail_ok as u64);
                    finish_recovery(
                        name,
                        path,
                        lib2,
                        cp2,
                        &cmds[..tail_ok],
                        covered + tail_ok,
                        covered,
                        truncated,
                    )
                }
                SnapLoad::Missing => Err(format!(
                    "WAL {} is compacted (no `edit` head, {} records) but no snapshot exists",
                    path.display(),
                    cmds.len(),
                )),
                SnapLoad::Corrupt(e) => Err(format!(
                    "WAL {} is compacted but its snapshot is unusable: {e}",
                    path.display(),
                )),
            }
        }
    }

    /// Opens a session: recover when its WAL exists, create otherwise.
    ///
    /// # Errors
    ///
    /// See [`SessionEntry::create`] / [`SessionEntry::recover`].
    pub fn open(
        root: &Path,
        name: &str,
        cell: &str,
        lib: Library,
    ) -> Result<(SessionEntry, OpenKind), String> {
        if wal_path(root, name).exists() {
            SessionEntry::recover(root, name, lib)
        } else {
            SessionEntry::create(root, name, cell, lib).map(|e| (e, OpenKind::Created))
        }
    }

    /// Encodes every journal record the suspended checkpoint holds
    /// beyond the staging watermark into the in-memory staging buffer.
    /// Nothing touches the disk; a later [`SessionEntry::flush_staged`]
    /// (typically the group-commit flush pass) makes it durable.
    /// Returns the number of records staged.
    pub fn stage_journal(&mut self) -> usize {
        let Some(cp) = self.cp.as_ref() else {
            return 0;
        };
        let cmds = cp.journal().commands();
        let new = &cmds[self.staged_records.min(cmds.len())..];
        if new.is_empty() {
            return 0;
        }
        let before = self.staged.len();
        for cmd in new {
            self.staged
                .extend_from_slice(&record_bytes(&command_to_line(cmd)));
        }
        riot_trace::registry()
            .counter("serve.wal.staged_bytes")
            .add((self.staged.len() - before) as u64);
        self.staged_records = cmds.len();
        new.len()
    }

    /// Writes the staging buffer to the WAL and fsyncs — the covering
    /// flush that lets every staged run's reply be released. Returns
    /// the number of records that just became durable.
    ///
    /// # Errors
    ///
    /// WAL I/O failures (the in-memory state is still intact).
    pub fn flush_staged(&mut self) -> io::Result<usize> {
        let newly = self.staged_records - self.durable_records;
        if newly == 0 && self.staged.is_empty() {
            return Ok(0);
        }
        self.wal.write_all(&self.staged)?;
        let bytes = self.staged.len();
        self.staged.clear();
        self.fsync_wal()?;
        let reg = riot_trace::registry();
        reg.counter("serve.wal.bytes").add(bytes as u64);
        reg.counter("serve.wal.records").add(newly as u64);
        self.durable_records = self.staged_records;
        Ok(newly)
    }

    /// Stages and flushes in one step: the per-run durability path used
    /// when group commit is off. Returns the number of records that
    /// became durable.
    ///
    /// # Errors
    ///
    /// WAL I/O failures (the in-memory state is still intact).
    pub fn sync_journal(&mut self) -> io::Result<usize> {
        self.stage_journal();
        self.flush_staged()
    }

    /// True when staged records await their covering flush.
    pub fn has_staged(&self) -> bool {
        !self.staged.is_empty() || self.staged_records > self.durable_records
    }

    /// Discards staged-but-unflushed records (crash path: the session
    /// is being dropped, and unflushed work was never acknowledged).
    pub fn discard_staged(&mut self) {
        self.staged.clear();
        self.staged_records = self.durable_records;
    }

    /// Records covered by the newest durable snapshot (0 when none).
    pub fn snap_covered(&self) -> usize {
        self.snap_covered
    }

    /// The one instrumented fsync for this session's WAL.
    fn fsync_wal(&mut self) -> io::Result<()> {
        fsync_file(&mut self.wal)
    }

    /// Cuts a snapshot when at least `every` records accumulated past
    /// the last one (`every == 0` disables snapshots). Returns whether
    /// a snapshot was written.
    pub fn maybe_snapshot(&mut self, root: &Path, every: usize, faults: &ServeFaults) -> bool {
        if every == 0 || self.durable_records < self.snap_covered + every {
            return false;
        }
        self.snapshot_now(root, faults)
    }

    /// Cuts a snapshot covering everything durable, then compacts the
    /// WAL behind it. Any failure — a real I/O error, an injected
    /// [`riot_core::FAULT_SERVE_SNAPSHOT_WRITE`] tear, an armed fault
    /// plan the codec refuses to persist — is contained: compaction is
    /// skipped, the full WAL still holds every record, the session
    /// keeps running, and recovery falls back to full replay.
    pub fn snapshot_now(&mut self, root: &Path, faults: &ServeFaults) -> bool {
        let Some(cp) = self.cp.as_ref() else {
            return false;
        };
        let covered = self.durable_records;
        if cp.journal().commands().len() != covered {
            // Only fully-flushed states are snapshot-consistent: the
            // snapshot's journal must equal the durable WAL prefix.
            return false;
        }
        let Ok(payload) = encode_session(&self.lib, cp) else {
            return false;
        };
        if write_snapshot(root, &self.name, covered as u64, &payload, faults).is_err() {
            return false;
        }
        self.snap_covered = covered;
        if let Err(_e) = self.compact_wal(covered) {
            // Benign: the durable snapshot plus the full WAL still
            // recover; compaction will be retried at the next cut.
            riot_trace::registry()
                .counter("serve.snapshot.compact_failed")
                .inc();
        }
        true
    }

    /// Atomically rewrites the WAL to hold only the records past
    /// `covered`: temp file, fsync, rename, reopen the append handle.
    /// The tail records are acknowledged data, so the rewrite must
    /// never be observable half-done.
    fn compact_wal(&mut self, covered: usize) -> io::Result<()> {
        let cp = self
            .cp
            .as_ref()
            .expect("compact_wal requires a suspended session");
        let cmds = cp.journal().commands();
        let mut tail = Journal::new();
        for cmd in &cmds[covered.min(cmds.len())..] {
            tail.record(cmd.clone());
        }
        let tmp = self.path.with_file_name(format!("{}.wal.tmp", self.name));
        let mut f = File::create(&tmp)?;
        f.write_all(&tail.to_wal())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            crate::snapshot::sync_dir(dir);
        }
        self.wal = OpenOptions::new().append(true).open(&self.path)?;
        riot_trace::registry()
            .counter("serve.wal.compactions")
            .inc();
        Ok(())
    }

    /// Simulates a crash mid-append: writes a deliberately **torn**
    /// record (full header, half the payload) for `line` and syncs it
    /// to disk. The caller drops the session afterwards; recovery on
    /// reopen truncates this record away.
    pub fn append_torn_record(&mut self, line: &str) {
        let payload = line.as_bytes();
        let mut buf = Vec::with_capacity(8 + payload.len() / 2);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(&payload[..payload.len() / 2]);
        let _ = self.wal.write_all(&buf);
        let _ = self.wal.flush();
        let _ = self.wal.sync_all();
    }

    /// Forces file durability (used on close/evict/drain): stages and
    /// flushes anything pending through the same instrumented fsync
    /// every other flush uses, so `serve.wal.fsync_ns` covers these
    /// paths too. A session with nothing pending costs no fsync — its
    /// acknowledged records were already synced by their covering
    /// flush.
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.stage_journal();
        self.flush_staged().map(|_| ())
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Resumes a snapshot's editor state and replays `tail` through the
/// one transactional entry point, stopping (and counting
/// `serve.recovery.replay_stopped`) at the first record that fails.
/// Returns the rebuilt library, the re-suspended checkpoint, and how
/// many tail records replayed.
fn resume_and_replay(
    mut lib: Library,
    cp: Checkpoint,
    tail: &[Command],
) -> Result<(Library, Checkpoint, usize), String> {
    let mut ed = Editor::resume(&mut lib, cp).map_err(|e| format!("resume failed: {e}"))?;
    let mut ok = 0usize;
    for cmd in tail {
        match ed.execute(cmd.clone()) {
            Ok(_) => ok += 1,
            Err(e) => {
                riot_trace::registry()
                    .counter("serve.recovery.replay_stopped")
                    .inc();
                let _ = e;
                break;
            }
        }
    }
    let cp = ed.suspend();
    Ok((lib, cp, ok))
}

/// Rewrites the WAL to exactly `file_records` (full layout when the
/// slice starts with the `edit` head, compacted layout otherwise),
/// fsyncs it, and assembles the recovered [`SessionEntry`].
#[allow(clippy::too_many_arguments)]
fn finish_recovery(
    name: &str,
    path: PathBuf,
    lib: Library,
    cp: Checkpoint,
    file_records: &[Command],
    durable: usize,
    snap_covered: usize,
    truncated: bool,
) -> Result<(SessionEntry, OpenKind), String> {
    let mut prefix = Journal::new();
    for cmd in file_records {
        prefix.record(cmd.clone());
    }
    std::fs::write(&path, prefix.to_wal())
        .map_err(|e| format!("cannot rewrite WAL {}: {e}", path.display()))?;
    let mut wal = OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot reopen WAL {}: {e}", path.display()))?;
    fsync_file(&mut wal).map_err(|e| format!("cannot sync WAL {}: {e}", path.display()))?;
    Ok((
        SessionEntry {
            name: name.to_owned(),
            lib,
            cp: Some(cp),
            durable_records: durable,
            last_touch: Instant::now(),
            staged: Vec::new(),
            staged_records: durable,
            snap_covered,
            wal,
            path,
        },
        OpenKind::Recovered {
            records: durable,
            truncated,
        },
    ))
}

/// The one instrumented fsync: every WAL fsync the server issues lands
/// in the `serve.wal.fsync_ns` histogram and `serve.wal.fsyncs`
/// counter, so fsyncs-per-command is computable from telemetry alone.
fn fsync_file(f: &mut File) -> io::Result<()> {
    let start = Instant::now();
    f.sync_data()?;
    let reg = riot_trace::registry();
    reg.histogram("serve.wal.fsync_ns")
        .record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    reg.counter("serve.wal.fsyncs").inc();
    Ok(())
}

/// One WAL record for `line`: `u32` LE length, `u32` LE CRC-32,
/// payload — identical to [`Journal::to_wal`]'s per-record form.
fn record_bytes(line: &str) -> Vec<u8> {
    let payload = line.as_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Executes one wire command line against a resumed editor, mapping
/// the outcome to a reply detail string.
///
/// # Errors
///
/// The editor's error, reply-ready.
pub fn execute_line(ed: &mut Editor<'_>, line: &str) -> Result<String, RiotError> {
    let cmd = riot_core::parse_command_line(line, 0)?;
    let out = ed.execute(cmd)?;
    Ok(outcome_text(&out))
}

/// A compact, stable text form of an [`riot_core::Outcome`].
pub fn outcome_text(out: &riot_core::Outcome) -> String {
    use riot_core::Outcome;
    match out {
        Outcome::None => "done".to_owned(),
        Outcome::Instance(id) => format!("instance {}", id.index()),
        Outcome::Cell(id) => format!("cell {}", id.index()),
        Outcome::CellInstance(c, i) => format!("cell {} instance {}", c.index(), i.index()),
        Outcome::Count(n) => format!("count {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::standard_library;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("riot-serve-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_then_recover_round_trips_state() {
        let root = tmp_root("roundtrip");
        let (mut entry, kind) = SessionEntry::open(&root, "s1", "TOP", standard_library()).unwrap();
        assert_eq!(kind, OpenKind::Created);
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "create nand2 B").unwrap();
            execute_line(&mut ed, "translate B 5000 0").unwrap();
            entry.cp = Some(ed.suspend());
        }
        assert_eq!(entry.sync_journal().unwrap(), 3);
        assert_eq!(entry.durable_records, 4);
        drop(entry);

        let (mut entry2, kind2) =
            SessionEntry::open(&root, "s1", "TOP", standard_library()).unwrap();
        assert_eq!(
            kind2,
            OpenKind::Recovered {
                records: 4,
                truncated: false
            }
        );
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 2);
        assert_eq!(ed.journal().commands().len(), 4);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_append_recovers_to_the_acknowledged_prefix() {
        let root = tmp_root("torn");
        let (mut entry, _) = SessionEntry::open(&root, "s2", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        // Crash mid-append of a command that was never acknowledged.
        entry.append_torn_record("create nand2 B");
        drop(entry);

        let (mut entry2, kind) =
            SessionEntry::open(&root, "s2", "TOP", standard_library()).unwrap();
        assert_eq!(
            kind,
            OpenKind::Recovered {
                records: 2,
                truncated: true
            }
        );
        let wal_file = entry2.path().to_path_buf();
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 1, "only the acknowledged command");
        // And the rewritten file is now clean.
        let bytes = std::fs::read(&wal_file).unwrap();
        assert!(Journal::recover_wal(&bytes).is_clean());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn staged_records_survive_only_after_flush() {
        let root = tmp_root("staged");
        let (mut entry, _) = SessionEntry::open(&root, "st", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "create nand2 B").unwrap();
            entry.cp = Some(ed.suspend());
        }
        assert_eq!(entry.stage_journal(), 2);
        assert!(entry.has_staged());
        assert_eq!(entry.durable_records, 1, "staging wrote nothing");
        assert_eq!(entry.flush_staged().unwrap(), 2);
        assert!(!entry.has_staged());
        assert_eq!(entry.durable_records, 3);
        assert_eq!(entry.flush_staged().unwrap(), 0, "idempotent");
        drop(entry);
        let (entry2, kind) = SessionEntry::open(&root, "st", "TOP", standard_library()).unwrap();
        assert!(matches!(kind, OpenKind::Recovered { records: 3, .. }));
        drop(entry2);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn snapshot_compacts_the_wal_and_recovers_from_the_tail() {
        let root = tmp_root("snap");
        let faults = crate::fault::ServeFaults::none();
        let (mut entry, _) = SessionEntry::open(&root, "sn", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            for name in ["A", "B", "C"] {
                execute_line(&mut ed, &format!("create nand2 {name}")).unwrap();
            }
            execute_line(&mut ed, "undo").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        assert!(!entry.maybe_snapshot(&root, 100, &faults), "below interval");
        assert!(entry.maybe_snapshot(&root, 5, &faults), "5 durable >= 5");
        assert_eq!(entry.snap_covered(), 5);
        // The compacted WAL holds no records (snapshot covers them all)
        // and no longer starts with the `edit` head.
        let bytes = std::fs::read(entry.path()).unwrap();
        assert_eq!(bytes, WAL_MAGIC, "fully compacted");
        // Post-snapshot commands land in the compacted WAL's tail.
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 D").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        drop(entry);

        let replayed_before = riot_trace::registry()
            .counter("serve.recovery.replayed_records")
            .get();
        let (mut entry2, kind) =
            SessionEntry::open(&root, "sn", "TOP", standard_library()).unwrap();
        assert_eq!(
            kind,
            OpenKind::Recovered {
                records: 6,
                truncated: false
            }
        );
        let replayed = riot_trace::registry()
            .counter("serve.recovery.replayed_records")
            .get()
            - replayed_before;
        assert_eq!(replayed, 1, "only the post-snapshot tail replays");
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 3, "A, B (C undone), D");
        assert_eq!(ed.undo_depth(), 3, "undo stack restored from snapshot");
        assert_eq!(ed.journal().commands().len(), 6);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_snapshot_falls_back_to_full_replay() {
        let root = tmp_root("snapfault");
        let faults = crate::fault::ServeFaults::none();
        faults.arm(riot_core::FAULT_SERVE_SNAPSHOT_WRITE, 0);
        let (mut entry, _) = SessionEntry::open(&root, "tf", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "create nand2 B").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        assert!(!entry.snapshot_now(&root, &faults), "fault tears the write");
        assert_eq!(entry.snap_covered(), 0, "torn snapshot is not trusted");
        // Compaction was skipped: the WAL still starts with the head.
        let bytes = std::fs::read(entry.path()).unwrap();
        let rec = Journal::recover_wal(&bytes);
        assert!(matches!(
            rec.journal.commands().first(),
            Some(Command::Edit { .. })
        ));
        drop(entry);

        let full_before = riot_trace::registry()
            .counter("serve.recovery.full_replay")
            .get();
        let (mut entry2, kind) =
            SessionEntry::open(&root, "tf", "TOP", standard_library()).unwrap();
        assert!(matches!(kind, OpenKind::Recovered { records: 3, .. }));
        let full_after = riot_trace::registry()
            .counter("serve.recovery.full_replay")
            .get();
        assert_eq!(full_after - full_before, 1, "fell back to full replay");
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 2);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn compacted_wal_without_its_snapshot_is_an_honest_error() {
        let root = tmp_root("snapgone");
        let faults = crate::fault::ServeFaults::none();
        let (mut entry, _) = SessionEntry::open(&root, "sg", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        assert!(entry.snapshot_now(&root, &faults));
        drop(entry);
        std::fs::remove_file(crate::snapshot::snap_path(&root, "sg")).unwrap();
        let err = SessionEntry::open(&root, "sg", "TOP", standard_library()).unwrap_err();
        assert!(err.contains("no snapshot exists"), "{err}");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn undo_redo_survive_the_wal() {
        let root = tmp_root("undo");
        let (mut entry, _) = SessionEntry::open(&root, "s3", "TOP", standard_library()).unwrap();
        {
            let mut ed = Editor::resume(&mut entry.lib, entry.cp.take().unwrap()).unwrap();
            execute_line(&mut ed, "create nand2 A").unwrap();
            execute_line(&mut ed, "undo").unwrap();
            execute_line(&mut ed, "redo").unwrap();
            entry.cp = Some(ed.suspend());
        }
        entry.sync_journal().unwrap();
        drop(entry);
        let (mut entry2, kind) =
            SessionEntry::open(&root, "s3", "TOP", standard_library()).unwrap();
        assert!(matches!(kind, OpenKind::Recovered { records: 4, .. }));
        let ed = Editor::resume(&mut entry2.lib, entry2.cp.take().unwrap()).unwrap();
        assert_eq!(ed.instances().len(), 1);
        assert_eq!(ed.undo_depth(), 1);
        let _ = std::fs::remove_dir_all(root);
    }
}
