//! Server configuration.
//!
//! Everything tunable about a [`crate::Server`] lives here so tests can
//! shrink timeouts and inboxes to milliseconds and single digits while
//! the binary ships sensible production defaults. The WAL root is
//! always explicit — library code never hardcodes a directory (the
//! `riot-serve` binary defaults `--root` to `./riot-serve-data`, but
//! that decision lives in the binary, not here).

use crate::fault::ServeFaults;
use crate::flightrec::FlightRecorder;
use riot_core::Library;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// How the server runs its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One readiness-driven `poll(2)` event loop owns every connection:
    /// non-blocking sockets, zero-copy frame decode, bounded write
    /// backlogs. The default — holds thousands of connections on a
    /// handful of threads.
    #[default]
    Poll,
    /// The original reader-thread + writer-thread per connection model
    /// (two OS threads per client). Kept behind `--io-model threads`
    /// as the blocking fallback.
    Threads,
}

impl IoModel {
    /// The CLI spelling (`poll` / `threads`).
    pub fn as_str(self) -> &'static str {
        match self {
            IoModel::Poll => "poll",
            IoModel::Threads => "threads",
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<IoModel, String> {
        match s {
            "poll" => Ok(IoModel::Poll),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!("unknown io model `{other}` (poll|threads)")),
        }
    }
}

/// Builds the library every fresh session starts from. Sessions never
/// share a [`Library`] (each worker-owned session has its own), so the
/// factory is called once per `open`.
pub type LibraryFactory = Arc<dyn Fn() -> Library + Send + Sync>;

/// The library new sessions edit: the four menu cells every other
/// subsystem in this repo exercises (`nand2`, `or2`, `shift_register`
/// and the CIF pads). Mirrors `riot_check::menu_library` so the
/// riot-check reference model is valid against served sessions.
pub fn standard_library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot_cells::nand2())
        .expect("nand2 loads");
    lib.add_sticks_cell(riot_cells::or2()).expect("or2 loads");
    lib.add_sticks_cell(riot_cells::shift_register())
        .expect("shift_register loads");
    lib.load_cif(&riot_cells::pads_cif()).expect("pads load");
    lib
}

/// Resolves the worker count: an explicit request if positive, else the
/// `RIOT_SERVE_THREADS` environment variable, else the machine
/// parallelism. Always at least 1; capped at 64. Mirrors
/// `riot_geom::par::threads` (which answers to `RIOT_THREADS`) so both
/// knobs behave identically.
pub fn resolve_threads(requested: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else {
        std::env::var("RIOT_SERVE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    };
    n.clamp(1, 64)
}

/// Configuration for one server instance.
#[derive(Clone)]
pub struct ServeConfig {
    /// Directory holding one `<session>.wal` per session. Created on
    /// server start if missing.
    pub root: PathBuf,
    /// Worker threads (0 = resolve via [`resolve_threads`]).
    pub threads: usize,
    /// Bounded depth of each worker's job queue. A full queue turns
    /// into an explicit `busy` reply, never an unbounded buffer.
    pub inbox_cap: usize,
    /// Most commands a worker applies to one session per scheduling
    /// tick before it lets other sessions on the same shard run.
    pub batch_max: usize,
    /// Worker scheduling tick: how long a worker sleeps waiting for
    /// jobs before running housekeeping (idle eviction).
    pub tick: Duration,
    /// Sessions untouched for this long are suspended to their WAL and
    /// dropped from memory; a later `cmd` transparently reopens them.
    pub idle_timeout: Duration,
    /// Group-commit window: command runs stage their WAL appends and a
    /// single flush pass — one fsync per dirty WAL — covers every run
    /// staged inside the window, releasing all their replies at once.
    /// `None` falls back to one fsync per run (the pre-group-commit
    /// behaviour; the bench's baseline mode).
    pub group_commit: Option<Duration>,
    /// Cut a `RIOTSNAP1` snapshot (and compact the WAL behind it) every
    /// time this many journal records accumulate past the last
    /// snapshot; idle eviction also cuts one. `0` disables snapshots.
    pub snapshot_every: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Connection plane: the readiness event loop (default) or
    /// thread-per-connection.
    pub io_model: IoModel,
    /// Poll model only: most pending write-backlog bytes per
    /// connection. Reads pause at a quarter of this; crossing it
    /// evicts the connection (`serve.conn.evicted`).
    pub conn_backlog_max: usize,
    /// Library every fresh session starts from.
    pub library: LibraryFactory,
    /// Fault injection for the request path (disarmed by default).
    pub faults: ServeFaults,
    /// `host:port` for the telemetry HTTP listener (`/metrics`,
    /// `/metrics.json`, `/flightrec`, `/healthz`). `None` (the
    /// default) starts no listener; the `telemetry` wire verb works
    /// regardless.
    pub telemetry_addr: Option<String>,
    /// Commands slower than this (enqueue → reply) are logged with
    /// decomposed phase timings and recorded in the flight recorder.
    pub slow_threshold: Duration,
    /// The always-on flight recorder: shared with every worker and
    /// connection thread, dumped on panic, fault trip, or the `dump`
    /// wire verb. Replace with `Arc::new(FlightRecorder::new(cap))` to
    /// change the ring size (default 4096 events).
    pub flightrec: Arc<FlightRecorder>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("root", &self.root)
            .field("threads", &self.threads)
            .field("inbox_cap", &self.inbox_cap)
            .field("batch_max", &self.batch_max)
            .field("tick", &self.tick)
            .field("idle_timeout", &self.idle_timeout)
            .field("group_commit", &self.group_commit)
            .field("snapshot_every", &self.snapshot_every)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("io_model", &self.io_model)
            .field("conn_backlog_max", &self.conn_backlog_max)
            .field("telemetry_addr", &self.telemetry_addr)
            .field("slow_threshold", &self.slow_threshold)
            .finish_non_exhaustive()
    }
}

impl ServeConfig {
    /// Defaults for `root`: 0 (auto) threads, 256-job inboxes, 64
    /// commands per batch, 20 ms ticks, 60 s idle eviction, a 1 ms
    /// group-commit window, snapshots every 1000 records, 30 s socket
    /// timeouts, the poll io-model with 4 MiB write backlogs, the
    /// [`standard_library`], no faults, no telemetry listener, a
    /// 100 ms slow-command threshold, and a 4096-event flight
    /// recorder.
    pub fn new(root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            root: root.into(),
            threads: 0,
            inbox_cap: 256,
            batch_max: 64,
            tick: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(60),
            group_commit: Some(Duration::from_millis(1)),
            snapshot_every: 1000,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            io_model: IoModel::default(),
            conn_backlog_max: 4 << 20,
            library: Arc::new(standard_library),
            faults: ServeFaults::none(),
            telemetry_addr: None,
            slow_threshold: Duration::from_millis(100),
            flightrec: Arc::new(FlightRecorder::new(4096)),
        }
    }

    /// The effective worker count ([`resolve_threads`] of `threads`).
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_the_menu_cells() {
        let lib = standard_library();
        for name in ["nand2", "or2", "shiftcell"] {
            assert!(
                lib.find(name).is_some(),
                "{name} missing from standard library"
            );
        }
    }

    #[test]
    fn explicit_thread_requests_win_and_are_clamped() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(10_000), 64);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::new("/tmp/x");
        assert!(cfg.inbox_cap > 0);
        assert!(cfg.batch_max > 0);
        assert!(cfg.effective_threads() >= 1);
    }
}
