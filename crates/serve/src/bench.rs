//! The load generator behind `riot-serve bench`.
//!
//! Spawns `sessions` client connections (each driving its own
//! session), pushes `commands` editor commands through each with a
//! window of `window` requests in flight, and reports throughput plus
//! request-latency percentiles. The report is schema-checked by
//! [`BenchReport::validate`] **before** any timing claim is written —
//! a bench that cannot vouch for its own numbers emits nothing.

use crate::client::Client;
use crate::net::BoundAddr;
use crate::proto::{Reply, ReplyBody, RequestBody};
use std::collections::HashMap;
use std::time::Instant;

/// Bench shape: how much load, how wide the pipeline.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client connections (one session each).
    pub sessions: usize,
    /// Commands per session.
    pub commands: usize,
    /// Pipelined requests in flight per connection.
    pub window: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sessions: 4,
            commands: 1000,
            window: 32,
        }
    }
}

/// What the bench measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report schema tag, always `riot-serve-bench/1`.
    pub schema: String,
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Total commands acknowledged across all sessions.
    pub commands_total: usize,
    /// Pipeline window per connection.
    pub window: usize,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Acknowledged commands per second (all sessions combined).
    pub cmds_per_sec: f64,
    /// Request latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// `busy` replies absorbed (retried) during the run.
    pub busy_retries: usize,
}

impl BenchReport {
    /// Checks internal consistency: the schema tag, positive load and
    /// timings, ordered percentiles. Run this before trusting (or
    /// writing) any number in the report.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != "riot-serve-bench/1" {
            return Err(format!("bad schema tag `{}`", self.schema));
        }
        if self.sessions == 0 {
            return Err("sessions must be positive".into());
        }
        if self.commands_total == 0 {
            return Err("no commands were acknowledged".into());
        }
        if !self.commands_total.is_multiple_of(self.sessions) {
            return Err(format!(
                "commands_total {} not a multiple of sessions {} — lost replies",
                self.commands_total, self.sessions
            ));
        }
        if !(self.elapsed_ms.is_finite() && self.elapsed_ms > 0.0) {
            return Err("elapsed_ms must be positive and finite".into());
        }
        if !(self.cmds_per_sec.is_finite() && self.cmds_per_sec > 0.0) {
            return Err("cmds_per_sec must be positive and finite".into());
        }
        let implied = self.commands_total as f64 / (self.elapsed_ms / 1000.0);
        if (implied - self.cmds_per_sec).abs() / implied > 0.05 {
            return Err(format!(
                "cmds_per_sec {:.0} disagrees with commands/elapsed {:.0}",
                self.cmds_per_sec, implied
            ));
        }
        if !(self.p50_us <= self.p95_us && self.p95_us <= self.p99_us) {
            return Err(format!(
                "percentiles out of order: p50 {} p95 {} p99 {}",
                self.p50_us, self.p95_us, self.p99_us
            ));
        }
        Ok(())
    }

    /// The report as pretty-printed JSON (`riot-serve-bench/1`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"sessions\": {},\n  \"commands_total\": {},\n  \
             \"window\": {},\n  \"elapsed_ms\": {:.2},\n  \"cmds_per_sec\": {:.1},\n  \
             \"p50_us\": {},\n  \"p95_us\": {},\n  \"p99_us\": {},\n  \"busy_retries\": {}\n}}\n",
            self.schema,
            self.sessions,
            self.commands_total,
            self.window,
            self.elapsed_ms,
            self.cmds_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.busy_retries
        )
    }
}

/// One worker's tally.
struct SessionRun {
    latencies_us: Vec<u64>,
    acked: usize,
    busy_retries: usize,
}

/// The command mix: a growing row of gates, nudged into place — the
/// same create/translate traffic an interactive RIOT composition
/// session produces.
fn command_line(i: usize) -> String {
    if i.is_multiple_of(2) {
        format!("create nand2 G{}", i / 2)
    } else {
        format!("translate G{} {} 0", i / 2, 4000 * (i / 2 + 1))
    }
}

/// Drives one session over one connection with windowed pipelining.
fn drive_session(addr: &BoundAddr, session: &str, cfg: &BenchConfig) -> Result<SessionRun, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.open(session, "TOP").map_err(|e| format!("open: {e}"))?;
    let mut run = SessionRun {
        latencies_us: Vec::with_capacity(cfg.commands),
        acked: 0,
        busy_retries: 0,
    };
    let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut next = 0usize;
    while run.acked < cfg.commands {
        // Fill the window.
        while next < cfg.commands && in_flight.len() < cfg.window.max(1) {
            let id = c
                .send(RequestBody::Cmd {
                    session: session.to_owned(),
                    line: command_line(next),
                })
                .map_err(|e| format!("send: {e}"))?;
            in_flight.insert(id, (next, Instant::now()));
            next += 1;
        }
        // Drain one reply.
        let Reply { id, body } = c.recv().map_err(|e| format!("recv: {e}"))?;
        let Some((cmd_index, sent)) = in_flight.remove(&id) else {
            return Err(format!("reply id {id} answers nothing in flight"));
        };
        match body {
            ReplyBody::Ok(_) => {
                run.latencies_us
                    .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                run.acked += 1;
            }
            ReplyBody::Busy => {
                // Backpressure: put the command back in the queue. The
                // shrunken window drains before we refill.
                run.busy_retries += 1;
                let id = c
                    .send(RequestBody::Cmd {
                        session: session.to_owned(),
                        line: command_line(cmd_index),
                    })
                    .map_err(|e| format!("resend: {e}"))?;
                in_flight.insert(id, (cmd_index, Instant::now()));
            }
            ReplyBody::Err(m) => return Err(format!("command {cmd_index}: {m}")),
        }
    }
    c.close_session(session)
        .map_err(|e| format!("close: {e}"))?;
    Ok(run)
}

/// Runs the bench against a live server and returns a **validated**
/// report.
///
/// # Errors
///
/// Transport/protocol failures, lost or misordered replies, or a
/// report that fails its own schema check.
pub fn run_bench(addr: &BoundAddr, cfg: &BenchConfig) -> Result<BenchReport, String> {
    let started = Instant::now();
    let runs: Vec<Result<SessionRun, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|s| {
                let session = format!("bench-{s}");
                let addr = addr.clone();
                scope.spawn(move || drive_session(&addr, &session, cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;

    let mut latencies: Vec<u64> = Vec::new();
    let mut acked = 0usize;
    let mut busy_retries = 0usize;
    for run in runs {
        let run = run?;
        latencies.extend_from_slice(&run.latencies_us);
        acked += run.acked;
        busy_retries += run.busy_retries;
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let report = BenchReport {
        schema: "riot-serve-bench/1".to_owned(),
        sessions: cfg.sessions,
        commands_total: acked,
        window: cfg.window,
        elapsed_ms,
        cmds_per_sec: acked as f64 / (elapsed_ms / 1000.0),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        busy_retries,
    };
    report.validate()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: "riot-serve-bench/1".into(),
            sessions: 4,
            commands_total: 200,
            window: 16,
            elapsed_ms: 20.0,
            cmds_per_sec: 10_000.0,
            p50_us: 50,
            p95_us: 200,
            p99_us: 400,
            busy_retries: 0,
        }
    }

    #[test]
    fn valid_report_passes_and_serializes() {
        let r = sample();
        r.validate().unwrap();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"riot-serve-bench/1\""));
        assert!(json.contains("\"cmds_per_sec\": 10000.0"));
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut r = sample();
        r.schema = "wat/9".into();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.commands_total = 199; // not divisible by sessions: lost reply
        assert!(r.validate().is_err());

        let mut r = sample();
        r.p95_us = 10_000; // above p99
        assert!(r.validate().is_err());

        let mut r = sample();
        r.cmds_per_sec = 123.0; // disagrees with commands/elapsed
        assert!(r.validate().is_err());
    }

    #[test]
    fn command_mix_alternates_create_translate() {
        assert_eq!(command_line(0), "create nand2 G0");
        assert_eq!(command_line(1), "translate G0 4000 0");
        assert_eq!(command_line(2), "create nand2 G1");
    }
}
