//! The load generator behind `riot-serve bench`.
//!
//! Spawns `sessions` client connections (each driving its own
//! session), pushes `commands` editor commands through each with a
//! window of `window` requests in flight, and reports throughput,
//! request-latency percentiles, and **durability cost**: how many WAL
//! fsyncs the run bought (`fsyncs_total`, read as the delta of the
//! server's `serve.wal.fsyncs` counter over the `telemetry` wire verb)
//! and how many fsyncs each acknowledged command cost
//! (`fsyncs_per_cmd` — the number group commit exists to push far
//! below 1.0). The report is schema-checked by
//! [`BenchReport::validate`] **before** any timing claim is written —
//! a bench that cannot vouch for its own numbers emits nothing.
//!
//! [`run_suite`] goes further: it spawns two private servers — one
//! with group commit, one flushing per run — drives both with the same
//! load, and reports the durable-throughput speedup alongside a
//! recovery benchmark ([`run_recovery_bench`]) that times session
//! recovery with and without a snapshot across growing WAL histories,
//! demonstrating that snapshot recovery cost is flat in history
//! length.

use crate::client::Client;
use crate::config::{standard_library, IoModel, ServeConfig};
use crate::fault::ServeFaults;
use crate::net::{Bind, BoundAddr};
use crate::proto::{Reply, ReplyBody, RequestBody, TelemetryFormat};
use crate::server::Server;
use crate::session::{execute_line, SessionEntry};
use riot_core::Editor;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Bench shape: how much load, how wide the pipeline.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client connections (one session each).
    pub sessions: usize,
    /// Commands per session.
    pub commands: usize,
    /// Pipelined requests in flight per connection.
    pub window: usize,
    /// The driven server's group-commit window in microseconds, stamped
    /// into the report as provenance: `Some(0)` means group commit is
    /// off (one fsync per run), `None` means unknown (a remote server
    /// whose configuration the bench cannot see).
    pub group_commit_us: Option<u64>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sessions: 4,
            commands: 1000,
            window: 32,
            group_commit_us: None,
        }
    }
}

/// What the bench measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report schema tag, always `riot-serve-bench/2`.
    pub schema: String,
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Total commands acknowledged across all sessions.
    pub commands_total: usize,
    /// Pipeline window per connection.
    pub window: usize,
    /// Group-commit window of the driven server, microseconds
    /// (`Some(0)` = off, `None` = unknown/remote).
    pub group_commit_us: Option<u64>,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Acknowledged commands per second (all sessions combined).
    pub cmds_per_sec: f64,
    /// WAL fsyncs the run performed (`serve.wal.fsyncs` delta).
    pub fsyncs_total: u64,
    /// Fsyncs per acknowledged command — group commit's whole point is
    /// pushing this far below 1.0.
    pub fsyncs_per_cmd: f64,
    /// Request latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// `busy` replies absorbed (retried) during the run.
    pub busy_retries: usize,
}

impl BenchReport {
    /// Checks internal consistency: the schema tag, positive load and
    /// timings, ordered percentiles, fsync accounting. Run this before
    /// trusting (or writing) any number in the report.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != "riot-serve-bench/2" {
            return Err(format!("bad schema tag `{}`", self.schema));
        }
        if self.sessions == 0 {
            return Err("sessions must be positive".into());
        }
        if self.commands_total == 0 {
            return Err("no commands were acknowledged".into());
        }
        if !self.commands_total.is_multiple_of(self.sessions) {
            return Err(format!(
                "commands_total {} not a multiple of sessions {} — lost replies",
                self.commands_total, self.sessions
            ));
        }
        if !(self.elapsed_ms.is_finite() && self.elapsed_ms > 0.0) {
            return Err("elapsed_ms must be positive and finite".into());
        }
        if !(self.cmds_per_sec.is_finite() && self.cmds_per_sec > 0.0) {
            return Err("cmds_per_sec must be positive and finite".into());
        }
        let implied = self.commands_total as f64 / (self.elapsed_ms / 1000.0);
        if (implied - self.cmds_per_sec).abs() / implied > 0.05 {
            return Err(format!(
                "cmds_per_sec {:.0} disagrees with commands/elapsed {:.0}",
                self.cmds_per_sec, implied
            ));
        }
        let implied_rate = self.fsyncs_total as f64 / self.commands_total as f64;
        if !(self.fsyncs_per_cmd.is_finite()
            && self.fsyncs_per_cmd >= 0.0
            && (implied_rate - self.fsyncs_per_cmd).abs() < 1e-6)
        {
            return Err(format!(
                "fsyncs_per_cmd {:.4} disagrees with fsyncs/commands {:.4}",
                self.fsyncs_per_cmd, implied_rate
            ));
        }
        if !(self.p50_us <= self.p95_us && self.p95_us <= self.p99_us) {
            return Err(format!(
                "percentiles out of order: p50 {} p95 {} p99 {}",
                self.p50_us, self.p95_us, self.p99_us
            ));
        }
        Ok(())
    }

    /// The report as pretty-printed JSON (`riot-serve-bench/2`).
    pub fn to_json(&self) -> String {
        let gc = match self.group_commit_us {
            Some(us) => us.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"sessions\": {},\n  \"commands_total\": {},\n  \
             \"window\": {},\n  \"group_commit_us\": {},\n  \"elapsed_ms\": {:.2},\n  \
             \"cmds_per_sec\": {:.1},\n  \"fsyncs_total\": {},\n  \"fsyncs_per_cmd\": {:.4},\n  \
             \"p50_us\": {},\n  \"p95_us\": {},\n  \"p99_us\": {},\n  \"busy_retries\": {}\n}}\n",
            self.schema,
            self.sessions,
            self.commands_total,
            self.window,
            gc,
            self.elapsed_ms,
            self.cmds_per_sec,
            self.fsyncs_total,
            self.fsyncs_per_cmd,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.busy_retries
        )
    }
}

/// One session-recovery timing at one history length.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPoint {
    /// Commands in the session's history before recovery.
    pub history: usize,
    /// Recovery time with no snapshot: full-history replay, ms.
    pub full_replay_ms: f64,
    /// Recovery time from snapshot + WAL tail, ms.
    pub snapshot_ms: f64,
    /// WAL records replayed on top of the snapshot.
    pub tail_records: usize,
}

/// One connection-scaling measurement: `connections` open clients
/// (most idle, `active` driving commands) against one io model.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnScalePoint {
    /// The io model the server ran (`poll` / `threads`).
    pub io_model: String,
    /// Total open connections held for the whole measurement.
    pub connections: usize,
    /// Connections actively driving commands (the rest sit idle).
    pub active: usize,
    /// Commands acknowledged across the active connections.
    pub commands_total: usize,
    /// Wall-clock for the active phase, milliseconds.
    pub elapsed_ms: f64,
    /// Acknowledged commands per second with the idle herd attached.
    pub cmds_per_sec: f64,
}

impl ConnScalePoint {
    fn validate(&self) -> Result<(), String> {
        if self.io_model != "poll" && self.io_model != "threads" {
            return Err(format!("bad io_model `{}`", self.io_model));
        }
        if self.active == 0 || self.connections < self.active {
            return Err(format!(
                "connections {} must cover active {}",
                self.connections, self.active
            ));
        }
        if self.commands_total == 0 {
            return Err("no commands were acknowledged".into());
        }
        if !(self.elapsed_ms.is_finite() && self.elapsed_ms > 0.0) {
            return Err("elapsed_ms must be positive and finite".into());
        }
        let implied = self.commands_total as f64 / (self.elapsed_ms / 1000.0);
        if !(self.cmds_per_sec.is_finite()
            && self.cmds_per_sec > 0.0
            && (implied - self.cmds_per_sec).abs() / implied < 0.05)
        {
            return Err(format!(
                "cmds_per_sec {:.0} disagrees with commands/elapsed {:.0}",
                self.cmds_per_sec, implied
            ));
        }
        Ok(())
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{ \"io_model\": \"{}\", \"connections\": {}, \"active\": {}, \
             \"commands_total\": {}, \"elapsed_ms\": {:.2}, \"cmds_per_sec\": {:.1} }}",
            self.io_model,
            self.connections,
            self.active,
            self.commands_total,
            self.elapsed_ms,
            self.cmds_per_sec
        )
    }
}

/// A grouped-vs-baseline comparison plus the recovery curve and the
/// connection-scaling axis — what `riot-serve bench --suite` writes to
/// `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Suite schema tag, always `riot-serve-bench-suite/2`.
    pub schema: String,
    /// The run against a group-committing server.
    pub grouped: BenchReport,
    /// The same load against a server flushing once per run.
    pub baseline: BenchReport,
    /// `grouped.cmds_per_sec / baseline.cmds_per_sec`.
    pub speedup: f64,
    /// Recovery timings across growing histories; `snapshot_ms` should
    /// stay flat while `full_replay_ms` grows.
    pub recovery: Vec<RecoveryPoint>,
    /// Throughput while holding growing herds of mostly-idle
    /// connections, per io model. The poll model's axis must extend at
    /// least as far as the threads model's — holding more connections
    /// than thread-per-connection can is the readiness loop's job.
    pub conn_scaling: Vec<ConnScalePoint>,
}

impl BenchSuite {
    /// Validates both embedded reports, the speedup arithmetic, the
    /// recovery curve's shape (non-empty, histories increasing,
    /// positive timings), and the connection-scaling axis (non-empty,
    /// consistent points, connections increasing per io model, and the
    /// poll model scaling at least as far as the threads model).
    ///
    /// # Errors
    ///
    /// A description of the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != "riot-serve-bench-suite/2" {
            return Err(format!("bad suite schema tag `{}`", self.schema));
        }
        self.grouped
            .validate()
            .map_err(|e| format!("grouped: {e}"))?;
        self.baseline
            .validate()
            .map_err(|e| format!("baseline: {e}"))?;
        let implied = self.grouped.cmds_per_sec / self.baseline.cmds_per_sec;
        if !(self.speedup.is_finite() && (implied - self.speedup).abs() / implied < 0.01) {
            return Err(format!(
                "speedup {:.2} disagrees with throughput ratio {:.2}",
                self.speedup, implied
            ));
        }
        if self.recovery.is_empty() {
            return Err("recovery curve is empty".into());
        }
        for pair in self.recovery.windows(2) {
            if pair[1].history <= pair[0].history {
                return Err("recovery histories must be strictly increasing".into());
            }
        }
        for p in &self.recovery {
            if !(p.full_replay_ms.is_finite()
                && p.full_replay_ms > 0.0
                && p.snapshot_ms.is_finite()
                && p.snapshot_ms > 0.0)
            {
                return Err(format!("history {}: non-positive timing", p.history));
            }
        }
        if self.conn_scaling.is_empty() {
            return Err("connection-scaling axis is empty".into());
        }
        let mut max_conns: HashMap<&str, usize> = HashMap::new();
        let mut last: HashMap<&str, usize> = HashMap::new();
        for p in &self.conn_scaling {
            p.validate()
                .map_err(|e| format!("conn_scaling [{} @{}]: {e}", p.io_model, p.connections))?;
            if last
                .get(p.io_model.as_str())
                .is_some_and(|&n| p.connections <= n)
            {
                return Err(format!(
                    "{} connections must be strictly increasing",
                    p.io_model
                ));
            }
            last.insert(&p.io_model, p.connections);
            let m = max_conns.entry(&p.io_model).or_default();
            *m = (*m).max(p.connections);
        }
        let poll_max = *max_conns
            .get("poll")
            .ok_or("connection-scaling axis has no poll points")?;
        if max_conns.get("threads").is_some_and(|&t| poll_max < t) {
            return Err(format!(
                "poll axis tops out at {poll_max} connections, below the threads axis"
            ));
        }
        Ok(())
    }

    /// The suite as pretty-printed JSON (`riot-serve-bench-suite/2`).
    pub fn to_json(&self) -> String {
        let indent = |block: &str| -> String {
            block
                .trim_end()
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i == 0 {
                        l.to_owned()
                    } else {
                        format!("  {l}")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let points = self
            .recovery
            .iter()
            .map(|p| {
                format!(
                    "    {{ \"history\": {}, \"full_replay_ms\": {:.2}, \
                     \"snapshot_ms\": {:.2}, \"tail_records\": {} }}",
                    p.history, p.full_replay_ms, p.snapshot_ms, p.tail_records
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let scaling = self
            .conn_scaling
            .iter()
            .map(ConnScalePoint::to_json_line)
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"grouped\": {},\n  \"baseline\": {},\n  \
             \"speedup\": {:.2},\n  \"recovery\": [\n{}\n  ],\n  \
             \"conn_scaling\": [\n{}\n  ]\n}}\n",
            self.schema,
            indent(&self.grouped.to_json()),
            indent(&self.baseline.to_json()),
            self.speedup,
            points,
            scaling
        )
    }
}

/// One worker's tally.
struct SessionRun {
    latencies_us: Vec<u64>,
    acked: usize,
    busy_retries: usize,
}

/// The command mix: a growing row of gates, nudged into place — the
/// same create/translate traffic an interactive RIOT composition
/// session produces.
fn command_line(i: usize) -> String {
    if i.is_multiple_of(2) {
        format!("create nand2 G{}", i / 2)
    } else {
        format!("translate G{} {} 0", i / 2, 4000 * (i / 2 + 1))
    }
}

/// Reads the server's `serve.wal.fsyncs` counter over the `telemetry`
/// wire verb. Works the same against a spawned or a remote server; on
/// a shared remote server other tenants' fsyncs pollute the delta,
/// which is why CI benches against a private spawned server.
fn wal_fsyncs(addr: &BoundAddr) -> Result<u64, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("telemetry connect: {e}"))?;
    let text = c
        .telemetry(TelemetryFormat::Json)
        .map_err(|e| format!("telemetry verb: {e}"))?;
    let snap = riot_trace::Snapshot::parse(&text).map_err(|e| format!("telemetry parse: {e}"))?;
    Ok(snap
        .counters
        .iter()
        .find(|(name, _)| name == "serve.wal.fsyncs")
        .map_or(0, |(_, v)| *v))
}

/// Drives one session over one connection with windowed pipelining.
///
/// Dependency-aware: `translate G{n}` is only eligible to send once
/// `create nand2 G{n}` is acknowledged, so a `busy` retry (which puts
/// a command behind later sends in the server's queue) can never
/// reorder a translate ahead of its create. Commands on *different*
/// gates commute, so any interleaving of eligible commands reaches the
/// same session state.
fn drive_session(addr: &BoundAddr, session: &str, cfg: &BenchConfig) -> Result<SessionRun, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.open(session, "TOP").map_err(|e| format!("open: {e}"))?;
    let mut run = SessionRun {
        latencies_us: Vec::with_capacity(cfg.commands),
        acked: 0,
        busy_retries: 0,
    };
    let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
    // Every create is eligible immediately; each translate becomes
    // eligible when its create is acknowledged.
    let mut ready: VecDeque<usize> = (0..cfg.commands).filter(|i| i.is_multiple_of(2)).collect();
    // After a `busy`, stop refilling until the window drains to this
    // level — hammering a full inbox just buys more busy replies.
    let mut cooldown: Option<usize> = None;
    while run.acked < cfg.commands {
        if cooldown.is_some_and(|n| in_flight.len() <= n) {
            cooldown = None;
        }
        // Fill the window from the eligible queue.
        while cooldown.is_none() && in_flight.len() < cfg.window.max(1) {
            let Some(i) = ready.pop_front() else { break };
            let id = c
                .send(RequestBody::Cmd {
                    session: session.to_owned(),
                    line: command_line(i),
                })
                .map_err(|e| format!("send: {e}"))?;
            in_flight.insert(id, (i, Instant::now()));
        }
        if in_flight.is_empty() {
            return Err("pipeline stalled: nothing in flight, nothing eligible".into());
        }
        // Drain one reply.
        let Reply { id, body } = c.recv().map_err(|e| format!("recv: {e}"))?;
        let Some((cmd_index, sent)) = in_flight.remove(&id) else {
            return Err(format!("reply id {id} answers nothing in flight"));
        };
        match body {
            ReplyBody::Ok(_) => {
                run.latencies_us
                    .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                run.acked += 1;
                // The gate exists now: its translate may fly.
                if cmd_index.is_multiple_of(2) && cmd_index + 1 < cfg.commands {
                    ready.push_back(cmd_index + 1);
                }
            }
            ReplyBody::Busy => {
                // Backpressure: the command goes back to the front of
                // the eligible queue, and half the window drains
                // before we refill.
                run.busy_retries += 1;
                ready.push_front(cmd_index);
                cooldown = Some(in_flight.len() / 2);
            }
            ReplyBody::Err(m) => return Err(format!("command {cmd_index}: {m}")),
        }
    }
    // Close politely: the inbox may still be full of other sessions'
    // traffic, so `busy` here just means try again in a moment.
    for _ in 0..1000 {
        match c.close_session(session) {
            Err(e) if e == "busy" => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => return Err(format!("close: {e}")),
            Ok(_) => return Ok(run),
        }
    }
    Err("close: busy after 1000 retries".into())
}

/// Runs the bench against a live server and returns a **validated**
/// report.
///
/// # Errors
///
/// Transport/protocol failures, lost or misordered replies, or a
/// report that fails its own schema check.
pub fn run_bench(addr: &BoundAddr, cfg: &BenchConfig) -> Result<BenchReport, String> {
    let fsyncs_before = wal_fsyncs(addr)?;
    let started = Instant::now();
    let runs: Vec<Result<SessionRun, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|s| {
                let session = format!("bench-{s}");
                let addr = addr.clone();
                scope.spawn(move || drive_session(&addr, &session, cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let fsyncs_total = wal_fsyncs(addr)?.saturating_sub(fsyncs_before);

    let mut latencies: Vec<u64> = Vec::new();
    let mut acked = 0usize;
    let mut busy_retries = 0usize;
    for run in runs {
        let run = run?;
        latencies.extend_from_slice(&run.latencies_us);
        acked += run.acked;
        busy_retries += run.busy_retries;
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let report = BenchReport {
        schema: "riot-serve-bench/2".to_owned(),
        sessions: cfg.sessions,
        commands_total: acked,
        window: cfg.window,
        group_commit_us: cfg.group_commit_us,
        elapsed_ms,
        cmds_per_sec: acked as f64 / (elapsed_ms / 1000.0),
        fsyncs_total,
        fsyncs_per_cmd: fsyncs_total as f64 / acked.max(1) as f64,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        busy_retries,
    };
    report.validate()?;
    Ok(report)
}

/// Spawns a private Unix-socket server in a fresh temp directory.
fn spawn_server(
    tag: &str,
    group_commit: Option<Duration>,
    snapshot_every: usize,
    io_model: IoModel,
) -> Result<(crate::server::ServerHandle, PathBuf), String> {
    let dir = std::env::temp_dir().join(format!("riot-serve-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut cfg = ServeConfig::new(dir.join("wal"));
    cfg.group_commit = group_commit;
    cfg.snapshot_every = snapshot_every;
    cfg.io_model = io_model;
    let handle = Server::start(cfg, &Bind::Unix(dir.join("bench.sock")))
        .map_err(|e| format!("cannot spawn {tag} server: {e}"))?;
    Ok((handle, dir))
}

/// One connection-scaling point: holds `connections` open clients
/// against a private `io_model` server, keeps all but `cfg.sessions`
/// of them idle, and measures command throughput through the active
/// ones. The idle herd is what the point is really measuring — a
/// connection plane that degrades while merely *holding* sockets shows
/// up as a throughput cliff along the axis.
///
/// # Errors
///
/// Server spawn, connect, or drive failures, or an internally
/// inconsistent point.
pub fn run_conn_point(
    io_model: IoModel,
    connections: usize,
    cfg: &BenchConfig,
    group_commit_us: u64,
    snapshot_every: usize,
) -> Result<ConnScalePoint, String> {
    let active = cfg.sessions.max(1);
    if connections < active {
        return Err(format!(
            "{connections} connections cannot cover {active} active sessions"
        ));
    }
    let tag = format!("conns-{}-{}", io_model.as_str(), connections);
    let (handle, dir) = spawn_server(
        &tag,
        Some(Duration::from_micros(group_commit_us)),
        snapshot_every,
        io_model,
    )?;
    let addr = handle.addr();
    let run = (|| -> Result<ConnScalePoint, String> {
        let mut idle = Vec::with_capacity(connections - active);
        for i in 0..connections - active {
            idle.push(
                Client::connect(&addr)
                    .map_err(|e| format!("idle connect {i}/{connections}: {e}"))?,
            );
        }
        let started = Instant::now();
        let runs: Vec<Result<SessionRun, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..active)
                .map(|s| {
                    let session = format!("scale-{s}");
                    let addr = addr.clone();
                    scope.spawn(move || drive_session(&addr, &session, cfg))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
                .collect()
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        drop(idle);
        let mut acked = 0usize;
        for run in runs {
            acked += run?.acked;
        }
        let point = ConnScalePoint {
            io_model: io_model.as_str().to_owned(),
            connections,
            active,
            commands_total: acked,
            elapsed_ms,
            cmds_per_sec: acked as f64 / (elapsed_ms / 1000.0),
        };
        point.validate()?;
        Ok(point)
    })();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    run.map_err(|e| format!("{tag}: {e}"))
}

/// Runs the connection-scaling axis: every count in `scales` against
/// the poll model, and the counts up to [`THREADS_SCALE_CAP`] against
/// the threads model (thread-per-connection at a thousand connections
/// means two thousand OS threads — the axis documents the cliff, it
/// does not have to fall off it).
///
/// # Errors
///
/// The first failing point.
pub fn run_conn_scaling(
    scales: &[usize],
    load: &BenchConfig,
    group_commit_us: u64,
    snapshot_every: usize,
) -> Result<Vec<ConnScalePoint>, String> {
    let mut cfg = load.clone();
    cfg.group_commit_us = Some(group_commit_us);
    let mut points = Vec::new();
    for model in [IoModel::Poll, IoModel::Threads] {
        for &n in scales {
            if model == IoModel::Threads && n > THREADS_SCALE_CAP {
                continue;
            }
            points.push(run_conn_point(
                model,
                n,
                &cfg,
                group_commit_us,
                snapshot_every,
            )?);
        }
    }
    Ok(points)
}

/// Largest herd the threads io model is asked to hold on the scaling
/// axis (each connection costs it two OS threads).
pub const THREADS_SCALE_CAP: usize = 256;

/// Applies `range` of the bench command mix directly to a session
/// entry (resume, execute, suspend, one flush) — the recovery bench's
/// way of building WAL history without a server in the way.
fn apply_lines(entry: &mut SessionEntry, range: std::ops::Range<usize>) -> Result<(), String> {
    let cp = entry.cp.take().ok_or("session has no checkpoint")?;
    let mut ed = Editor::resume(&mut entry.lib, cp).map_err(|e| format!("resume: {e}"))?;
    for i in range {
        execute_line(&mut ed, &command_line(i)).map_err(|e| format!("command {i}: {e}"))?;
    }
    entry.cp = Some(ed.suspend());
    entry.sync_all().map_err(|e| format!("flush: {e}"))
}

/// Times session recovery with and without a snapshot at each history
/// length in `histories`. Each point builds a session with `history`
/// commands, times a full-history recovery (no snapshot on disk), then
/// cuts a snapshot, appends `tail` more commands, and times the
/// snapshot + tail recovery. `snapshot_ms` staying flat while
/// `full_replay_ms` grows is the O(snapshot + tail) claim, measured.
///
/// # Errors
///
/// I/O or replay failures while building or recovering the sessions.
pub fn run_recovery_bench(histories: &[usize], tail: usize) -> Result<Vec<RecoveryPoint>, String> {
    let faults = ServeFaults::none();
    let mut points = Vec::new();
    for (k, &history) in histories.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("riot-recov-{k}-{history}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

        let mut entry = SessionEntry::create(&dir, "rec", "TOP", standard_library())?;
        apply_lines(&mut entry, 0..history)?;
        drop(entry);

        // No snapshot on disk yet: this is the full-history replay.
        let t = Instant::now();
        let (mut entry, _) = SessionEntry::recover(&dir, "rec", standard_library())?;
        let full_replay_ms = t.elapsed().as_secs_f64() * 1000.0;

        // Snapshot, compact, extend by `tail`, recover again.
        if !entry.snapshot_now(&dir, &faults) {
            return Err(format!("history {history}: snapshot refused"));
        }
        apply_lines(&mut entry, history..history + tail)?;
        drop(entry);
        let t = Instant::now();
        let (entry, _) = SessionEntry::recover(&dir, "rec", standard_library())?;
        let snapshot_ms = t.elapsed().as_secs_f64() * 1000.0;
        drop(entry);

        let _ = std::fs::remove_dir_all(&dir);
        points.push(RecoveryPoint {
            history,
            full_replay_ms,
            snapshot_ms,
            tail_records: tail,
        });
    }
    Ok(points)
}

/// Runs the full comparison suite: the same load against a
/// group-committing server and a per-run-fsync baseline (both private,
/// spawned, torn down, pinned to [`IoModel::Threads`] so the A/B
/// isolates the group-commit window), plus the recovery curve and the
/// connection-scaling axis ([`run_conn_scaling`] over `conn_scales`,
/// which exercises both io models). Returns a **validated**
/// [`BenchSuite`].
///
/// # Errors
///
/// Server spawn failures, bench failures on either server, recovery or
/// scaling bench failures, or a suite that fails its own consistency
/// check.
pub fn run_suite(
    load: &BenchConfig,
    group_commit_us: u64,
    snapshot_every: usize,
    histories: &[usize],
    tail: usize,
    conn_scales: &[usize],
) -> Result<BenchSuite, String> {
    let mut cfg = load.clone();
    cfg.group_commit_us = Some(group_commit_us);
    // The A/B legs isolate the *group-commit* effect, so both stay
    // pinned to the threads io-model the experiment was defined under.
    // The poll loop's reply routing already batches worker flushes, so
    // under it the window is neutral and the A/B would measure nothing;
    // the poll model is covered by the connection-scaling axis instead.
    let (handle, dir) = spawn_server(
        "grouped",
        Some(Duration::from_micros(group_commit_us)),
        snapshot_every,
        IoModel::Threads,
    )?;
    let grouped = run_bench(&handle.addr(), &cfg);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    let grouped = grouped.map_err(|e| format!("grouped run: {e}"))?;

    cfg.group_commit_us = Some(0);
    let (handle, dir) = spawn_server("baseline", None, snapshot_every, IoModel::Threads)?;
    let baseline = run_bench(&handle.addr(), &cfg);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    let baseline = baseline.map_err(|e| format!("baseline run: {e}"))?;

    let suite = BenchSuite {
        schema: "riot-serve-bench-suite/2".to_owned(),
        speedup: grouped.cmds_per_sec / baseline.cmds_per_sec,
        grouped,
        baseline,
        recovery: run_recovery_bench(histories, tail)?,
        conn_scaling: run_conn_scaling(conn_scales, load, group_commit_us, snapshot_every)?,
    };
    suite.validate()?;
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: "riot-serve-bench/2".into(),
            sessions: 4,
            commands_total: 200,
            window: 16,
            group_commit_us: Some(1000),
            elapsed_ms: 20.0,
            cmds_per_sec: 10_000.0,
            fsyncs_total: 50,
            fsyncs_per_cmd: 0.25,
            p50_us: 50,
            p95_us: 200,
            p99_us: 400,
            busy_retries: 0,
        }
    }

    #[test]
    fn valid_report_passes_and_serializes() {
        let r = sample();
        r.validate().unwrap();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"riot-serve-bench/2\""));
        assert!(json.contains("\"cmds_per_sec\": 10000.0"));
        assert!(json.contains("\"fsyncs_total\": 50"));
        assert!(json.contains("\"fsyncs_per_cmd\": 0.2500"));
        assert!(json.contains("\"group_commit_us\": 1000"));
    }

    #[test]
    fn unknown_group_commit_serializes_as_null() {
        let mut r = sample();
        r.group_commit_us = None;
        assert!(r.to_json().contains("\"group_commit_us\": null"));
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut r = sample();
        r.schema = "wat/9".into();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.commands_total = 199; // not divisible by sessions: lost reply
        assert!(r.validate().is_err());

        let mut r = sample();
        r.p95_us = 10_000; // above p99
        assert!(r.validate().is_err());

        let mut r = sample();
        r.cmds_per_sec = 123.0; // disagrees with commands/elapsed
        assert!(r.validate().is_err());

        let mut r = sample();
        r.fsyncs_per_cmd = 0.9; // disagrees with fsyncs/commands
        assert!(r.validate().is_err());
    }

    fn scale_point(io_model: &str, connections: usize) -> ConnScalePoint {
        ConnScalePoint {
            io_model: io_model.into(),
            connections,
            active: 4,
            commands_total: 400,
            elapsed_ms: 40.0,
            cmds_per_sec: 10_000.0,
        }
    }

    fn sample_suite() -> BenchSuite {
        let grouped = sample();
        let mut baseline = sample();
        baseline.group_commit_us = Some(0);
        baseline.elapsed_ms = 40.0;
        baseline.cmds_per_sec = 5_000.0;
        baseline.fsyncs_total = 200;
        baseline.fsyncs_per_cmd = 1.0;
        BenchSuite {
            schema: "riot-serve-bench-suite/2".into(),
            grouped,
            baseline,
            speedup: 2.0,
            recovery: vec![
                RecoveryPoint {
                    history: 500,
                    full_replay_ms: 5.0,
                    snapshot_ms: 1.0,
                    tail_records: 64,
                },
                RecoveryPoint {
                    history: 2000,
                    full_replay_ms: 20.0,
                    snapshot_ms: 1.1,
                    tail_records: 64,
                },
            ],
            conn_scaling: vec![
                scale_point("poll", 64),
                scale_point("poll", 1024),
                scale_point("threads", 64),
                scale_point("threads", 256),
            ],
        }
    }

    #[test]
    fn suite_validation_checks_speedup_and_curve() {
        let suite = sample_suite();
        suite.validate().unwrap();
        let json = suite.to_json();
        assert!(json.contains("\"schema\": \"riot-serve-bench-suite/2\""));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"history\": 2000"));
        assert!(json.contains("\"io_model\": \"poll\", \"connections\": 1024"));

        let mut bad = suite.clone();
        bad.speedup = 9.0;
        assert!(bad.validate().is_err());

        let mut bad = suite.clone();
        bad.recovery.clear();
        assert!(bad.validate().is_err());

        let mut bad = suite;
        bad.recovery[1].history = 500; // not increasing
        assert!(bad.validate().is_err());
    }

    #[test]
    fn suite_validation_checks_the_scaling_axis() {
        let mut bad = sample_suite();
        bad.conn_scaling.clear();
        assert!(bad.validate().unwrap_err().contains("scaling axis"));

        let mut bad = sample_suite();
        bad.conn_scaling[1].connections = 64; // poll axis not increasing
        assert!(bad.validate().is_err());

        let mut bad = sample_suite();
        bad.conn_scaling.retain(|p| p.io_model == "threads");
        assert!(bad.validate().unwrap_err().contains("no poll points"));

        // The poll axis must reach at least as far as the threads axis.
        let mut bad = sample_suite();
        bad.conn_scaling = vec![scale_point("poll", 64), scale_point("threads", 256)];
        assert!(bad.validate().unwrap_err().contains("tops out"));

        let mut bad = sample_suite();
        bad.conn_scaling[0].active = 0;
        assert!(bad.validate().is_err());

        let mut bad = sample_suite();
        bad.conn_scaling[0].cmds_per_sec = 1.0; // disagrees with commands/elapsed
        assert!(bad.validate().is_err());

        let mut bad = sample_suite();
        bad.conn_scaling[0].io_model = "fibers".into();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn conn_scaling_measures_a_real_herd() {
        let cfg = BenchConfig {
            sessions: 2,
            commands: 40,
            window: 8,
            group_commit_us: Some(500),
        };
        let point = run_conn_point(IoModel::Poll, 16, &cfg, 500, 0).unwrap();
        assert_eq!(point.connections, 16);
        assert_eq!(point.active, 2);
        assert_eq!(point.commands_total, 80);
        assert_eq!(point.io_model, "poll");
    }

    #[test]
    fn recovery_bench_measures_real_sessions() {
        let points = run_recovery_bench(&[20], 6).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].history, 20);
        assert_eq!(points[0].tail_records, 6);
        assert!(points[0].full_replay_ms > 0.0 && points[0].snapshot_ms > 0.0);
    }

    #[test]
    fn command_mix_alternates_create_translate() {
        assert_eq!(command_line(0), "create nand2 G0");
        assert_eq!(command_line(1), "translate G0 4000 0");
        assert_eq!(command_line(2), "create nand2 G1");
    }
}
