//! Session snapshots: `RIOTSNAP1` files that make recovery
//! O(snapshot + WAL tail) instead of O(history).
//!
//! # File format
//!
//! ```text
//! "RIOTSNAP1"            9-byte magic
//! u64 LE covered         journal records the snapshot covers
//!                        (including the `edit` head)
//! u32 LE payload length
//! u32 LE CRC-32          IEEE, over the payload only
//! payload                riot_core::encode_session bytes
//! ```
//!
//! # Durability protocol
//!
//! A snapshot is written to `<session>.snap.tmp`, fsynced, renamed over
//! `<session>.snap`, and the directory fsynced — readers only ever see
//! either the previous intact snapshot or the new one, never a partial
//! write (unless the [`FAULT_SERVE_SNAPSHOT_WRITE`] fault site
//! deliberately tears one to prove recovery's fallback).
//!
//! Only after the snapshot is durable may the WAL be **compacted**
//! (truncated to the records past `covered` — see
//! [`crate::session::SessionEntry`]). A compacted WAL no longer starts
//! with the `edit` head, which is exactly how recovery tells the two
//! layouts apart: journal records are never `edit` lines mid-session
//! (the engine rejects `edit` outside a journal head), so *first
//! record is `edit`* ⇔ *full-history WAL*.
//!
//! # Recovery matrix
//!
//! | WAL layout | snapshot    | recovery                                |
//! |------------|-------------|-----------------------------------------|
//! | full       | intact      | decode snapshot, replay records past it |
//! | full       | torn/bad    | full-history replay (fallback)          |
//! | full       | missing     | full-history replay                     |
//! | compacted  | intact      | decode snapshot, replay every record    |
//! | compacted  | torn/bad    | unrecoverable — reported honestly       |
//!
//! The last row cannot happen without bytes rotting on disk: compaction
//! only runs after the covering snapshot is durable.

use crate::fault::ServeFaults;
use riot_core::{crc32, decode_session, Checkpoint, Library, FAULT_SERVE_SNAPSHOT_WRITE};
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic header opening a session snapshot file.
pub const SNAP_MAGIC: &[u8; 9] = b"RIOTSNAP1";

/// Fixed bytes before the payload: magic, covered count, length, CRC.
const HEADER_LEN: usize = SNAP_MAGIC.len() + 8 + 4 + 4;

/// Where a session's snapshot file lives.
pub fn snap_path(root: &Path, session: &str) -> PathBuf {
    root.join(format!("{session}.snap"))
}

/// Why a snapshot file could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(String),
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The file ends before the declared payload does (torn write).
    Torn,
    /// The payload CRC-32 does not match the header.
    BadCrc,
    /// The payload failed to decode as a session.
    Decode(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            SnapshotError::BadMagic => write!(f, "not a RIOTSNAP1 file"),
            SnapshotError::Torn => write!(f, "snapshot is torn (truncated payload)"),
            SnapshotError::BadCrc => write!(f, "snapshot payload fails its CRC"),
            SnapshotError::Decode(e) => write!(f, "snapshot payload does not decode: {e}"),
        }
    }
}

/// Frames `payload` into the on-disk snapshot layout.
pub fn frame_snapshot(covered: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&covered.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the framing of snapshot `bytes` and returns
/// `(covered, payload)`.
///
/// # Errors
///
/// [`SnapshotError::BadMagic`], [`SnapshotError::Torn`] (file shorter
/// than the declared payload) or [`SnapshotError::BadCrc`].
pub fn parse_snapshot(bytes: &[u8]) -> Result<(u64, &[u8]), SnapshotError> {
    if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Torn);
    }
    let covered = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[17..21].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[21..25].try_into().unwrap());
    let Some(payload) = bytes.get(HEADER_LEN..HEADER_LEN + len) else {
        return Err(SnapshotError::Torn);
    };
    if crc32(payload) != crc {
        return Err(SnapshotError::BadCrc);
    }
    Ok((covered, payload))
}

/// Writes a snapshot atomically: temp file, fsync, rename, directory
/// fsync. On a [`FAULT_SERVE_SNAPSHOT_WRITE`] trip the final path gets
/// a deliberately torn file instead (header plus half the payload) and
/// the write reports failure — the caller must then *skip* compaction,
/// so the full WAL still carries every record the torn snapshot lost.
///
/// # Errors
///
/// Real I/O failures, or the simulated failure on a fault trip.
pub fn write_snapshot(
    root: &Path,
    session: &str,
    covered: u64,
    payload: &[u8],
    faults: &ServeFaults,
) -> io::Result<()> {
    let reg = riot_trace::registry();
    let bytes = frame_snapshot(covered, payload);
    let final_path = snap_path(root, session);
    if faults.should_inject(FAULT_SERVE_SNAPSHOT_WRITE) {
        // A torn write straight over the final path: everything up to
        // half the payload made it, the rest did not.
        let torn = &bytes[..HEADER_LEN + payload.len() / 2];
        let _ = std::fs::write(&final_path, torn);
        reg.counter("serve.snapshot.torn").inc();
        return Err(io::Error::other("fault injected at snapshot write"));
    }
    let tmp = root.join(format!("{session}.snap.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, &final_path)?;
    sync_dir(root);
    reg.counter("serve.snapshot.written").inc();
    reg.counter("serve.snapshot.bytes").add(bytes.len() as u64);
    Ok(())
}

/// Best-effort directory fsync so a rename survives power loss.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The outcome of looking for a session's snapshot.
#[derive(Debug)]
pub enum SnapLoad {
    /// No snapshot file exists.
    Missing,
    /// An intact snapshot was decoded.
    Loaded {
        /// Journal records the snapshot covers (incl. the `edit` head).
        covered: usize,
        /// The library at snapshot time.
        lib: Box<Library>,
        /// The suspended session at snapshot time.
        cp: Box<Checkpoint>,
    },
    /// A snapshot file exists but cannot be used.
    Corrupt(SnapshotError),
}

/// Loads `session`'s snapshot, if any. A corrupt snapshot is counted
/// (`serve.recovery.snapshot_corrupt`) and reported, never trusted; an
/// intact one counts `serve.recovery.snapshot_loaded`.
pub fn load_snapshot(root: &Path, session: &str) -> SnapLoad {
    let path = snap_path(root, session);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return SnapLoad::Missing,
        Err(e) => {
            riot_trace::registry()
                .counter("serve.recovery.snapshot_corrupt")
                .inc();
            return SnapLoad::Corrupt(SnapshotError::Io(e.to_string()));
        }
    };
    let parsed = parse_snapshot(&bytes)
        .and_then(|(covered, payload)| {
            decode_session(payload)
                .map(|(lib, cp)| (covered, lib, cp))
                .map_err(|e| SnapshotError::Decode(e.to_string()))
        })
        .map(|(covered, lib, cp)| SnapLoad::Loaded {
            covered: covered as usize,
            lib: Box::new(lib),
            cp: Box::new(cp),
        });
    match parsed {
        Ok(loaded) => {
            riot_trace::registry()
                .counter("serve.recovery.snapshot_loaded")
                .inc();
            loaded
        }
        Err(e) => {
            riot_trace::registry()
                .counter("serve.recovery.snapshot_corrupt")
                .inc();
            SnapLoad::Corrupt(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_parse_round_trip() {
        let payload = b"not a real session, framing only";
        let bytes = frame_snapshot(42, payload);
        let (covered, p) = parse_snapshot(&bytes).unwrap();
        assert_eq!(covered, 42);
        assert_eq!(p, payload);
    }

    #[test]
    fn torn_and_corrupt_framing_are_detected() {
        let payload = b"payload bytes";
        let bytes = frame_snapshot(7, payload);
        assert_eq!(
            parse_snapshot(b"RIOTWAL1xxxx"),
            Err(SnapshotError::BadMagic)
        );
        for len in SNAP_MAGIC.len()..bytes.len() {
            assert_eq!(
                parse_snapshot(&bytes[..len]),
                Err(SnapshotError::Torn),
                "prefix {len}"
            );
        }
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(parse_snapshot(&flipped), Err(SnapshotError::BadCrc));
    }

    #[test]
    fn snapshot_write_fault_leaves_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("riot-snap-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let faults = ServeFaults::none();
        faults.arm(FAULT_SERVE_SNAPSHOT_WRITE, 0);
        let payload = vec![0xAB; 64];
        let err = write_snapshot(&dir, "s", 9, &payload, &faults).unwrap_err();
        assert!(err.to_string().contains("fault injected"));
        let bytes = std::fs::read(snap_path(&dir, "s")).unwrap();
        assert_eq!(parse_snapshot(&bytes), Err(SnapshotError::Torn));
        // A later, healthy write replaces the torn file atomically.
        write_snapshot(&dir, "s", 9, &payload, &faults).unwrap();
        let bytes = std::fs::read(snap_path(&dir, "s")).unwrap();
        assert_eq!(parse_snapshot(&bytes).unwrap(), (9, payload.as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
