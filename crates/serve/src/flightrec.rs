//! The flight recorder: an always-on bounded ring of recent protocol
//! and session events, dumped to a JSONL file when something goes
//! wrong.
//!
//! Unlike riot-trace spans (off by default, sampled into a global
//! ring), the flight recorder is **always on** and deliberately tiny:
//! one event per frame-level incident, applied command, fault trip, or
//! session crash, capped at the size given to [`FlightRecorder::new`]
//! (4096 events in the [`crate::ServeConfig`] default).
//! Its purpose is forensic: when a worker panics, a fault trips, or an
//! operator sends the `dump` wire verb, the recent tail is written to
//! `<root>/flightrec-<unix-secs>-<n>.jsonl` — and because command
//! events carry the exact replay-syntax line plus its ok/err outcome,
//! riot-check's lockstep harness can replay the acknowledged tail and
//! prove (or disprove) that the engine state leading up to the crash
//! was model-equivalent.
//!
//! # Dump schema
//!
//! One JSON object per line:
//!
//! ```json
//! {"seq":12,"t_ns":1723116742000000000,"worker":1,"session":"s1",
//!  "kind":"cmd","detail":"create nand2 A","ok":true,"trace":317}
//! ```
//!
//! `kind` is one of `open`, `cmd`, `fault`, `crash`, `slow`. For
//! `open` events `detail` is the WAL head line (`edit <cell>`), so the
//! `open`+ok-`cmd` subsequence of a dump is itself a valid replay.

use riot_trace::json::Value;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{SystemTime, UNIX_EPOCH};

/// What a flight-recorder event witnessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A session was created or recovered; `detail` is the WAL head
    /// line (`edit <cell>`).
    Open,
    /// A command was applied (or refused); `detail` is the replay
    /// line, `ok` the outcome.
    Cmd,
    /// A fault-injection site tripped; `detail` names the site.
    Fault,
    /// A session crashed (torn WAL record / failed flush / panic);
    /// `detail` describes the cause.
    Crash,
    /// A command exceeded the slow threshold; `detail` carries the
    /// decomposed phase timings.
    Slow,
}

impl FlightKind {
    /// The stable wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Open => "open",
            FlightKind::Cmd => "cmd",
            FlightKind::Fault => "fault",
            FlightKind::Crash => "crash",
            FlightKind::Slow => "slow",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<FlightKind> {
        Some(match s {
            "open" => FlightKind::Open,
            "cmd" => FlightKind::Cmd,
            "fault" => FlightKind::Fault,
            "crash" => FlightKind::Crash,
            "slow" => FlightKind::Slow,
            _ => return None,
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone per-recorder sequence number (gaps mean eviction).
    pub seq: u64,
    /// Wall-clock nanoseconds since the Unix epoch.
    pub t_ns: u64,
    /// Index of the worker that recorded the event (0 for
    /// connection-level events).
    pub worker: u64,
    /// Session the event concerns (empty for server-wide events).
    pub session: String,
    /// What happened.
    pub kind: FlightKind,
    /// Kind-specific payload (see module docs).
    pub detail: String,
    /// Whether the witnessed operation succeeded.
    pub ok: bool,
    /// Trace id of the request that caused the event (0 = untraced).
    pub trace: u64,
}

struct Ring {
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, always-on event ring. Cheap enough to leave running: one
/// short mutex hold and one small allocation per recorded event.
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (min 16).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(16),
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(64),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(
        &self,
        worker: u64,
        session: &str,
        kind: FlightKind,
        detail: impl Into<String>,
        ok: bool,
        trace: u64,
    ) {
        let mut r = self.inner.lock().expect("flightrec lock");
        if r.buf.len() >= self.cap {
            r.buf.pop_front();
            r.dropped += 1;
        }
        let seq = r.next_seq;
        r.next_seq += 1;
        r.buf.push_back(FlightEvent {
            seq,
            t_ns: unix_nanos(),
            worker,
            session: session.to_owned(),
            kind,
            detail: detail.into(),
            ok,
            trace,
        });
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.inner
            .lock()
            .expect("flightrec lock")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flightrec lock").buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flightrec lock").dropped
    }

    /// The ring rendered as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"t_ns\":{},\"worker\":{},\"session\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\",\"ok\":{},\"trace\":{}}}",
                ev.seq,
                ev.t_ns,
                ev.worker,
                riot_trace::export::escape_json(&ev.session),
                ev.kind.as_str(),
                riot_trace::export::escape_json(&ev.detail),
                ev.ok,
                ev.trace,
            );
        }
        out
    }

    /// Writes the ring to `<dir>/flightrec-<unix-secs>-<n>.jsonl` and
    /// returns the path. `n` is a process-wide counter, so concurrent
    /// dumps never collide.
    ///
    /// # Errors
    ///
    /// Filesystem failures (directory missing, disk full…).
    pub fn dump_to(&self, dir: &Path) -> io::Result<PathBuf> {
        static DUMP_N: AtomicU64 = AtomicU64::new(0);
        let n = DUMP_N.fetch_add(1, Ordering::Relaxed);
        let secs = unix_nanos() / 1_000_000_000;
        let path = dir.join(format!("flightrec-{secs}-{n}.jsonl"));
        std::fs::write(&path, self.to_jsonl())?;
        riot_trace::registry()
            .counter("serve.flightrec.dumps")
            .inc();
        Ok(path)
    }

    /// Parses a dump (the [`FlightRecorder::to_jsonl`] form) back into
    /// events. Used by riot-check's replay path and the tests.
    ///
    /// # Errors
    ///
    /// The first malformed line, with its line number.
    pub fn parse_dump(text: &str) -> Result<Vec<FlightEvent>, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let num = |key: &str| -> Result<u64, String> {
                v.get(key)
                    .and_then(Value::as_u64)
                    .ok_or(format!("line {}: missing u64 `{key}`", lineno + 1))
            };
            let s = |key: &str| -> Result<String, String> {
                v.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("line {}: missing string `{key}`", lineno + 1))
            };
            let kind_name = s("kind")?;
            events.push(FlightEvent {
                seq: num("seq")?,
                t_ns: num("t_ns")?,
                worker: num("worker")?,
                session: s("session")?,
                kind: FlightKind::parse(&kind_name)
                    .ok_or(format!("line {}: unknown kind `{kind_name}`", lineno + 1))?,
                detail: s("detail")?,
                ok: v
                    .get("ok")
                    .and_then(Value::as_bool)
                    .ok_or(format!("line {}: missing bool `ok`", lineno + 1))?,
                trace: num("trace")?,
            });
        }
        Ok(events)
    }

    /// The replayable tail for `session`: the head line of its most
    /// recent `open` event followed by every *acknowledged* command
    /// line after it, in order — exactly what riot-check's lockstep
    /// harness wants.
    pub fn replay_lines(events: &[FlightEvent], session: &str) -> Vec<String> {
        let mut lines = Vec::new();
        for ev in events.iter().filter(|e| e.session == session) {
            match ev.kind {
                FlightKind::Open => {
                    // A re-open restarts the tail: the dump's later
                    // commands apply to the recovered state.
                    lines.clear();
                    lines.push(ev.detail.clone());
                }
                FlightKind::Cmd if ev.ok => lines.push(ev.detail.clone()),
                _ => {}
            }
        }
        lines
    }
}

type PanicTargets = Mutex<Vec<(PathBuf, Weak<FlightRecorder>)>>;

fn panic_targets() -> &'static PanicTargets {
    static TARGETS: OnceLock<PanicTargets> = OnceLock::new();
    TARGETS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `rec` to be dumped into `root` if the process panics.
/// Installs the process-wide panic hook on first use (chaining the
/// previous hook, so default backtraces still print). Holding only a
/// [`Weak`] means a stopped server's recorder is skipped, not kept
/// alive.
pub fn register_panic_dump(root: &Path, rec: &Arc<FlightRecorder>) {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Ok(mut targets) = panic_targets().lock() {
                targets.retain(|(root, weak)| match weak.upgrade() {
                    Some(rec) => {
                        if !rec.is_empty() {
                            if let Ok(path) = rec.dump_to(root) {
                                eprintln!(
                                    "riot-serve: panic — flight recorder dumped to {}",
                                    path.display()
                                );
                            }
                        }
                        true
                    }
                    None => false,
                });
            }
            prev(info);
        }));
    });
    let mut targets = panic_targets().lock().expect("panic targets lock");
    targets.retain(|(_, weak)| weak.strong_count() > 0);
    targets.push((root.to_owned(), Arc::downgrade(rec)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_sequenced() {
        let rec = FlightRecorder::new(16); // min cap
        for i in 0..20u64 {
            rec.record(1, "s", FlightKind::Cmd, format!("line {i}"), true, 7);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 16);
        assert_eq!(rec.dropped(), 4);
        assert_eq!(events.first().unwrap().seq, 4, "oldest evicted first");
        assert_eq!(events.last().unwrap().seq, 19);
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }

    #[test]
    fn jsonl_round_trips() {
        let rec = FlightRecorder::new(64);
        rec.record(0, "alpha", FlightKind::Open, "edit TOP", true, 11);
        rec.record(2, "alpha", FlightKind::Cmd, "create nand2 \"A\"", true, 11);
        rec.record(
            2,
            "alpha",
            FlightKind::Fault,
            "serve.journal.append",
            false,
            0,
        );
        rec.record(2, "alpha", FlightKind::Crash, "torn record", false, 11);
        let parsed = FlightRecorder::parse_dump(&rec.to_jsonl()).unwrap();
        assert_eq!(parsed, rec.snapshot());
    }

    #[test]
    fn replay_lines_take_acknowledged_tail_after_last_open() {
        let rec = FlightRecorder::new(64);
        rec.record(0, "s", FlightKind::Open, "edit TOP", true, 0);
        rec.record(0, "s", FlightKind::Cmd, "create nand2 A", true, 0);
        rec.record(0, "s", FlightKind::Cmd, "create bogus B", false, 0);
        rec.record(0, "other", FlightKind::Cmd, "create nand2 Z", true, 0);
        rec.record(0, "s", FlightKind::Crash, "torn", false, 0);
        rec.record(0, "s", FlightKind::Open, "edit TOP", true, 0);
        rec.record(0, "s", FlightKind::Cmd, "create nand2 C", true, 0);
        let lines = FlightRecorder::replay_lines(&rec.snapshot(), "s");
        assert_eq!(lines, ["edit TOP", "create nand2 C"], "tail after re-open");
    }

    #[test]
    fn dump_writes_a_parseable_file() {
        let dir = std::env::temp_dir().join(format!("riot-flightrec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::new(32);
        rec.record(3, "d", FlightKind::Slow, "total=9ms queue=1ms", true, 5);
        let path = rec.dump_to(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("flightrec-"));
        let parsed = FlightRecorder::parse_dump(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, FlightKind::Slow);
        assert_eq!(parsed[0].worker, 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn panic_hook_dumps_registered_recorders() {
        let dir = std::env::temp_dir().join(format!("riot-flightrec-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Arc::new(FlightRecorder::new(32));
        rec.record(1, "p", FlightKind::Crash, "about to panic", false, 0);
        register_panic_dump(&dir, &rec);
        let res = std::thread::Builder::new()
            .name("flightrec-panicker".into())
            .spawn(|| panic!("deliberate test panic"))
            .unwrap()
            .join();
        assert!(res.is_err(), "thread panicked as arranged");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_str().unwrap().starts_with("flightrec-"))
            .collect();
        assert!(!dumps.is_empty(), "panic hook wrote a dump");
        let _ = std::fs::remove_dir_all(dir);
    }
}
