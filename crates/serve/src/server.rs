//! The server: accept loops, connection threads, and graceful drain.
//!
//! # Threading model
//!
//! One accept thread per server; one reader thread plus one writer
//! thread per connection; the fixed worker pool
//! ([`crate::SessionManager`]) behind them. The reader never blocks on
//! session work — it decodes frames, answers `ping`/`stats`/`shutdown`
//! inline, and hands everything session-shaped to the manager with a
//! clone of the writer's channel. Per-session FIFO ordering plus the
//! single writer per connection means pipelined replies can never be
//! misordered.
//!
//! # Shutdown
//!
//! `shutdown` (the wire verb) or [`ServerHandle::shutdown`] sets the
//! stop flag and wakes the acceptor with a loopback connection. The
//! acceptor stops; connection readers notice the flag at their next
//! poll tick and close; the manager drains its workers, flushing every
//! session's WAL. Nothing is dropped: replies already queued still go
//! out before the writer threads exit.

use crate::config::ServeConfig;
use crate::flightrec::{self, FlightKind};
use crate::manager::{JobKind, SessionManager};
use crate::net::{Bind, BoundAddr, Listener, Stream};
use crate::proto::{
    handshake_server, scan_frame, write_frame, FrameScan, ProtoVersion, Reply, ReplyBody, Request,
    RequestBody, TelemetryFormat,
};
use crate::telemetry::TelemetryServer;
use riot_core::{FAULT_SERVE_ACCEPT, FAULT_SERVE_FRAME_DECODE};
use riot_trace::TraceContext;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared by the accept loop and every connection thread.
struct Shared {
    cfg: ServeConfig,
    mgr: SessionManager,
    stop: AtomicBool,
    bound: BoundAddr,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] or let a client's `shutdown` verb drain
/// it and [`ServerHandle::wait`] for completion.
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    telemetry: Option<TelemetryServer>,
}

impl Server {
    /// Binds `bind`, starts the worker pool and the accept thread.
    ///
    /// # Errors
    ///
    /// Bind or WAL-root creation failures.
    pub fn start(cfg: ServeConfig, bind: &Bind) -> std::io::Result<ServerHandle> {
        riot_trace::init_from_env();
        let (listener, bound) = Listener::bind(bind)?;
        let mgr = SessionManager::start(cfg.clone())?;
        // From here on a panic anywhere in the process dumps the
        // flight recorder next to the WALs it describes.
        flightrec::register_panic_dump(&cfg.root, &cfg.flightrec);
        let telemetry = match &cfg.telemetry_addr {
            Some(addr) => Some(TelemetryServer::start(addr, Arc::clone(&cfg.flightrec))?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cfg,
            mgr,
            stop: AtomicBool::new(false),
            bound,
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("riot-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            telemetry,
        })
    }
}

impl ServerHandle {
    /// Where the server is listening (TCP `:0` resolved).
    pub fn addr(&self) -> BoundAddr {
        self.shared.bound.clone()
    }

    /// Where the telemetry HTTP listener is bound, if one was
    /// configured (`:0` resolved).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(TelemetryServer::addr)
    }

    /// True once a drain has been requested (flag set by the wire
    /// `shutdown` verb or [`ServerHandle::shutdown`]).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Requests a drain and blocks until the server is fully stopped:
    /// acceptor joined, every connection closed, every session flushed.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        wake_acceptor(&self.shared.bound);
        self.join_everything();
    }

    /// Blocks until a *client* drains the server with the `shutdown`
    /// verb, then finishes the drain and returns.
    pub fn wait(mut self) {
        self.join_everything();
    }

    fn join_everything(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut conns = self.shared.conns.lock().expect("conns lock");
                conns.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
        if let BoundAddr::Unix(path) = &self.shared.bound {
            let _ = std::fs::remove_file(path);
        }
        // The telemetry listener outlives the wire sockets — `wait`
        // blocks here for the server's whole life, and scrapers must
        // see metrics while it serves. Dropping it stops and joins its
        // thread.
        self.telemetry.take();
        // Dropping the handle's Arc releases the manager; its Drop
        // drains the worker pool and flushes every session WAL.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.stop.store(true, Ordering::Relaxed);
            wake_acceptor(&self.shared.bound);
            self.join_everything();
        }
    }
}

/// Pokes a blocked `accept(2)` with a throwaway loopback connection.
fn wake_acceptor(bound: &BoundAddr) {
    if let Ok(s) = Stream::connect(bound) {
        s.shutdown_both();
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => break,
        };
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if shared.cfg.faults.should_inject(FAULT_SERVE_ACCEPT) {
            // A fault at accept: the connection is dropped before the
            // handshake, exactly like a dying network. No session state
            // is involved yet, so nothing can corrupt.
            stream.shutdown_both();
            continue;
        }
        riot_trace::registry().counter("serve.connections").inc();
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("riot-serve-conn".into())
            .spawn(move || {
                let _span = riot_trace::span!("serve.accept");
                connection(stream, &conn_shared);
            })
            .expect("spawn connection thread");
        shared.conns.lock().expect("conns lock").push(handle);
    }
}

/// How often a blocked reader wakes to check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// One connection: handshake, then a reader loop feeding the manager
/// and a writer thread draining the reply channel.
fn connection(mut stream: Stream, shared: &Arc<Shared>) {
    let version = match handshake_server(&mut stream) {
        Ok(v) => v,
        Err(_) => {
            riot_trace::registry()
                .counter("serve.handshake.rejected")
                .inc();
            return;
        }
    };
    if version == ProtoVersion::V2 {
        riot_trace::registry().counter("serve.handshake.v2").inc();
    }
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<Reply>();
    let writer = std::thread::Builder::new()
        .name("riot-serve-writer".into())
        .spawn(move || {
            let mut out = std::io::BufWriter::new(writer_stream);
            while let Ok(reply) = reply_rx.recv() {
                if write_frame(&mut out, &reply.encode()).is_err() || out.flush().is_err() {
                    break;
                }
            }
            if let Ok(inner) = out.into_inner() {
                inner.shutdown_write();
            }
        })
        .expect("spawn writer thread");

    reader_loop(&mut stream, shared, &reply_tx, version);

    // Reader done: drop our sender so the writer exits once every
    // in-flight worker reply has drained.
    drop(reply_tx);
    let _ = writer.join();
    stream.shutdown_both();
}

/// Reads frames until EOF, corruption, read-timeout or server stop.
fn reader_loop(
    stream: &mut Stream,
    shared: &Arc<Shared>,
    reply_tx: &Sender<Reply>,
    version: ProtoVersion,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 4096];
    let mut last_byte = Instant::now();
    loop {
        // Drain every complete frame already buffered.
        loop {
            match scan_frame(&buf) {
                FrameScan::Complete { payload, consumed } => {
                    buf.drain(..consumed);
                    if !handle_frame(&payload, shared, reply_tx, version) {
                        return;
                    }
                }
                FrameScan::Incomplete => break,
                FrameScan::Corrupt(c) => {
                    riot_trace::registry().counter("serve.frame.corrupt").inc();
                    let _ = reply_tx.send(Reply {
                        id: u64::MAX,
                        body: ReplyBody::Err(format!("corrupt frame: {c}; closing")),
                    });
                    return;
                }
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // peer closed cleanly
            Ok(n) => {
                buf.extend_from_slice(&tmp[..n]);
                last_byte = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_byte.elapsed() >= shared.cfg.read_timeout {
                    riot_trace::registry().counter("serve.read.timeout").inc();
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes and dispatches one frame. Returns `false` to close the
/// connection.
fn handle_frame(
    payload: &[u8],
    shared: &Arc<Shared>,
    reply_tx: &Sender<Reply>,
    version: ProtoVersion,
) -> bool {
    let decode_start = Instant::now();
    let _span = riot_trace::span!("serve.frame", bytes = payload.len() as u64);
    riot_trace::registry().counter("serve.frames").inc();
    if shared.cfg.faults.should_inject(FAULT_SERVE_FRAME_DECODE) {
        // A fault at frame decode behaves exactly like wire corruption:
        // refuse the frame and close, before any session work happens —
        // and leave the incident in the flight recorder, dumped.
        shared
            .cfg
            .flightrec
            .record(0, "", FlightKind::Fault, "serve.frame.decode", false, 0);
        let _ = shared.cfg.flightrec.dump_to(&shared.cfg.root);
        let _ = reply_tx.send(Reply {
            id: u64::MAX,
            body: ReplyBody::Err("corrupt frame: injected decode fault; closing".to_owned()),
        });
        return false;
    }
    let (req, trace) = match Request::decode_versioned(payload, version) {
        Ok(t) => t,
        Err(e) => {
            let _ = reply_tx.send(Reply {
                id: u64::MAX,
                body: ReplyBody::Err(format!("bad request: {e}")),
            });
            return true; // framing is intact; only this request is bad
        }
    };
    // The context was *inside* the bytes we just decoded, so the decode
    // span is completed retroactively under it — the first server-side
    // child of the client's trace.
    let ctx = trace.unwrap_or(TraceContext::NONE);
    riot_trace::complete_span(
        "serve.frame.decode",
        ctx,
        decode_start,
        &[("bytes", payload.len() as u64)],
    );
    let reply_now = |body: ReplyBody| {
        let _ = reply_tx.send(Reply { id: req.id, body });
    };
    match req.body {
        RequestBody::Ping => reply_now(ReplyBody::Ok("pong".to_owned())),
        RequestBody::Stats { session: None } => reply_now(ReplyBody::Ok(shared.mgr.stats_line())),
        RequestBody::Stats {
            session: Some(session),
        } => {
            dispatch(
                shared,
                reply_tx,
                req.id,
                &session,
                JobKind::SessionStats,
                ctx,
            );
        }
        RequestBody::Telemetry { format } => {
            // Served inline from the registry: no worker round-trip, no
            // session state, safe even when every inbox is full.
            reply_now(ReplyBody::Ok(match format {
                TelemetryFormat::Prometheus => riot_trace::prometheus(),
                TelemetryFormat::Json => riot_trace::json_snapshot(),
            }));
        }
        RequestBody::Dump => {
            reply_now(match shared.cfg.flightrec.dump_to(&shared.cfg.root) {
                Ok(path) => ReplyBody::Ok(path.display().to_string()),
                Err(e) => ReplyBody::Err(format!("flight recorder dump failed: {e}")),
            });
        }
        RequestBody::Shutdown => {
            shared.stop.store(true, Ordering::Relaxed);
            wake_acceptor(&shared.bound);
            reply_now(ReplyBody::Ok("draining".to_owned()));
            return false;
        }
        RequestBody::Open { session, cell } => {
            dispatch(
                shared,
                reply_tx,
                req.id,
                &session,
                JobKind::Open { cell },
                ctx,
            );
        }
        RequestBody::Cmd { session, line } => {
            dispatch(
                shared,
                reply_tx,
                req.id,
                &session,
                JobKind::Cmd { line },
                ctx,
            );
        }
        RequestBody::Close { session } => {
            dispatch(shared, reply_tx, req.id, &session, JobKind::Close, ctx);
        }
        RequestBody::Stall { session, ms } => {
            dispatch(
                shared,
                reply_tx,
                req.id,
                &session,
                JobKind::Stall { ms },
                ctx,
            );
        }
    }
    true
}

/// Validates the session name and submits to the manager; any refusal
/// (invalid name, full inbox, shutdown) replies immediately.
fn dispatch(
    shared: &Arc<Shared>,
    reply_tx: &Sender<Reply>,
    id: u64,
    session: &str,
    kind: JobKind,
    trace: TraceContext,
) {
    if !crate::proto::valid_session_name(session) {
        let _ = reply_tx.send(Reply {
            id,
            body: ReplyBody::Err(format!(
                "invalid session name `{session}` (want [A-Za-z0-9_-]{{1,64}})"
            )),
        });
        return;
    }
    if let Err(body) = shared
        .mgr
        .submit(session, kind, id, trace, reply_tx.clone())
    {
        let _ = reply_tx.send(Reply { id, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::path::{Path, PathBuf};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("riot-serve-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_cfg(root: &Path) -> ServeConfig {
        let mut cfg = ServeConfig::new(root);
        cfg.threads = 2;
        cfg.tick = Duration::from_millis(2);
        cfg
    }

    #[test]
    fn tcp_ping_open_cmd_close() {
        let root = tmp_root("tcp");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        assert_eq!(c.open("t1", "TOP").unwrap(), "created");
        assert_eq!(c.cmd("t1", "create nand2 A").unwrap(), "instance 0");
        assert_eq!(c.cmd("t1", "translate A 5000 0").unwrap(), "done");
        assert_eq!(c.close_session("t1").unwrap(), "closed");
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn unix_socket_and_wire_shutdown() {
        let root = tmp_root("unix");
        let sock = root.join("srv.sock");
        std::fs::create_dir_all(&root).unwrap();
        let h = Server::start(test_cfg(&root), &Bind::Unix(sock.clone())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.open("u1", "TOP").unwrap(), "created");
        assert!(c.stats().unwrap().contains("sessions"));
        assert_eq!(c.shutdown_server().unwrap(), "draining");
        h.wait();
        assert!(!sock.exists(), "socket file removed on drain");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn session_stats_report_engine_counters() {
        let root = tmp_root("sstats");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.open("st1", "TOP").unwrap(), "created");
        assert_eq!(c.cmd("st1", "create nand2 A").unwrap(), "instance 0");
        assert_eq!(c.cmd("st1", "translate A 5000 0").unwrap(), "done");
        let line = c.stats_session("st1").unwrap();
        assert!(line.contains("applied 2"), "{line}");
        assert!(line.contains("cache_hits"), "{line}");
        assert!(line.contains("hit_rate"), "{line}");
        assert!(line.contains("damage_rects"), "{line}");
        assert!(line.contains("damage_coalesced"), "{line}");
        // The pool-wide line still answers the bare verb.
        assert!(c.stats().unwrap().contains("sessions"), "pool-wide stats");
        // A session that was never opened is an error, not a panic.
        let err = c.stats_session("never-opened").unwrap_err();
        assert!(err.contains("no such session"), "{err}");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let root = tmp_root("magic");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut s = Stream::connect(&h.addr()).unwrap();
        s.write_all(b"NOTRIOT!").unwrap();
        let mut b = [0u8; 1];
        // Server closes without echoing the magic.
        assert!(matches!(s.read(&mut b), Ok(0) | Err(_)));
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn invalid_session_names_are_refused() {
        let root = tmp_root("names");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        let err = c.open("../evil", "TOP").unwrap_err();
        assert!(err.contains("invalid session name"), "{err}");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn accept_fault_drops_the_connection_not_the_server() {
        let root = tmp_root("afault");
        let cfg = test_cfg(&root);
        cfg.faults.arm(riot_core::FAULT_SERVE_ACCEPT, 0);
        let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        // First connection dies at accept…
        assert!(Client::connect(&h.addr()).is_err());
        // …the next one is fine.
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }
}
