//! The server: the readiness-driven connection plane (default) and the
//! thread-per-connection fallback, plus graceful drain.
//!
//! # Io models
//!
//! **`poll` (default).** One event-loop thread owns every connection:
//! the listener, a wakeup pipe and each connection's socket are
//! multiplexed through `poll(2)` ([`crate::net::PollSet`]). Sockets are
//! non-blocking; each connection is a pure [`Connection`] state machine
//! (`handshaking → reading ⇄ backlogged → draining → closed`) that
//! scans frames **in place** over its receive scratch — request decode
//! borrows the payload bytes ([`RequestRef`]) and only dispatch
//! materializes owned strings. Replies come back from the worker pool
//! over one routed channel tagged with the connection token
//! ([`ReplyTx::routed`]); every send kicks the wakeup pipe so a blocked
//! `poll(2)` learns immediately. Write backlogs are bounded: past a
//! quarter of [`crate::ServeConfig::conn_backlog_max`] the connection
//! stops reading (slow readers throttle themselves), past the cap it is
//! evicted (`serve.conn.evicted`).
//!
//! **`threads`.** The original model — one reader thread plus one
//! writer thread per connection — kept behind `--io-model threads` as
//! the blocking fallback. Its reader also scans frames in place now;
//! only dispatch copies.
//!
//! Per-session FIFO ordering in the manager, plus a single writer per
//! connection (the event loop's backlog or the writer thread), means
//! pipelined replies can never be misordered.
//!
//! # Shutdown
//!
//! `shutdown` (the wire verb) or [`ServerHandle::shutdown`] calls
//! [`request_stop`]: the stop flag is set and the wakeup pipe kicked,
//! so the poll loop wakes **immediately** (no tick worst-case), drains
//! every connection's queued replies and exits once the last one
//! closes. Under the threads model the acceptor is woken with a
//! loopback connection and every connection's read side is shut down —
//! blocked readers return instantly instead of waiting out their poll
//! tick. Nothing is dropped either way: replies already queued still go
//! out before the sockets close.

use crate::config::{IoModel, ServeConfig};
use crate::conn::{ConnEvent, Connection, QueueOutcome};
use crate::flightrec::{self, FlightKind};
use crate::manager::{JobKind, ReplyTx, SessionManager};
use crate::net::{Bind, BoundAddr, Interest, Listener, PollSet, Stream, WakePipe};
use crate::proto::{
    scan_frame_ref, write_frame, FrameScanRef, ProtoVersion, Reply, ReplyBody, RequestBodyRef,
    RequestRef, TelemetryFormat, SRV_MAGIC, SRV_MAGIC_V2,
};
use crate::telemetry::TelemetryServer;
use riot_core::{
    FAULT_SERVE_ACCEPT, FAULT_SERVE_CONN_BACKLOG, FAULT_SERVE_FRAME_DECODE, FAULT_SERVE_POLL_WAKEUP,
};
use riot_trace::TraceContext;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared by the accept/event-loop thread and every connection.
struct Shared {
    cfg: ServeConfig,
    mgr: SessionManager,
    stop: AtomicBool,
    bound: BoundAddr,
    /// Event-loop wakeup pipe: kicked on shutdown and by every routed
    /// reply becoming ready.
    wake: Arc<WakePipe>,
    /// Threads model: connection-thread join handles.
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Threads model: one cloned stream per live connection so
    /// [`request_stop`] can shut their read sides down immediately.
    conn_streams: Mutex<HashMap<u64, Stream>>,
    next_conn: AtomicU64,
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] or let a client's `shutdown` verb drain
/// it and [`ServerHandle::wait`] for completion.
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    telemetry: Option<TelemetryServer>,
}

impl Server {
    /// Binds `bind`, starts the worker pool and the io thread (the
    /// poll event loop, or the accept thread under `--io-model
    /// threads`).
    ///
    /// # Errors
    ///
    /// Bind, wakeup-pipe, or WAL-root creation failures.
    pub fn start(cfg: ServeConfig, bind: &Bind) -> std::io::Result<ServerHandle> {
        riot_trace::init_from_env();
        let (listener, bound) = Listener::bind(bind)?;
        let wake = Arc::new(WakePipe::new()?);
        let mgr = SessionManager::start(cfg.clone())?;
        // From here on a panic anywhere in the process dumps the
        // flight recorder next to the WALs it describes.
        flightrec::register_panic_dump(&cfg.root, &cfg.flightrec);
        let telemetry = match &cfg.telemetry_addr {
            Some(addr) => Some(TelemetryServer::start(addr, Arc::clone(&cfg.flightrec))?),
            None => None,
        };
        let io_model = cfg.io_model;
        let shared = Arc::new(Shared {
            cfg,
            mgr,
            stop: AtomicBool::new(false),
            bound,
            wake,
            conns: Mutex::new(Vec::new()),
            conn_streams: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
        });
        let io_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("riot-serve-io".into())
            .spawn(move || match io_model {
                IoModel::Poll => poll_loop(listener, &io_shared),
                IoModel::Threads => accept_loop(&listener, &io_shared),
            })
            .expect("spawn io thread");
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            telemetry,
        })
    }
}

impl ServerHandle {
    /// Where the server is listening (TCP `:0` resolved).
    pub fn addr(&self) -> BoundAddr {
        self.shared.bound.clone()
    }

    /// Where the telemetry HTTP listener is bound, if one was
    /// configured (`:0` resolved).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(TelemetryServer::addr)
    }

    /// True once a drain has been requested (flag set by the wire
    /// `shutdown` verb or [`ServerHandle::shutdown`]).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Requests a drain and blocks until the server is fully stopped:
    /// io thread joined, every connection closed, every session
    /// flushed.
    pub fn shutdown(mut self) {
        request_stop(&self.shared);
        self.join_everything();
    }

    /// Blocks until a *client* drains the server with the `shutdown`
    /// verb, then finishes the drain and returns.
    pub fn wait(mut self) {
        self.join_everything();
    }

    fn join_everything(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut conns = self.shared.conns.lock().expect("conns lock");
                conns.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
        if let BoundAddr::Unix(path) = &self.shared.bound {
            let _ = std::fs::remove_file(path);
        }
        // The telemetry listener outlives the wire sockets — `wait`
        // blocks here for the server's whole life, and scrapers must
        // see metrics while it serves. Dropping it stops and joins its
        // thread.
        self.telemetry.take();
        // Dropping the handle's Arc releases the manager; its Drop
        // drains the worker pool and flushes every session WAL.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            request_stop(&self.shared);
            self.join_everything();
        }
    }
}

/// Sets the stop flag and wakes whoever is blocked on io: the poll
/// loop via its wakeup pipe; under the threads model also the blocked
/// `accept(2)` (loopback poke) and every connection reader (read-side
/// shutdown — their next read returns immediately, while queued
/// replies still flush out the intact write side).
fn request_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::Relaxed);
    shared.wake.wake();
    if shared.cfg.io_model == IoModel::Threads {
        wake_acceptor(&shared.bound);
        for s in shared
            .conn_streams
            .lock()
            .expect("conn streams lock")
            .values()
        {
            s.shutdown_read();
        }
    }
}

/// Pokes a blocked `accept(2)` with a throwaway loopback connection.
fn wake_acceptor(bound: &BoundAddr) {
    if let Ok(s) = Stream::connect(bound) {
        s.shutdown_both();
    }
}

// ----------------------------------------------------------------------
// The poll io-model: one readiness event loop owns every connection
// ----------------------------------------------------------------------

/// One live connection inside the event loop.
struct PollConn {
    stream: Stream,
    conn: Connection,
    reply: ReplyTx,
    /// Last byte of progress in either direction — read or write —
    /// for timeout eviction.
    last_progress: Instant,
}

/// The readiness-driven event loop: listener, wakeup pipe and every
/// connection multiplexed through one `poll(2)` set.
fn poll_loop(listener: Listener, shared: &Arc<Shared>) {
    let reg = riot_trace::registry();
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let (reply_tx, reply_rx) = channel::<(u64, Reply)>();
    let mut conns: HashMap<u64, PollConn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut pollset = PollSet::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut stopping = false;
    loop {
        let iter_start = Instant::now();
        if !stopping && shared.stop.load(Ordering::Relaxed) {
            stopping = true;
            for pc in conns.values_mut() {
                pc.conn.begin_drain();
            }
        }
        conns.retain(|_, pc| {
            if pc.conn.is_closed() {
                pc.stream.shutdown_both();
                false
            } else {
                true
            }
        });
        if stopping && conns.is_empty() {
            break;
        }

        // Build this iteration's poll set: wakeup pipe, listener
        // (unless draining), and every connection by current interest.
        pollset.clear();
        let wake_idx = pollset.register(shared.wake.read_fd(), Interest::READ);
        let listen_idx = if stopping {
            None
        } else {
            Some(pollset.register(listener.raw_fd(), Interest::READ))
        };
        let mut regs: Vec<(u64, usize)> = Vec::with_capacity(conns.len());
        for (tok, pc) in &conns {
            let interest = Interest {
                read: pc.conn.wants_read(),
                write: pc.conn.wants_write(),
            };
            if interest.read || interest.write {
                regs.push((*tok, pollset.register(pc.stream.raw_fd(), interest)));
            }
        }
        let _ = pollset.wait(Some(shared.cfg.tick));

        // Wakeup pipe: worker replies became ready or a stop was
        // requested. The fault site models a *lost* wakeup — the pipe
        // stays undrained and reply routing is skipped one iteration,
        // so delivery must ride the tick fallback instead.
        let mut route_replies = true;
        if pollset.readiness(wake_idx).readable {
            if shared.cfg.faults.should_inject(FAULT_SERVE_POLL_WAKEUP) {
                shared.cfg.flightrec.record(
                    0,
                    "",
                    FlightKind::Fault,
                    "serve.poll.wakeup",
                    false,
                    0,
                );
                reg.counter("serve.poll.wakeup.lost").inc();
                route_replies = false;
            } else {
                shared.wake.drain();
                reg.counter("serve.poll.wakeups").inc();
            }
        }
        if route_replies {
            while let Ok((tok, reply)) = reply_rx.try_recv() {
                let Some(pc) = conns.get_mut(&tok) else {
                    continue; // connection evicted while the job ran
                };
                if shared.cfg.faults.should_inject(FAULT_SERVE_CONN_BACKLOG) {
                    // The injected "client that never drains": evict
                    // rather than buffer unboundedly. Durability is
                    // untouched — what was acknowledged is on disk.
                    shared.cfg.flightrec.record(
                        reply.id,
                        "",
                        FlightKind::Fault,
                        "serve.conn.backlog",
                        false,
                        0,
                    );
                    reg.counter("serve.conn.evicted").inc();
                    pc.conn.force_close();
                    continue;
                }
                if pc.conn.deliver_reply(&reply) == QueueOutcome::Overflow {
                    reg.counter("serve.conn.evicted").inc();
                }
            }
        }

        // Accept everything pending.
        if listen_idx.is_some_and(|idx| pollset.readiness(idx).readable) {
            accept_ready(&listener, shared, &reply_tx, &mut next_token, &mut conns);
        }

        // Per-connection readiness: pull bytes, then scan/dispatch.
        for (tok, idx) in &regs {
            let r = pollset.readiness(*idx);
            let Some(pc) = conns.get_mut(tok) else {
                continue;
            };
            if r.error && !r.readable {
                pc.conn.force_close();
                continue;
            }
            if r.readable && pc.conn.wants_read() {
                read_ready(pc, &mut tmp);
            }
        }

        // Scan/dispatch for every connection — not just the ones that
        // read this iteration: a connection leaving `backlogged` must
        // resume dispatching its already-buffered frames.
        for pc in conns.values_mut() {
            process_events(shared, pc);
            flush_writes(pc);
        }

        evict_stalled(shared, &mut conns);

        let mut backlog_total = 0usize;
        for pc in conns.values() {
            backlog_total += pc.conn.backlog_bytes();
        }
        reg.gauge("serve.conns.open").set(conns.len() as i64);
        reg.gauge("serve.conn.backlog_bytes")
            .set(backlog_total as i64);
        reg.histogram("serve.poll.loop_iter_ns")
            .record(iter_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    reg.gauge("serve.conns.open").set(0);
    reg.gauge("serve.conn.backlog_bytes").set(0);
}

/// Drains the listener's accept queue (non-blocking).
fn accept_ready(
    listener: &Listener,
    shared: &Arc<Shared>,
    reply_tx: &Sender<(u64, Reply)>,
    next_token: &mut u64,
    conns: &mut HashMap<u64, PollConn>,
) {
    loop {
        match listener.accept() {
            Ok(stream) => {
                if shared.cfg.faults.should_inject(FAULT_SERVE_ACCEPT) {
                    // A fault at accept: the connection is dropped
                    // before the handshake, exactly like a dying
                    // network. No session state is involved yet.
                    stream.shutdown_both();
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    stream.shutdown_both();
                    continue;
                }
                riot_trace::registry().counter("serve.connections").inc();
                let token = *next_token;
                *next_token += 1;
                let reply = ReplyTx::routed(reply_tx.clone(), token, Arc::clone(&shared.wake));
                conns.insert(
                    token,
                    PollConn {
                        stream,
                        conn: Connection::new(shared.cfg.conn_backlog_max),
                        reply,
                        last_progress: Instant::now(),
                    },
                );
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Pulls every available byte off a readable socket into the
/// connection's scratch buffer.
fn read_ready(pc: &mut PollConn, tmp: &mut [u8]) {
    loop {
        match pc.stream.read(tmp) {
            Ok(0) => {
                // Peer closed cleanly: no more requests, but in-flight
                // replies still flush before the socket closes.
                pc.conn.begin_drain();
                break;
            }
            Ok(n) => {
                pc.conn.ingest(&tmp[..n]);
                pc.last_progress = Instant::now();
                if n < tmp.len() {
                    break;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                pc.conn.force_close();
                break;
            }
        }
    }
}

/// Scans buffered bytes into handshake/frame events and dispatches
/// them. Zero-copy: each frame's payload is decoded in place.
fn process_events(shared: &Arc<Shared>, pc: &mut PollConn) {
    let reg = riot_trace::registry();
    loop {
        match pc.conn.next_event() {
            None => return,
            Some(ConnEvent::Handshake(v)) => {
                if v == ProtoVersion::V2 {
                    reg.counter("serve.handshake.v2").inc();
                }
            }
            Some(ConnEvent::BadMagic) => {
                reg.counter("serve.handshake.rejected").inc();
                return;
            }
            Some(ConnEvent::Frame { off, len }) => {
                reg.counter("serve.conn.decode.in_place").inc();
                pc.conn.note_dispatched();
                let version = pc.conn.version().unwrap_or(ProtoVersion::V1);
                let keep =
                    handle_frame(pc.conn.frame_payload(off, len), shared, &pc.reply, version);
                if !keep {
                    pc.conn.begin_drain();
                    return;
                }
            }
            Some(ConnEvent::Corrupt(c)) => {
                reg.counter("serve.frame.corrupt").inc();
                if pc.conn.queue_reply(&Reply {
                    id: u64::MAX,
                    body: ReplyBody::Err(format!("corrupt frame: {c}; closing")),
                }) == QueueOutcome::Overflow
                {
                    reg.counter("serve.conn.evicted").inc();
                }
                return;
            }
        }
    }
}

/// Writes backlog bytes until the socket would block.
fn flush_writes(pc: &mut PollConn) {
    while pc.conn.wants_write() {
        match pc.stream.write(pc.conn.writable_bytes()) {
            Ok(0) => {
                pc.conn.force_close();
                break;
            }
            Ok(n) => {
                pc.conn.advance_write(n);
                pc.last_progress = Instant::now();
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                pc.conn.force_close();
                break;
            }
        }
    }
}

/// Evicts connections that made no progress in either direction for
/// too long: half-open peers that never handshook, idle readers past
/// `read_timeout`, and backlogged peers that never drain.
fn evict_stalled(shared: &Arc<Shared>, conns: &mut HashMap<u64, PollConn>) {
    let reg = riot_trace::registry();
    let now = Instant::now();
    for pc in conns.values_mut() {
        if pc.conn.is_closed() {
            continue;
        }
        let reading = pc.conn.wants_read();
        let limit = if reading {
            shared.cfg.read_timeout
        } else {
            shared.cfg.write_timeout.max(shared.cfg.read_timeout)
        };
        if now.duration_since(pc.last_progress) >= limit {
            if reading {
                reg.counter("serve.read.timeout").inc();
            }
            reg.counter("serve.conn.evicted").inc();
            pc.conn.force_close();
        }
    }
}

// ----------------------------------------------------------------------
// The threads io-model: reader + writer thread per connection
// ----------------------------------------------------------------------

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => break,
        };
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if shared.cfg.faults.should_inject(FAULT_SERVE_ACCEPT) {
            stream.shutdown_both();
            continue;
        }
        riot_trace::registry().counter("serve.connections").inc();
        let token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conn_streams
                .lock()
                .expect("conn streams lock")
                .insert(token, clone);
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("riot-serve-conn".into())
            .spawn(move || {
                let _span = riot_trace::span!("serve.accept");
                connection(stream, &conn_shared);
                conn_shared
                    .conn_streams
                    .lock()
                    .expect("conn streams lock")
                    .remove(&token);
            })
            .expect("spawn connection thread");
        shared.conns.lock().expect("conns lock").push(handle);
    }
}

/// How often a blocked reader wakes to check the stop flag. Shutdown
/// no longer waits on this — [`request_stop`] shuts read sides down —
/// but idle-timeout accounting still ticks at this rate.
const POLL_TICK: Duration = Duration::from_millis(50);

/// One connection: handshake, then a reader loop feeding the manager
/// and a writer thread draining the reply channel.
fn connection(mut stream: Stream, shared: &Arc<Shared>) {
    // Timeouts go on *before* the handshake: a half-open peer that
    // never sends its magic is evicted by the deadline in
    // `read_magic`, instead of pinning this thread forever.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let Some(version) = read_magic(&mut stream, shared) else {
        return;
    };
    if version == ProtoVersion::V2 {
        riot_trace::registry().counter("serve.handshake.v2").inc();
    }
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<Reply>();
    let writer = std::thread::Builder::new()
        .name("riot-serve-writer".into())
        .spawn(move || writer_loop(writer_stream, &reply_rx))
        .expect("spawn writer thread");

    let reply_tx = ReplyTx::direct(reply_tx);
    reader_loop(&mut stream, shared, &reply_tx, version);

    // Reader done: drop our sender so the writer exits once every
    // in-flight worker reply has drained.
    drop(reply_tx);
    let _ = writer.join();
    stream.shutdown_both();
}

fn writer_loop(stream: Stream, reply_rx: &Receiver<Reply>) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(reply) = reply_rx.recv() {
        if write_frame(&mut out, &reply.encode()).is_err() || out.flush().is_err() {
            break;
        }
    }
    if let Ok(inner) = out.into_inner() {
        inner.shutdown_write();
    }
}

/// Reads the 8-byte magic with a deadline, checking the stop flag each
/// poll tick, and echoes it back. `None` means evict the connection
/// (EOF, timeout, stop, io error, or unknown magic).
fn read_magic(stream: &mut Stream, shared: &Shared) -> Option<ProtoVersion> {
    let mut magic = [0u8; 8];
    let mut got = 0usize;
    let deadline = Instant::now() + shared.cfg.read_timeout;
    while got < 8 {
        if shared.stop.load(Ordering::Relaxed) {
            return None;
        }
        match stream.read(&mut magic[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if Instant::now() >= deadline {
                    riot_trace::registry().counter("serve.read.timeout").inc();
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    let version = if &magic == SRV_MAGIC {
        ProtoVersion::V1
    } else if &magic == SRV_MAGIC_V2 {
        ProtoVersion::V2
    } else {
        riot_trace::registry()
            .counter("serve.handshake.rejected")
            .inc();
        return None;
    };
    stream.write_all(version.magic()).ok()?;
    Some(version)
}

/// Reads frames until EOF, corruption, read-timeout or server stop.
/// Frames are scanned in place — the payload handed to `handle_frame`
/// borrows the receive buffer; only dispatch copies.
fn reader_loop(
    stream: &mut Stream,
    shared: &Arc<Shared>,
    reply_tx: &ReplyTx,
    version: ProtoVersion,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 4096];
    let mut last_byte = Instant::now();
    loop {
        // Drain every complete frame already buffered.
        loop {
            let (keep, consumed) = match scan_frame_ref(&buf) {
                FrameScanRef::Complete { payload, consumed } => {
                    riot_trace::registry()
                        .counter("serve.conn.decode.in_place")
                        .inc();
                    (handle_frame(payload, shared, reply_tx, version), consumed)
                }
                FrameScanRef::Incomplete => break,
                FrameScanRef::Corrupt(c) => {
                    riot_trace::registry().counter("serve.frame.corrupt").inc();
                    reply_tx.send(Reply {
                        id: u64::MAX,
                        body: ReplyBody::Err(format!("corrupt frame: {c}; closing")),
                    });
                    return;
                }
            };
            buf.drain(..consumed);
            if !keep {
                return;
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // peer closed cleanly
            Ok(n) => {
                buf.extend_from_slice(&tmp[..n]);
                last_byte = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_byte.elapsed() >= shared.cfg.read_timeout {
                    riot_trace::registry().counter("serve.read.timeout").inc();
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

// ----------------------------------------------------------------------
// Frame handling (shared by both io models)
// ----------------------------------------------------------------------

/// Decodes and dispatches one frame. Returns `false` to close the
/// connection. Decode is zero-copy ([`RequestRef`] borrows `payload`);
/// only the dispatch arms materialize owned strings for the worker
/// pool.
fn handle_frame(
    payload: &[u8],
    shared: &Arc<Shared>,
    reply_tx: &ReplyTx,
    version: ProtoVersion,
) -> bool {
    let decode_start = Instant::now();
    let _span = riot_trace::span!("serve.frame", bytes = payload.len() as u64);
    riot_trace::registry().counter("serve.frames").inc();
    if shared.cfg.faults.should_inject(FAULT_SERVE_FRAME_DECODE) {
        // A fault at frame decode behaves exactly like wire corruption:
        // refuse the frame and close, before any session work happens —
        // and leave the incident in the flight recorder, dumped.
        shared
            .cfg
            .flightrec
            .record(0, "", FlightKind::Fault, "serve.frame.decode", false, 0);
        let _ = shared.cfg.flightrec.dump_to(&shared.cfg.root);
        reply_tx.send(Reply {
            id: u64::MAX,
            body: ReplyBody::Err("corrupt frame: injected decode fault; closing".to_owned()),
        });
        return false;
    }
    let (req, trace) = match RequestRef::decode_versioned(payload, version) {
        Ok(t) => t,
        Err(e) => {
            reply_tx.send(Reply {
                id: u64::MAX,
                body: ReplyBody::Err(format!("bad request: {e}")),
            });
            return true; // framing is intact; only this request is bad
        }
    };
    // The context was *inside* the bytes we just decoded, so the decode
    // span is completed retroactively under it — the first server-side
    // child of the client's trace.
    let ctx = trace.unwrap_or(TraceContext::NONE);
    riot_trace::complete_span(
        "serve.frame.decode",
        ctx,
        decode_start,
        &[("bytes", payload.len() as u64)],
    );
    let id = req.id;
    let reply_now = |body: ReplyBody| {
        reply_tx.send(Reply { id, body });
    };
    match req.body {
        RequestBodyRef::Ping => reply_now(ReplyBody::Ok("pong".to_owned())),
        RequestBodyRef::Stats { session: None } => {
            reply_now(ReplyBody::Ok(shared.mgr.stats_line()));
        }
        RequestBodyRef::Stats {
            session: Some(session),
        } => {
            dispatch(shared, reply_tx, id, session, JobKind::SessionStats, ctx);
        }
        RequestBodyRef::Telemetry { format } => {
            // Served inline from the registry: no worker round-trip, no
            // session state, safe even when every inbox is full.
            reply_now(ReplyBody::Ok(match format {
                TelemetryFormat::Prometheus => riot_trace::prometheus(),
                TelemetryFormat::Json => riot_trace::json_snapshot(),
            }));
        }
        RequestBodyRef::Dump => {
            reply_now(match shared.cfg.flightrec.dump_to(&shared.cfg.root) {
                Ok(path) => ReplyBody::Ok(path.display().to_string()),
                Err(e) => ReplyBody::Err(format!("flight recorder dump failed: {e}")),
            });
        }
        RequestBodyRef::Shutdown => {
            request_stop(shared);
            reply_now(ReplyBody::Ok("draining".to_owned()));
            return false;
        }
        RequestBodyRef::Open { session, cell } => {
            dispatch(
                shared,
                reply_tx,
                id,
                session,
                JobKind::Open {
                    cell: cell.to_owned(),
                },
                ctx,
            );
        }
        RequestBodyRef::Cmd { session, line } => {
            dispatch(
                shared,
                reply_tx,
                id,
                session,
                JobKind::Cmd {
                    line: line.split_whitespace().collect::<Vec<_>>().join(" "),
                },
                ctx,
            );
        }
        RequestBodyRef::Close { session } => {
            dispatch(shared, reply_tx, id, session, JobKind::Close, ctx);
        }
        RequestBodyRef::Stall { session, ms } => {
            dispatch(shared, reply_tx, id, session, JobKind::Stall { ms }, ctx);
        }
    }
    true
}

/// Validates the session name and submits to the manager; any refusal
/// (invalid name, full inbox, shutdown) replies immediately.
fn dispatch(
    shared: &Arc<Shared>,
    reply_tx: &ReplyTx,
    id: u64,
    session: &str,
    kind: JobKind,
    trace: TraceContext,
) {
    if !crate::proto::valid_session_name(session) {
        reply_tx.send(Reply {
            id,
            body: ReplyBody::Err(format!(
                "invalid session name `{session}` (want [A-Za-z0-9_-]{{1,64}})"
            )),
        });
        return;
    }
    if let Err(body) = shared
        .mgr
        .submit(session, kind, id, trace, reply_tx.clone())
    {
        reply_tx.send(Reply { id, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::{decode_frame_eof, encode_frame, Request, RequestBody};
    use std::path::{Path, PathBuf};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("riot-serve-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_cfg(root: &Path) -> ServeConfig {
        let mut cfg = ServeConfig::new(root);
        cfg.threads = 2;
        cfg.tick = Duration::from_millis(2);
        cfg
    }

    #[test]
    fn tcp_ping_open_cmd_close() {
        let root = tmp_root("tcp");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        assert_eq!(c.open("t1", "TOP").unwrap(), "created");
        assert_eq!(c.cmd("t1", "create nand2 A").unwrap(), "instance 0");
        assert_eq!(c.cmd("t1", "translate A 5000 0").unwrap(), "done");
        assert_eq!(c.close_session("t1").unwrap(), "closed");
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn threads_model_still_serves() {
        let root = tmp_root("thr");
        let mut cfg = test_cfg(&root);
        cfg.io_model = IoModel::Threads;
        let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        assert_eq!(c.open("t2", "TOP").unwrap(), "created");
        assert_eq!(c.cmd("t2", "create nand2 A").unwrap(), "instance 0");
        assert_eq!(c.close_session("t2").unwrap(), "closed");
        drop(c);
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn unix_socket_and_wire_shutdown() {
        let root = tmp_root("unix");
        let sock = root.join("srv.sock");
        std::fs::create_dir_all(&root).unwrap();
        let h = Server::start(test_cfg(&root), &Bind::Unix(sock.clone())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.open("u1", "TOP").unwrap(), "created");
        assert!(c.stats().unwrap().contains("sessions"));
        assert_eq!(c.shutdown_server().unwrap(), "draining");
        h.wait();
        assert!(!sock.exists(), "socket file removed on drain");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn session_stats_report_engine_counters() {
        let root = tmp_root("sstats");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.open("st1", "TOP").unwrap(), "created");
        assert_eq!(c.cmd("st1", "create nand2 A").unwrap(), "instance 0");
        assert_eq!(c.cmd("st1", "translate A 5000 0").unwrap(), "done");
        let line = c.stats_session("st1").unwrap();
        assert!(line.contains("applied 2"), "{line}");
        assert!(line.contains("cache_hits"), "{line}");
        assert!(line.contains("hit_rate"), "{line}");
        assert!(line.contains("damage_rects"), "{line}");
        assert!(line.contains("damage_coalesced"), "{line}");
        // The pool-wide line still answers the bare verb.
        assert!(c.stats().unwrap().contains("sessions"), "pool-wide stats");
        // A session that was never opened is an error, not a panic.
        let err = c.stats_session("never-opened").unwrap_err();
        assert!(err.contains("no such session"), "{err}");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let root = tmp_root("magic");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut s = Stream::connect(&h.addr()).unwrap();
        s.write_all(b"NOTRIOT!").unwrap();
        let mut b = [0u8; 1];
        // Server closes without echoing the magic.
        assert!(matches!(s.read(&mut b), Ok(0) | Err(_)));
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_frame_gets_an_error_reply_then_close() {
        let root = tmp_root("corrupt");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut s = Stream::connect(&h.addr()).unwrap();
        s.write_all(SRV_MAGIC).unwrap();
        let mut echo = [0u8; 8];
        s.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, SRV_MAGIC);
        let mut frame = encode_frame(
            &Request {
                id: 1,
                body: RequestBody::Ping,
            }
            .encode(),
        );
        let last = frame.len() - 1;
        frame[last] ^= 0x40; // bad checksum
        s.write_all(&frame).unwrap();
        let mut wire = Vec::new();
        s.read_to_end(&mut wire).unwrap(); // server replies, then closes
        let (payload, _) = decode_frame_eof(&wire).unwrap();
        let reply = Reply::decode(&payload).unwrap();
        assert_eq!(reply.id, u64::MAX);
        assert!(
            matches!(reply.body, ReplyBody::Err(ref m) if m.contains("corrupt frame")),
            "{reply:?}"
        );
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn invalid_session_names_are_refused() {
        let root = tmp_root("names");
        let h = Server::start(test_cfg(&root), &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let mut c = Client::connect(&h.addr()).unwrap();
        let err = c.open("../evil", "TOP").unwrap_err();
        assert!(err.contains("invalid session name"), "{err}");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn accept_fault_drops_the_connection_not_the_server() {
        let root = tmp_root("afault");
        let cfg = test_cfg(&root);
        cfg.faults.arm(riot_core::FAULT_SERVE_ACCEPT, 0);
        let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
        // First connection dies at accept…
        assert!(Client::connect(&h.addr()).is_err());
        // …the next one is fine.
        let mut c = Client::connect(&h.addr()).unwrap();
        assert_eq!(c.ping().unwrap(), "pong");
        h.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }
}
