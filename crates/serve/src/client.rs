//! A small blocking client for the `RIOTSRV1`/`RIOTSRV2` protocol,
//! used by the CLI, the bench load generator and the integration
//! tests.
//!
//! Two styles compose:
//!
//! * **call** — [`Client::request`] sends one request and blocks for
//!   its reply (ids still checked);
//! * **pipeline** — [`Client::send`] queues requests without waiting,
//!   [`Client::recv`] pulls replies in order. The server guarantees
//!   per-session FIFO, so a pipelining client sees its ids echo back
//!   in submission order.
//!
//! [`Client::connect`] announces `RIOTSRV2` and downgrades cleanly if
//! the server echoes v1; [`Client::connect_v1`] pins the old dialect
//! (compat tests, old servers). On a v2 connection,
//! [`Client::send_traced`] attaches a [`TraceContext`] so the server
//! continues the caller's trace through its own spans.

use crate::net::{BoundAddr, Stream};
use crate::proto::{
    handshake_client, handshake_client_v2, read_frame_into, write_frame, ProtoError, ProtoVersion,
    Reply, ReplyBody, Request, RequestBody, TelemetryFormat,
};
use riot_trace::TraceContext;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// One connection to a riot-serve server.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    next_id: u64,
    version: ProtoVersion,
    /// Reply-payload scratch, reused across [`Client::recv`] calls so
    /// a pipelining client decodes replies without per-frame
    /// allocation.
    scratch: Vec<u8>,
}

impl Client {
    /// Connects and handshakes (v2, degrading to v1 if the server
    /// insists).
    ///
    /// # Errors
    ///
    /// Connect or handshake failures.
    pub fn connect(addr: &BoundAddr) -> Result<Client, ProtoError> {
        let stream = Stream::connect(addr)?;
        Client::finish(stream)
    }

    /// Connects to a TCP address string (e.g. `127.0.0.1:7117`).
    ///
    /// # Errors
    ///
    /// Connect or handshake failures.
    pub fn connect_tcp(addr: &str) -> Result<Client, ProtoError> {
        Client::finish(Stream::connect_tcp(addr)?)
    }

    /// Connects to a Unix socket path.
    ///
    /// # Errors
    ///
    /// Connect or handshake failures.
    pub fn connect_unix(path: &Path) -> Result<Client, ProtoError> {
        Client::finish(Stream::connect_unix(path)?)
    }

    /// Connects speaking strictly `RIOTSRV1` — what a pre-revision
    /// client does. Trace contexts are silently dropped on this
    /// connection.
    ///
    /// # Errors
    ///
    /// Connect or handshake failures.
    pub fn connect_v1(addr: &BoundAddr) -> Result<Client, ProtoError> {
        let mut stream = Stream::connect(addr)?;
        handshake_client(&mut stream)?;
        Ok(Client {
            stream,
            next_id: 1,
            version: ProtoVersion::V1,
            scratch: Vec::new(),
        })
    }

    fn finish(mut stream: Stream) -> Result<Client, ProtoError> {
        let version = handshake_client_v2(&mut stream)?;
        Ok(Client {
            stream,
            next_id: 1,
            version,
            scratch: Vec::new(),
        })
    }

    /// The protocol revision this connection negotiated.
    pub fn version(&self) -> ProtoVersion {
        self.version
    }

    /// Sets the socket read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Queues one request without waiting; returns its id.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ProtoError> {
        self.send_traced(body, TraceContext::NONE)
    }

    /// Queues one request carrying a trace context, so the server's
    /// decode/queue/apply/flush spans join the caller's trace. On a v1
    /// connection the context is dropped (the old wire form has
    /// nowhere to put it).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_traced(&mut self, body: RequestBody, ctx: TraceContext) -> Result<u64, ProtoError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request { id, body };
        let trace = if ctx.is_none() { None } else { Some(ctx) };
        write_frame(&mut self.stream, &req.encode_versioned(self.version, trace))?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Receives the next reply.
    ///
    /// # Errors
    ///
    /// Socket/framing failures or malformed reply payloads.
    pub fn recv(&mut self) -> Result<Reply, ProtoError> {
        read_frame_into(&mut self.stream, &mut self.scratch)?;
        Reply::decode(&self.scratch).map_err(ProtoError::BadPayload)
    }

    /// Sends one request and blocks for its reply, checking the echoed
    /// id.
    ///
    /// # Errors
    ///
    /// Socket failures, or a reply id that does not match (a server
    /// bug or a protocol desync — the connection should be dropped).
    pub fn request(&mut self, body: RequestBody) -> Result<Reply, ProtoError> {
        let id = self.send(body)?;
        let reply = self.recv()?;
        if reply.id != id {
            return Err(ProtoError::BadPayload(format!(
                "reply id {} does not answer request id {id}",
                reply.id
            )));
        }
        Ok(reply)
    }

    fn call(&mut self, body: RequestBody) -> Result<String, String> {
        match self.request(body) {
            Ok(Reply {
                body: ReplyBody::Ok(d),
                ..
            }) => Ok(d),
            Ok(Reply {
                body: ReplyBody::Err(m),
                ..
            }) => Err(m),
            Ok(Reply {
                body: ReplyBody::Busy,
                ..
            }) => Err("busy".to_owned()),
            Err(e) => Err(format!("transport: {e}")),
        }
    }

    /// `open <session> <cell>`: create, attach or recover a session.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn open(&mut self, session: &str, cell: &str) -> Result<String, String> {
        self.call(RequestBody::Open {
            session: session.to_owned(),
            cell: cell.to_owned(),
        })
    }

    /// `cmd <session> <line>`: apply one editor command.
    ///
    /// # Errors
    ///
    /// The server's error message (or `busy`).
    pub fn cmd(&mut self, session: &str, line: &str) -> Result<String, String> {
        self.call(RequestBody::Cmd {
            session: session.to_owned(),
            line: line.to_owned(),
        })
    }

    /// `cmd <session> <line>` with a trace context attached: the
    /// pipelined form tests and traced tools use. Returns the request
    /// id; pull the reply with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn cmd_traced(
        &mut self,
        session: &str,
        line: &str,
        ctx: TraceContext,
    ) -> Result<u64, ProtoError> {
        self.send_traced(
            RequestBody::Cmd {
                session: session.to_owned(),
                line: line.to_owned(),
            },
            ctx,
        )
    }

    /// `telemetry [prom|json]`: a metrics snapshot over the wire.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn telemetry(&mut self, format: TelemetryFormat) -> Result<String, String> {
        self.call(RequestBody::Telemetry { format })
    }

    /// `dump`: write the flight recorder to a file under the server
    /// root; returns the path.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn dump(&mut self) -> Result<String, String> {
        self.call(RequestBody::Dump)
    }

    /// `close <session>`: flush the WAL and evict the session.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn close_session(&mut self, session: &str) -> Result<String, String> {
        self.call(RequestBody::Close {
            session: session.to_owned(),
        })
    }

    /// `ping`.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn ping(&mut self) -> Result<String, String> {
        self.call(RequestBody::Ping)
    }

    /// `stats`: live session and queue-depth gauges.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn stats(&mut self) -> Result<String, String> {
        self.call(RequestBody::Stats { session: None })
    }

    /// `stats <session>`: the session's engine counters — commands
    /// applied, derived-cache hit rate, and damage-region totals.
    ///
    /// # Errors
    ///
    /// The server's error message (e.g. the session does not exist).
    pub fn stats_session(&mut self, session: &str) -> Result<String, String> {
        self.call(RequestBody::Stats {
            session: Some(session.to_owned()),
        })
    }

    /// `shutdown`: ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// The server's error message.
    pub fn shutdown_server(&mut self) -> Result<String, String> {
        self.call(RequestBody::Shutdown)
    }
}
