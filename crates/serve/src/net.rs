//! Transport: one [`Stream`] abstraction over TCP and Unix-domain
//! sockets so the protocol, server and client code are written once —
//! plus the zero-dependency readiness layer ([`PollSet`], [`WakePipe`])
//! the poll-model event loop is built on.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where a server should listen (or a client connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7117` (`:0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path. An existing socket file is replaced.
    Unix(PathBuf),
}

/// Where a server actually ended up listening (TCP resolves `:0`).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// The resolved TCP address.
    Tcp(SocketAddr),
    /// The Unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp://{a}"),
            BoundAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// Either kind of listener.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds `bind`, replacing a stale Unix socket file if present.
    ///
    /// # Errors
    ///
    /// The underlying bind failure.
    pub fn bind(bind: &Bind) -> io::Result<(Listener, BoundAddr)> {
        match bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let a = l.local_addr()?;
                Ok((Listener::Tcp(l), BoundAddr::Tcp(a)))
            }
            Bind::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), BoundAddr::Unix(path.clone())))
            }
        }
    }

    /// Switches the listener between blocking and non-blocking accept.
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// The raw file descriptor, for [`PollSet`] registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// The underlying accept failure.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected socket of either kind.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connects to a listening server.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect(addr: &BoundAddr) -> io::Result<Stream> {
        match addr {
            BoundAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
            BoundAddr::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
        }
    }

    /// Connects to a TCP address string.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect_tcp(addr: &str) -> io::Result<Stream> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        Ok(Stream::Tcp(s))
    }

    /// Connects to a Unix socket path.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect_unix(path: &Path) -> io::Result<Stream> {
        Ok(Stream::Unix(UnixStream::connect(path)?))
    }

    /// A second handle to the same socket (for a writer thread).
    ///
    /// # Errors
    ///
    /// The underlying `try_clone` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (`None` = block forever).
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets the write timeout (`None` = block forever).
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Switches the socket between blocking and non-blocking I/O.
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// The raw file descriptor, for [`PollSet`] registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Half-closes the read side: a reader blocked on this stream
    /// returns 0 immediately, while the write side keeps flushing.
    /// The threads io-model uses this for instant shutdown wakeup.
    pub fn shutdown_read(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Read);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Read);
            }
        }
    }

    /// Half-closes the write side (lets the peer's reader see EOF).
    pub fn shutdown_write(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }

    /// Closes both directions.
    pub fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

// ----------------------------------------------------------------------
// Readiness: a zero-dependency poll(2) wrapper and a wakeup pipe
// ----------------------------------------------------------------------
//
// The event loop must not depend on any crate the container does not
// already have, so the two syscalls std does not expose — poll(2) and
// pipe2(2) — are declared by hand. Everything else (non-blocking
// sockets, raw fds) comes from std.

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// What a [`PollSet`] entry wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// What poll(2) reported for one entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Readable now (includes pending EOF).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error, hangup, or invalid fd — the owner should read to
    /// completion (surfacing the error) and close.
    pub error: bool,
}

/// One poll(2) round: callers re-register their fds every iteration
/// (the set is tiny per-entry — an fd and two shorts — and rebuilding
/// beats bookkeeping for thousands of mostly-idle connections).
#[derive(Default)]
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> PollSet {
        PollSet::default()
    }

    /// Drops every registration (keeps the allocation).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` and returns its index for [`PollSet::readiness`].
    pub fn register(&mut self, fd: RawFd, interest: Interest) -> usize {
        let mut events = 0i16;
        if interest.read {
            events |= POLLIN;
        }
        if interest.write {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever). Returns how many entries are
    /// ready; `0` means the timeout fired.
    ///
    /// # Errors
    ///
    /// The raw `poll(2)` failure (`EINTR` is retried internally).
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// What the last [`PollSet::wait`] reported for entry `idx`.
    pub fn readiness(&self, idx: usize) -> Readiness {
        let r = self.fds[idx].revents;
        Readiness {
            readable: r & (POLLIN | POLLHUP) != 0,
            writable: r & POLLOUT != 0,
            error: r & (POLLERR | POLLHUP | POLLNVAL) != 0,
        }
    }
}

/// A self-pipe that turns cross-thread events (worker replies ready,
/// shutdown requested) into poll readiness. Both ends are non-blocking:
/// `wake` never stalls the caller when the pipe is already full (one
/// pending byte is as good as fifty), and `drain` empties it without
/// blocking the loop.
#[derive(Debug)]
pub struct WakePipe {
    rd: RawFd,
    wr: RawFd,
}

impl WakePipe {
    /// Opens the pipe.
    ///
    /// # Errors
    ///
    /// The underlying `pipe2(2)` failure.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            rd: fds[0],
            wr: fds[1],
        })
    }

    /// The read end, for [`PollSet`] registration.
    pub fn read_fd(&self) -> RawFd {
        self.rd
    }

    /// Makes the read end readable. Never blocks; a full pipe already
    /// guarantees the next `wait` returns immediately.
    pub fn wake(&self) {
        let byte = 1u8;
        let _ = unsafe { write(self.wr, &byte, 1) };
    }

    /// Swallows every pending wake byte. Returns how many were pending.
    pub fn drain(&self) -> usize {
        let mut buf = [0u8; 64];
        let mut total = 0usize;
        loop {
            let n = unsafe { read(self.rd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return total;
            }
            total += n as usize;
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.rd);
            close(self.wr);
        }
    }
}

// The fds are owned exclusively by this struct and every operation on
// them is a single syscall, so sharing across threads is safe.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_bind_resolves_ephemeral_port() {
        let (l, addr) = Listener::bind(&Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let BoundAddr::Tcp(a) = &addr else {
            panic!("tcp bind")
        };
        assert_ne!(a.port(), 0);
        drop(l);
    }

    #[test]
    fn unix_round_trip_and_stale_socket_replacement() {
        let path = std::env::temp_dir().join(format!("riot-serve-net-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        for _ in 0..2 {
            // Second iteration rebinds over the stale socket file.
            let (l, addr) = Listener::bind(&Bind::Unix(path.clone())).unwrap();
            let t = std::thread::spawn(move || {
                let mut s = l.accept().unwrap();
                let mut b = [0u8; 2];
                s.read_exact(&mut b).unwrap();
                s.write_all(&b).unwrap();
            });
            let mut c = Stream::connect(&addr).unwrap();
            c.write_all(b"hi").unwrap();
            let mut b = [0u8; 2];
            c.read_exact(&mut b).unwrap();
            assert_eq!(&b, b"hi");
            t.join().unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wake_pipe_levels_readiness_and_drains() {
        let wp = WakePipe::new().unwrap();
        let mut ps = PollSet::new();
        ps.register(wp.read_fd(), Interest::READ);
        // Nothing pending: the timeout fires.
        assert_eq!(ps.wait(Some(Duration::from_millis(5))).unwrap(), 0);
        wp.wake();
        wp.wake();
        ps.clear();
        let idx = ps.register(wp.read_fd(), Interest::READ);
        assert_eq!(ps.wait(Some(Duration::from_millis(100))).unwrap(), 1);
        assert!(ps.readiness(idx).readable);
        assert_eq!(wp.drain(), 2);
        // Drained: back to timing out.
        ps.clear();
        ps.register(wp.read_fd(), Interest::READ);
        assert_eq!(ps.wait(Some(Duration::from_millis(5))).unwrap(), 0);
    }

    #[test]
    fn poll_set_reports_socket_readiness() {
        let (l, addr) = Listener::bind(&Bind::Tcp("127.0.0.1:0".into())).unwrap();
        l.set_nonblocking(true).unwrap();
        let mut ps = PollSet::new();
        let li = ps.register(l.raw_fd(), Interest::READ);
        assert_eq!(ps.wait(Some(Duration::from_millis(5))).unwrap(), 0);

        let mut client = Stream::connect(&addr).unwrap();
        assert_eq!(ps.wait(Some(Duration::from_millis(1000))).unwrap(), 1);
        assert!(ps.readiness(li).readable, "pending accept is readable");
        let mut server_side = l.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        // Idle connection: not readable; a fresh socket is writable.
        ps.clear();
        let ci = ps.register(server_side.raw_fd(), Interest::BOTH);
        assert!(ps.wait(Some(Duration::from_millis(1000))).unwrap() >= 1);
        let r = ps.readiness(ci);
        assert!(!r.readable && r.writable, "{r:?}");

        client.write_all(b"ping").unwrap();
        ps.clear();
        let ci = ps.register(server_side.raw_fd(), Interest::READ);
        assert_eq!(ps.wait(Some(Duration::from_millis(1000))).unwrap(), 1);
        assert!(ps.readiness(ci).readable);
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);
        // Peer hangup surfaces as readable (read returns 0).
        drop(client);
        ps.clear();
        let ci = ps.register(server_side.raw_fd(), Interest::READ);
        assert_eq!(ps.wait(Some(Duration::from_millis(1000))).unwrap(), 1);
        assert!(ps.readiness(ci).readable);
        assert_eq!(server_side.read(&mut buf).unwrap(), 0);
    }
}
