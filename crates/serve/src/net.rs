//! Transport: one [`Stream`] abstraction over TCP and Unix-domain
//! sockets so the protocol, server and client code are written once.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where a server should listen (or a client connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7117` (`:0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path. An existing socket file is replaced.
    Unix(PathBuf),
}

/// Where a server actually ended up listening (TCP resolves `:0`).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// The resolved TCP address.
    Tcp(SocketAddr),
    /// The Unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp://{a}"),
            BoundAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// Either kind of listener.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds `bind`, replacing a stale Unix socket file if present.
    ///
    /// # Errors
    ///
    /// The underlying bind failure.
    pub fn bind(bind: &Bind) -> io::Result<(Listener, BoundAddr)> {
        match bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let a = l.local_addr()?;
                Ok((Listener::Tcp(l), BoundAddr::Tcp(a)))
            }
            Bind::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), BoundAddr::Unix(path.clone())))
            }
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// The underlying accept failure.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected socket of either kind.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connects to a listening server.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect(addr: &BoundAddr) -> io::Result<Stream> {
        match addr {
            BoundAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
            BoundAddr::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
        }
    }

    /// Connects to a TCP address string.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect_tcp(addr: &str) -> io::Result<Stream> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        Ok(Stream::Tcp(s))
    }

    /// Connects to a Unix socket path.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect_unix(path: &Path) -> io::Result<Stream> {
        Ok(Stream::Unix(UnixStream::connect(path)?))
    }

    /// A second handle to the same socket (for a writer thread).
    ///
    /// # Errors
    ///
    /// The underlying `try_clone` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (`None` = block forever).
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets the write timeout (`None` = block forever).
    ///
    /// # Errors
    ///
    /// The underlying socket option failure.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Half-closes the write side (lets the peer's reader see EOF).
    pub fn shutdown_write(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }

    /// Closes both directions.
    pub fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_bind_resolves_ephemeral_port() {
        let (l, addr) = Listener::bind(&Bind::Tcp("127.0.0.1:0".into())).unwrap();
        let BoundAddr::Tcp(a) = &addr else {
            panic!("tcp bind")
        };
        assert_ne!(a.port(), 0);
        drop(l);
    }

    #[test]
    fn unix_round_trip_and_stale_socket_replacement() {
        let path = std::env::temp_dir().join(format!("riot-serve-net-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        for _ in 0..2 {
            // Second iteration rebinds over the stale socket file.
            let (l, addr) = Listener::bind(&Bind::Unix(path.clone())).unwrap();
            let t = std::thread::spawn(move || {
                let mut s = l.accept().unwrap();
                let mut b = [0u8; 2];
                s.read_exact(&mut b).unwrap();
                s.write_all(&b).unwrap();
            });
            let mut c = Stream::connect(&addr).unwrap();
            c.write_all(b"hi").unwrap();
            let mut b = [0u8; 2];
            c.read_exact(&mut b).unwrap();
            assert_eq!(&b, b"hi");
            t.join().unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
