//! The telemetry HTTP listener: a hand-rolled, zero-dependency
//! HTTP/1.0 endpoint for scraping the metrics registry while a server
//! runs.
//!
//! Enabled with [`crate::ServeConfig::telemetry_addr`] (the binary's
//! `--telemetry-addr HOST:PORT`). One thread, one request per
//! connection, `Connection: close` — exactly enough HTTP for
//! Prometheus, `curl`, and the CI smoke job, and nothing more.
//!
//! # Routes
//!
//! | path            | body                                            |
//! |-----------------|-------------------------------------------------|
//! | `/metrics`      | Prometheus text format of the global registry   |
//! | `/metrics.json` | `riot-telemetry/1` JSON snapshot                |
//! | `/flightrec`    | current flight-recorder ring as JSONL           |
//! | `/healthz`      | `ok` (liveness probe)                           |
//!
//! Anything else is a 404; non-GET methods are a 405. Requests are
//! read with a short socket timeout so a stalled client cannot wedge
//! the listener thread.

use crate::flightrec::FlightRecorder;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running telemetry listener. Dropping the handle does **not** stop
/// the thread; call [`TelemetryServer::stop`].
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`, port 0 for ephemeral) and
    /// serves the routes above until [`TelemetryServer::stop`].
    ///
    /// # Errors
    ///
    /// Bind failures (port in use, bad address…).
    pub fn start(addr: &str, flightrec: Arc<FlightRecorder>) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("riot-telemetry".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    riot_trace::registry()
                        .counter("serve.telemetry.scrapes")
                        .inc();
                    // Serve inline: requests are tiny and the replies
                    // are built from in-memory state, so one thread
                    // keeps ordering simple and resource use bounded.
                    let _ = serve_one(stream, &flightrec);
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // accept() has no timeout; poke the listener awake.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(mut stream: TcpStream, flightrec: &FlightRecorder) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request_line = read_request_line(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                riot_trace::prometheus(),
            ),
            "/metrics.json" => ("200 OK", "application/json", riot_trace::json_snapshot()),
            "/flightrec" => ("200 OK", "application/jsonl", flightrec.to_jsonl()),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
        }
    };
    let reply = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

/// Reads the whole header block (through the blank line) and returns
/// the request line. Draining the headers before replying matters:
/// closing a socket with unread input pending makes the kernel send
/// RST, which truncates the response on the client side. 8 KiB is
/// plenty for any scraper we serve.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                buf.push(byte[0]);
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    Ok(text
        .lines()
        .next()
        .unwrap_or("")
        .trim_end_matches('\r')
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flightrec::FlightKind;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect telemetry");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_json_flightrec_and_health() {
        riot_trace::registry()
            .counter("serve.telemetry.test_counter")
            .add(5);
        let rec = Arc::new(FlightRecorder::new(32));
        rec.record(0, "t", FlightKind::Cmd, "create nand2 X", true, 9);
        let mut srv = TelemetryServer::start("127.0.0.1:0", Arc::clone(&rec)).unwrap();

        let (head, body) = get(srv.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(
            body.contains("riot_serve_telemetry_test_counter_total"),
            "{body}"
        );

        let (_, body) = get(srv.addr(), "/metrics.json");
        let snap = riot_trace::Snapshot::parse(&body).expect("valid snapshot json");
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "serve.telemetry.test_counter" && *v >= 5));

        let (_, body) = get(srv.addr(), "/flightrec");
        let events = FlightRecorder::parse_dump(&body).expect("valid dump");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detail, "create nand2 X");

        let (head, body) = get(srv.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"));
        assert_eq!(body, "ok\n");

        let (head, _) = get(srv.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        srv.stop();
        srv.stop(); // idempotent
        assert!(
            TcpStream::connect(srv.addr()).is_err() || {
                // The OS may briefly accept on the dead listener's backlog;
                // a request must at least go unanswered.
                let mut s = TcpStream::connect(srv.addr()).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                write!(s, "GET /healthz HTTP/1.0\r\n\r\n").unwrap();
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap_or(0) == 0
            }
        );
    }

    #[test]
    fn rejects_non_get() {
        let rec = Arc::new(FlightRecorder::new(16));
        let mut srv = TelemetryServer::start("127.0.0.1:0", rec).unwrap();
        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
        srv.stop();
    }
}
