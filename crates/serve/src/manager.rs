//! The session manager: a fixed worker pool that owns every hosted
//! session and applies commands in per-session FIFO order.
//!
//! # Sharding
//!
//! Sessions are sharded by a stable hash of their name across
//! `threads` workers (resolved like `riot_geom::par` — explicit config
//! beats `RIOT_SERVE_THREADS` beats machine parallelism). One session
//! always lands on one worker, so its commands — and therefore its
//! replies — are totally ordered without any per-session locking.
//!
//! # Backpressure
//!
//! Each worker's inbox is a **bounded** channel of `inbox_cap` jobs.
//! [`SessionManager::submit`] never blocks: a full inbox is an
//! immediate [`ReplyBody::Busy`], and the command was *not* queued.
//! Clients own the retry; the server never buffers unboundedly.
//!
//! # Batching and group commit
//!
//! A worker drains up to `batch_max` queued jobs per scheduling tick
//! and applies *consecutive runs* of commands for the same session
//! under one resumed editor. With a [`ServeConfig::group_commit`]
//! window set (the default), each run **stages** its WAL records in
//! memory and joins the worker's commit queue; one flush pass — at
//! most a window after the first run staged — writes and fsyncs every
//! dirty WAL once, then releases every staged run's replies in order.
//! Sixteen interleaved sessions therefore share sixteen fsyncs per
//! window instead of paying one per run. With the window off, each run
//! flushes its own WAL at the end of the run. Either way `ok` replies
//! are withheld until the covering flush succeeds (acknowledged ⇒
//! durable).
//!
//! # Snapshots
//!
//! After a flush, any session that accumulated
//! [`ServeConfig::snapshot_every`] records past its last snapshot gets
//! a new `RIOTSNAP1` cut and its WAL compacted behind it (see
//! [`crate::snapshot`]); idle eviction cuts one too. Recovery then
//! replays only the records past the snapshot.
//!
//! # Idle eviction
//!
//! Sessions untouched for `idle_timeout` are flushed to their WAL and
//! dropped from memory during the worker's housekeeping tick; a later
//! `cmd` or `open` transparently recovers them from the WAL.

use crate::config::ServeConfig;
use crate::flightrec::FlightKind;
use crate::proto::{Reply, ReplyBody};
use crate::session::{execute_line, OpenKind, SessionEntry};
use riot_core::{Editor, FAULT_SERVE_GROUP_FLUSH, FAULT_SERVE_JOURNAL_APPEND};
use riot_trace::TraceContext;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// What a connection asks a worker to do to a session.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Create, attach, or recover the session editing `cell`.
    Open {
        /// Composition cell for a brand-new session.
        cell: String,
    },
    /// Apply one editor command line.
    Cmd {
        /// Replay-syntax command line.
        line: String,
    },
    /// Flush and evict the session.
    Close,
    /// Report the session's engine counters (cache hit rate, damage
    /// stats). Routed to the owning worker so it reads the same
    /// suspended checkpoint the next `Cmd` would resume.
    SessionStats,
    /// Testing hook: hold the worker for `ms` milliseconds.
    Stall {
        /// How long to hold the worker.
        ms: u64,
    },
}

/// Where a job's reply goes. The thread-per-connection model hands
/// each worker a plain channel its writer thread drains
/// ([`ReplyTx::direct`]); the poll event loop hands out a **routed**
/// sender ([`ReplyTx::routed`]) that tags each reply with the
/// connection's token and then kicks the loop's wakeup pipe, so a
/// blocked `poll(2)` learns immediately that a reply is ready to
/// write. Cloning is cheap either way (a channel sender plus, for the
/// routed form, an `Arc`).
#[derive(Clone)]
pub struct ReplyTx(ReplyTxInner);

#[derive(Clone)]
enum ReplyTxInner {
    Direct(Sender<Reply>),
    Routed {
        tx: Sender<(u64, Reply)>,
        token: u64,
        wake: Arc<crate::net::WakePipe>,
    },
}

impl ReplyTx {
    /// Replies go straight to `tx` (a dedicated writer thread drains
    /// it).
    pub fn direct(tx: Sender<Reply>) -> ReplyTx {
        ReplyTx(ReplyTxInner::Direct(tx))
    }

    /// Replies go to the event loop's shared channel tagged with
    /// `token`, and `wake` is kicked after every send.
    pub fn routed(
        tx: Sender<(u64, Reply)>,
        token: u64,
        wake: Arc<crate::net::WakePipe>,
    ) -> ReplyTx {
        ReplyTx(ReplyTxInner::Routed { tx, token, wake })
    }

    /// Delivers one reply. A gone receiver (connection already closed)
    /// is not an error — the reply is simply dropped, exactly like the
    /// old writer-thread channel.
    pub fn send(&self, reply: Reply) {
        match &self.0 {
            ReplyTxInner::Direct(tx) => {
                let _ = tx.send(reply);
            }
            ReplyTxInner::Routed { tx, token, wake } => {
                let _ = tx.send((*token, reply));
                wake.wake();
            }
        }
    }
}

impl std::fmt::Debug for ReplyTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            ReplyTxInner::Direct(_) => f.write_str("ReplyTx::Direct"),
            ReplyTxInner::Routed { token, .. } => write!(f, "ReplyTx::Routed({token})"),
        }
    }
}

/// One queued unit of work.
struct Job {
    session: String,
    kind: JobKind,
    id: u64,
    /// The client's trace context ([`TraceContext::NONE`] for v1
    /// connections): every server-side span for this job continues it.
    trace: TraceContext,
    reply_tx: ReplyTx,
    enqueued: Instant,
    /// Nanoseconds spent queued (stamped when the worker drains the
    /// job; feeds the slow-command log's phase decomposition).
    queue_ns: u64,
}

/// Shared live counters the manager exposes without a worker
/// round-trip.
#[derive(Debug, Default)]
struct Shared {
    live_sessions: AtomicUsize,
    queued: AtomicUsize,
}

/// The worker pool. Dropping the manager without calling
/// [`SessionManager::shutdown`] also drains cleanly (workers flush
/// every session when their inbox disconnects).
pub struct SessionManager {
    shards: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    threads: usize,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("threads", &self.threads)
            .field(
                "live_sessions",
                &self.shared.live_sessions.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl SessionManager {
    /// Creates the WAL root directory and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// When the root directory cannot be created.
    pub fn start(cfg: ServeConfig) -> io::Result<SessionManager> {
        std::fs::create_dir_all(&cfg.root)?;
        let threads = cfg.effective_threads();
        let shared = Arc::new(Shared::default());
        let mut shards = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = sync_channel::<Job>(cfg.inbox_cap);
            shards.push(tx);
            let cfg = cfg.clone();
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("riot-serve-worker-{w}"))
                    .spawn(move || worker_loop(&cfg, &rx, &shared, w as u64))
                    .expect("spawn worker"),
            );
        }
        Ok(SessionManager {
            shards,
            handles,
            shared,
            threads,
        })
    }

    /// Which worker owns `session` (stable across the process).
    fn shard(&self, session: &str) -> usize {
        let mut h = DefaultHasher::new();
        session.hash(&mut h);
        (h.finish() % self.threads as u64) as usize
    }

    /// Queues a job for `session`'s worker. Non-blocking: a full inbox
    /// comes back as `Err(Busy)`, a shut-down pool as `Err(Err(..))` —
    /// in both cases the caller already holds the reply to send.
    ///
    /// # Errors
    ///
    /// The reply body to send instead of queueing.
    pub fn submit(
        &self,
        session: &str,
        kind: JobKind,
        id: u64,
        trace: TraceContext,
        reply_tx: ReplyTx,
    ) -> Result<(), ReplyBody> {
        let job = Job {
            session: session.to_owned(),
            kind,
            id,
            trace,
            reply_tx,
            enqueued: Instant::now(),
            queue_ns: 0,
        };
        let shard = self.shard(session);
        match self.shards[shard].try_send(job) {
            Ok(()) => {
                // Approximate by design: the worker may pop (and
                // decrement) this job before our increment lands, so
                // clamp rather than trust exact arithmetic.
                let q = self
                    .shared
                    .queued
                    .fetch_add(1, Ordering::Relaxed)
                    .saturating_add(1);
                riot_trace::registry()
                    .gauge("serve.queue.depth")
                    .set(q as i64);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                riot_trace::registry().counter("serve.busy").inc();
                Err(ReplyBody::Busy)
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(ReplyBody::Err("server is shutting down".to_owned()))
            }
        }
    }

    /// Live stats for the `stats` verb: the pool-wide gauges, then one
    /// line per populated `serve.*` latency histogram with its
    /// p50/p95/p99 so a plain `riot-serve stats` surfaces tail latency
    /// without a Prometheus scrape.
    pub fn stats_line(&self) -> String {
        let mut out = format!(
            "sessions {} queued {} workers {}",
            self.shared.live_sessions.load(Ordering::Relaxed),
            self.shared.queued.load(Ordering::Relaxed),
            self.threads
        );
        for (name, h) in riot_trace::registry().histograms() {
            if h.count() == 0 || !name.starts_with("serve.") {
                continue;
            }
            out.push_str(&format!(
                "\n{name} count {} p50 {} p95 {} p99 {}",
                h.count(),
                h.p50().unwrap_or(0),
                h.p95().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
        }
        out
    }

    /// Sessions currently resident in memory.
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::Relaxed)
    }

    /// Graceful drain: closes every inbox, then joins every worker.
    /// Workers flush each hosted session's WAL before exiting.
    pub fn shutdown(mut self) {
        self.shards.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shards.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One run of commands whose WAL records are staged awaiting the
/// worker's next group flush. Replies are held here — released, in
/// staging order, only after the covering fsync.
struct StagedRun {
    jobs: Vec<Job>,
    outcomes: Vec<Result<String, String>>,
    apply_ns: Vec<u64>,
}

/// The worker's commit queue: every staged run since the last flush
/// pass, plus the deadline the first of them set.
#[derive(Default)]
struct Pending {
    runs: Vec<StagedRun>,
    due: Option<Instant>,
}

impl Pending {
    /// Fails every staged run for `session` with `msg` (crash paths:
    /// the session's staged bytes died with its entry, so replies that
    /// were waiting on them must refuse, never acknowledge).
    fn fail_session(&mut self, session: &str, msg: &str) {
        let mut kept = Vec::with_capacity(self.runs.len());
        for run in self.runs.drain(..) {
            if run.jobs[0].session == session {
                for job in &run.jobs {
                    send_reply(job, ReplyBody::Err(msg.to_owned()));
                }
            } else {
                kept.push(run);
            }
        }
        self.runs = kept;
        if self.runs.is_empty() {
            self.due = None;
        }
    }
}

/// One worker: owns a shard of sessions, applies batches, runs the
/// group-commit flush pass, evicts idlers, and flushes everything on
/// drain.
fn worker_loop(cfg: &ServeConfig, rx: &Receiver<Job>, shared: &Shared, worker: u64) {
    let mut sessions: HashMap<String, SessionEntry> = HashMap::new();
    let mut pending = Pending::default();
    loop {
        // Sleep until the next job or — when runs are staged — the
        // group-commit deadline, whichever is sooner.
        let timeout = pending
            .due
            .map_or(cfg.tick, |d| d.saturating_duration_since(Instant::now()))
            .min(cfg.tick);
        let first = match rx.recv_timeout(timeout) {
            Ok(job) => Some(job),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if let Some(first) = first {
            let mut batch = Vec::with_capacity(8);
            batch.push(first);
            while batch.len() < cfg.batch_max {
                match rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
            let n = batch.len();
            // Clamped decrement: submit's increment for a job may land
            // after we already popped it (see `submit`).
            let q = shared
                .queued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| {
                    Some(q.saturating_sub(n))
                })
                .map(|prev| prev.saturating_sub(n))
                .unwrap_or(0);
            riot_trace::registry()
                .gauge("serve.queue.depth")
                .set(q as i64);
            // The queue-wait phase ends here: stamp it per job (it
            // started on the submitting thread) and record the span
            // under the client's context.
            for job in &mut batch {
                job.queue_ns = job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                riot_trace::complete_span("serve.queue.wait", job.trace, job.enqueued, &[]);
            }
            process_batch(cfg, &mut sessions, batch, worker, &mut pending);
        }
        if pending.due.is_some_and(|d| Instant::now() >= d) {
            flush_pending(cfg, &mut sessions, &mut pending, worker);
        }
        evict_idle(cfg, &mut sessions);
        publish_live(shared, &sessions);
        update_slo_gauges();
    }
    // Drain: flush staged runs, then every hosted session, before
    // exiting.
    flush_pending(cfg, &mut sessions, &mut pending, worker);
    for (_, mut entry) in sessions.drain() {
        let _ = entry.sync_all();
    }
    publish_live(shared, &sessions);
}

/// Publishes this worker's shard size into the pool-wide
/// `live_sessions` total. Each worker only sees its own shard, so it
/// applies the *delta* from its previous contribution (tracked in a
/// thread-local) rather than overwriting other shards' counts.
fn publish_live(shared: &Shared, mine: &HashMap<String, SessionEntry>) {
    thread_local! {
        static PREV: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    }
    let now = mine.len();
    let prev = PREV.with(|p| p.replace(now));
    let total = if now >= prev {
        shared
            .live_sessions
            .fetch_add(now - prev, Ordering::Relaxed)
            + (now - prev)
    } else {
        shared
            .live_sessions
            .fetch_sub(prev - now, Ordering::Relaxed)
            .saturating_sub(prev - now)
    };
    riot_trace::registry()
        .gauge("serve.sessions.live")
        .set(total as i64);
}

/// Applies one drained batch in arrival order, merging consecutive
/// `Cmd` runs for the same session under a single resume.
fn process_batch(
    cfg: &ServeConfig,
    sessions: &mut HashMap<String, SessionEntry>,
    batch: Vec<Job>,
    worker: u64,
    pending: &mut Pending,
) {
    let mut iter = batch.into_iter().peekable();
    while let Some(job) = iter.next() {
        if matches!(job.kind, JobKind::Cmd { .. }) {
            // Collect the run of consecutive Cmd jobs on the same
            // session.
            let mut run = vec![job];
            while iter.peek().is_some_and(|n| {
                n.session == run[0].session && matches!(n.kind, JobKind::Cmd { .. })
            }) {
                run.push(iter.next().expect("peeked"));
            }
            apply_cmd_run(cfg, sessions, run, worker, pending);
        } else {
            // Per-session reply FIFO: a close/open/stats reply must not
            // overtake staged command replies, and close/stats read
            // state the staged records are part of — flush first.
            flush_pending(cfg, sessions, pending, worker);
            apply_single(cfg, sessions, &job, worker);
        }
    }
}

/// Refreshes the rolling SLO gauges from the registry: the p99 of the
/// end-to-end request latency histogram and the error rate in permille
/// of all replies sent so far. Cheap (a few atomic loads), run once
/// per worker tick so a scrape always sees fresh values.
fn update_slo_gauges() {
    let reg = riot_trace::registry();
    if let Some(p99) = reg.histogram("serve.request.latency_ns").p99() {
        reg.gauge("serve.slo.request_p99_ns").set(p99 as i64);
    }
    let ok = reg.counter("serve.replies.ok").get();
    let err = reg.counter("serve.replies.err").get();
    if let Some(permille) = err.saturating_mul(1000).checked_div(ok + err) {
        reg.gauge("serve.slo.error_permille").set(permille as i64);
    }
}

/// The reply detail for `stats <session>`: the editor's cumulative
/// engine counters, one `key value` pair per field clients care about.
fn session_stats_line(s: riot_core::Stats) -> String {
    let rate = s
        .cache_hit_rate()
        .map_or("n/a".to_owned(), |r| format!("{r:.3}"));
    format!(
        "applied {} cache_hits {} cache_misses {} hit_rate {rate} damage_rects {} damage_coalesced {}",
        s.applied, s.cache_hits, s.cache_misses, s.damage_rects, s.damage_coalesced
    )
}

fn send_reply(job: &Job, body: ReplyBody) {
    let nanos = job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let reg = riot_trace::registry();
    reg.histogram("serve.request.latency_ns").record(nanos);
    reg.counter(match body {
        ReplyBody::Err(_) => "serve.replies.err",
        _ => "serve.replies.ok",
    })
    .inc();
    job.reply_tx.send(Reply { id: job.id, body });
}

/// Brings `session` into memory if it is not already hosted: recovers
/// from an existing WAL, or (for `Open`) creates it fresh.
fn ensure_open(
    cfg: &ServeConfig,
    sessions: &mut HashMap<String, SessionEntry>,
    session: &str,
    create_cell: Option<&str>,
    worker: u64,
    trace: u64,
) -> Result<OpenKind, String> {
    if sessions.contains_key(session) {
        return Ok(OpenKind::Recovered {
            records: 0,
            truncated: false,
        });
    }
    let lib = (cfg.library)();
    let wal = crate::session::wal_path(&cfg.root, session);
    let (entry, kind) = if wal.exists() {
        SessionEntry::recover(&cfg.root, session, lib)?
    } else if let Some(cell) = create_cell {
        (
            SessionEntry::create(&cfg.root, session, cell, lib)?,
            OpenKind::Created,
        )
    } else {
        return Err(format!("no such session `{session}` (open it first)"));
    };
    // The flight recorder's `open` event carries the WAL head line
    // (`edit <cell>`), so a dump's per-session tail is itself a valid
    // replay for riot-check's lockstep harness.
    let head = entry
        .cp
        .as_ref()
        .and_then(|cp| {
            cp.journal()
                .commands()
                .first()
                .map(riot_core::command_to_line)
        })
        .unwrap_or_default();
    cfg.flightrec
        .record(worker, session, FlightKind::Open, head, true, trace);
    sessions.insert(session.to_owned(), entry);
    Ok(kind)
}

/// Handles `Open`, `Close` and `Stall` jobs.
fn apply_single(
    cfg: &ServeConfig,
    sessions: &mut HashMap<String, SessionEntry>,
    job: &Job,
    worker: u64,
) {
    match &job.kind {
        JobKind::Open { cell } => {
            let attached = sessions.contains_key(&job.session);
            let body = match ensure_open(
                cfg,
                sessions,
                &job.session,
                Some(cell),
                worker,
                job.trace.trace_id,
            ) {
                Ok(_) if attached => ReplyBody::Ok("attached".to_owned()),
                Ok(OpenKind::Created) => ReplyBody::Ok("created".to_owned()),
                Ok(OpenKind::Recovered { records, truncated }) => ReplyBody::Ok(format!(
                    "recovered {records} records{}",
                    if truncated {
                        " (truncated torn tail)"
                    } else {
                        ""
                    }
                )),
                Err(e) => ReplyBody::Err(e),
            };
            send_reply(job, body);
        }
        JobKind::Close => {
            let body = match sessions.remove(&job.session) {
                Some(mut entry) => match entry.sync_all() {
                    Ok(()) => ReplyBody::Ok("closed".to_owned()),
                    Err(e) => ReplyBody::Err(format!("close flush failed: {e}")),
                },
                None if crate::session::wal_path(&cfg.root, &job.session).exists() => {
                    ReplyBody::Ok("closed".to_owned())
                }
                None => ReplyBody::Err(format!("no such session `{}`", job.session)),
            };
            send_reply(job, body);
        }
        JobKind::SessionStats => {
            let body = match ensure_open(
                cfg,
                sessions,
                &job.session,
                None,
                worker,
                job.trace.trace_id,
            ) {
                Ok(_) => {
                    let entry = sessions.get(&job.session).expect("ensure_open inserted");
                    let cp = entry
                        .cp
                        .as_ref()
                        .expect("session is suspended between jobs");
                    send_reply(job, ReplyBody::Ok(session_stats_line(cp.stats())));
                    return;
                }
                Err(e) => ReplyBody::Err(e),
            };
            send_reply(job, body);
        }
        JobKind::Stall { ms } => {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            send_reply(job, ReplyBody::Ok(format!("stalled {ms}ms")));
        }
        JobKind::Cmd { .. } => unreachable!("Cmd runs go through apply_cmd_run"),
    }
}

/// Applies a run of consecutive `Cmd` jobs for one session under a
/// single resumed editor, then either stages the WAL records on the
/// worker's commit queue (group commit — replies wait for the covering
/// flush pass) or flushes the WAL **once** right here. Either way no
/// `ok` escapes before its records are fsynced — acknowledged means
/// durable.
fn apply_cmd_run(
    cfg: &ServeConfig,
    sessions: &mut HashMap<String, SessionEntry>,
    run: Vec<Job>,
    worker: u64,
    pending: &mut Pending,
) {
    let session = run[0].session.clone();
    // The run-level context: the first traced job. A pipelining client
    // reuses one trace across its burst, so per-run spans (resume,
    // flush) land in the trace that paid for them.
    let run_ctx = run
        .iter()
        .map(|j| j.trace)
        .find(|c| !c.is_none())
        .unwrap_or(TraceContext::NONE);
    let _span = {
        let mut s = riot_trace::span_with_context("serve.session.apply", run_ctx);
        s.field("commands", run.len() as u64);
        s
    };
    riot_trace::registry()
        .counter("serve.cmds")
        .add(run.len() as u64);
    if let Err(e) = ensure_open(cfg, sessions, &session, None, worker, run_ctx.trace_id) {
        for job in &run {
            send_reply(job, ReplyBody::Err(e.clone()));
        }
        return;
    }
    let mut entry = sessions.remove(&session).expect("ensure_open inserted");
    entry.last_touch = Instant::now();

    // Phase 1: execute, buffering outcomes. A journal-append fault
    // mid-run crashes the session *before* the faulted command runs:
    // a torn record is written (as a real torn write would) and every
    // remaining job in the run — including any earlier `ok`s not yet
    // flushed — is refused, because un-flushed acknowledgements must
    // never escape.
    let mut outcomes: Vec<Result<String, String>> = Vec::with_capacity(run.len());
    let mut apply_ns: Vec<u64> = Vec::with_capacity(run.len());
    let mut crashed: Option<String> = None;
    {
        let resume_start = Instant::now();
        let mut ed = match Editor::resume(&mut entry.lib, entry.cp.take().expect("suspended")) {
            Ok(ed) => ed,
            Err(e) => {
                let msg = format!("resume failed: {e}");
                pending.fail_session(&session, &msg);
                for job in &run {
                    send_reply(job, ReplyBody::Err(msg.clone()));
                }
                return;
            }
        };
        riot_trace::complete_span("serve.session.resume", run_ctx, resume_start, &[]);
        for job in &run {
            let JobKind::Cmd { line } = &job.kind else {
                unreachable!("run holds only Cmd jobs")
            };
            if cfg.faults.should_inject(FAULT_SERVE_JOURNAL_APPEND) {
                cfg.flightrec.record(
                    worker,
                    &session,
                    FlightKind::Fault,
                    "serve.journal.append",
                    false,
                    job.trace.trace_id,
                );
                crashed = Some(line.clone());
                break;
            }
            let exec_start = Instant::now();
            let outcome = execute_line(&mut ed, line).map_err(|e| e.to_string());
            riot_trace::complete_span("serve.cmd.apply", job.trace, exec_start, &[]);
            apply_ns.push(exec_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            cfg.flightrec.record(
                worker,
                &session,
                FlightKind::Cmd,
                line.clone(),
                outcome.is_ok(),
                job.trace.trace_id,
            );
            outcomes.push(outcome);
        }
        entry.cp = Some(ed.suspend());
    }

    if let Some(line) = crashed {
        // Crash simulation: half-written record, then the session dies.
        entry.append_torn_record(&line);
        riot_trace::registry()
            .counter("serve.session.crashed")
            .inc();
        cfg.flightrec.record(
            worker,
            &session,
            FlightKind::Crash,
            format!("fault injected at journal append before `{line}`"),
            false,
            run_ctx.trace_id,
        );
        // A fault trip is exactly what the flight recorder exists for:
        // put the evidence on disk while the process is still healthy.
        let _ = cfg.flightrec.dump_to(&cfg.root);
        drop(entry); // NOT reinserted — a later cmd/open recovers it.
        let msg = "session crashed: fault injected at journal append; \
                   not applied — reopen to recover";
        // Earlier runs staged for this session die with it: their
        // records were never flushed, so their replies must refuse.
        pending.fail_session(&session, msg);
        for job in &run {
            send_reply(job, ReplyBody::Err(msg.to_owned()));
        }
        return;
    }

    // Phase 2: make the records durable, then release replies. With a
    // group-commit window, durability is deferred to the worker's next
    // flush pass — the run parks on the commit queue, replies withheld,
    // sharing that pass's one-fsync-per-dirty-WAL with every other run
    // staged inside the window.
    if let Some(window) = cfg.group_commit {
        entry.stage_journal();
        sessions.insert(session, entry);
        let due = Instant::now() + window;
        pending.due = Some(pending.due.map_or(due, |d| d.min(due)));
        pending.runs.push(StagedRun {
            jobs: run,
            outcomes,
            apply_ns,
        });
        return;
    }
    let flush_start = Instant::now();
    match entry.sync_journal() {
        Ok(_) => {
            release_run_replies(
                &StagedRun {
                    jobs: run,
                    outcomes,
                    apply_ns,
                },
                flush_start,
                cfg,
                worker,
            );
            entry.maybe_snapshot(&cfg.root, cfg.snapshot_every, &cfg.faults);
            sessions.insert(session, entry);
        }
        Err(e) => {
            // The in-memory state ran ahead of the WAL and the WAL
            // cannot catch up: drop the session rather than acknowledge
            // what is not durable. Recovery resumes from the last
            // intact prefix.
            cfg.flightrec.record(
                worker,
                &session,
                FlightKind::Crash,
                format!("WAL append failed: {e}"),
                false,
                run_ctx.trace_id,
            );
            let _ = cfg.flightrec.dump_to(&cfg.root);
            drop(entry);
            for job in &run {
                send_reply(
                    job,
                    ReplyBody::Err(format!(
                        "session crashed: WAL append failed ({e}); reopen to recover"
                    )),
                );
            }
        }
    }
}

/// Completes the wal-flush spans, sends the run's buffered replies in
/// order, and feeds the slow-command log — shared by the per-run flush
/// path and the group-commit flush pass.
fn release_run_replies(run: &StagedRun, flush_start: Instant, cfg: &ServeConfig, worker: u64) {
    // One wal-flush span per distinct trace in the run: every client
    // trace sees the flush its acknowledgement waited on.
    let mut seen: Vec<u64> = Vec::new();
    for job in &run.jobs {
        if job.trace.is_none() || seen.contains(&job.trace.trace_id) {
            continue;
        }
        seen.push(job.trace.trace_id);
        riot_trace::complete_span("serve.wal.flush", job.trace, flush_start, &[]);
    }
    if seen.is_empty() {
        riot_trace::complete_span("serve.wal.flush", TraceContext::NONE, flush_start, &[]);
    }
    let flush_ns = flush_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    for (job, outcome) in run.jobs.iter().zip(&run.outcomes) {
        let body = match outcome {
            Ok(detail) => ReplyBody::Ok(detail.clone()),
            Err(e) => ReplyBody::Err(e.clone()),
        };
        send_reply(job, body);
    }
    riot_trace::registry()
        .counter("serve.commands.applied")
        .add(run.jobs.len() as u64);
    log_slow_commands(cfg, &run.jobs, &run.apply_ns, flush_ns, worker);
}

/// The group-commit flush pass: one write + fsync per *dirty* WAL
/// covers every run staged since the last pass, then every staged
/// run's replies release in staging order. A flush failure — real I/O
/// or an injected [`FAULT_SERVE_GROUP_FLUSH`] — crashes only that
/// session: its staged runs refuse, its entry is dropped (staged bytes
/// and all, none of them acknowledged), and recovery resumes from the
/// durable prefix. Sessions that crossed the snapshot interval get a
/// snapshot cut (and their WAL compacted) after their flush.
fn flush_pending(
    cfg: &ServeConfig,
    sessions: &mut HashMap<String, SessionEntry>,
    pending: &mut Pending,
    worker: u64,
) {
    if pending.runs.is_empty() {
        pending.due = None;
        return;
    }
    let runs = std::mem::take(&mut pending.runs);
    pending.due = None;
    let reg = riot_trace::registry();
    let flush_start = Instant::now();
    let mut flushed: Vec<String> = Vec::new();
    let mut failed: HashMap<String, String> = HashMap::new();
    for run in &runs {
        let session = &run.jobs[0].session;
        if flushed.iter().any(|s| s == session) || failed.contains_key(session) {
            continue;
        }
        if cfg.faults.should_inject(FAULT_SERVE_GROUP_FLUSH) {
            // Simulated crash at the covering flush: the staged suffix
            // never reaches disk, so the session dies un-acknowledged.
            let msg = "session crashed: fault injected at group flush; \
                       not applied — reopen to recover";
            cfg.flightrec.record(
                worker,
                session,
                FlightKind::Fault,
                "serve.group.flush",
                false,
                run.jobs[0].trace.trace_id,
            );
            reg.counter("serve.session.crashed").inc();
            let _ = cfg.flightrec.dump_to(&cfg.root);
            drop(sessions.remove(session));
            failed.insert(session.clone(), msg.to_owned());
            continue;
        }
        match sessions.get_mut(session) {
            Some(entry) => match entry.flush_staged() {
                Ok(_) => flushed.push(session.clone()),
                Err(e) => {
                    cfg.flightrec.record(
                        worker,
                        session,
                        FlightKind::Crash,
                        format!("group flush failed: {e}"),
                        false,
                        run.jobs[0].trace.trace_id,
                    );
                    reg.counter("serve.session.crashed").inc();
                    let _ = cfg.flightrec.dump_to(&cfg.root);
                    drop(sessions.remove(session));
                    failed.insert(
                        session.clone(),
                        format!("session crashed: group flush failed ({e}); reopen to recover"),
                    );
                }
            },
            // Unreachable in practice (staged sessions are pinned in
            // memory until flushed), but refuse rather than acknowledge.
            None => {
                failed.insert(
                    session.clone(),
                    "session no longer hosted; reopen to recover".to_owned(),
                );
            }
        }
    }
    reg.counter("serve.group.flushes").inc();
    for run in &runs {
        let session = &run.jobs[0].session;
        if let Some(msg) = failed.get(session) {
            for job in &run.jobs {
                send_reply(job, ReplyBody::Err(msg.clone()));
            }
            continue;
        }
        release_run_replies(run, flush_start, cfg, worker);
    }
    // Snapshot pass: cut + compact behind sessions that crossed the
    // interval, and publish how far each flushed session's WAL has run
    // past its snapshot.
    for name in flushed {
        if let Some(entry) = sessions.get_mut(&name) {
            entry.maybe_snapshot(&cfg.root, cfg.snapshot_every, &cfg.faults);
            reg.gauge("serve.snapshot.age_records")
                .set((entry.durable_records - entry.snap_covered()) as i64);
        }
    }
}

/// The slow-command log: any command whose end-to-end latency crossed
/// [`ServeConfig::slow_threshold`] is logged to stderr with its phase
/// decomposition (queue wait, apply, WAL flush — the same phases the
/// trace spans measure) and recorded in the flight recorder.
fn log_slow_commands(cfg: &ServeConfig, run: &[Job], apply_ns: &[u64], flush_ns: u64, worker: u64) {
    let threshold_ns = cfg.slow_threshold.as_nanos().min(u128::from(u64::MAX)) as u64;
    for (i, job) in run.iter().enumerate() {
        let total_ns = job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if total_ns < threshold_ns {
            continue;
        }
        let JobKind::Cmd { line } = &job.kind else {
            continue;
        };
        let detail = format!(
            "slow command: total {}us (queue {}us, apply {}us, wal-flush {}us): {line}",
            total_ns / 1_000,
            job.queue_ns / 1_000,
            apply_ns.get(i).copied().unwrap_or(0) / 1_000,
            flush_ns / 1_000,
        );
        eprintln!("riot-serve[worker {worker}] {detail}");
        riot_trace::registry().counter("serve.slow.commands").inc();
        cfg.flightrec.record(
            worker,
            &job.session,
            FlightKind::Slow,
            detail,
            true,
            job.trace.trace_id,
        );
    }
}

/// Suspend-to-WAL sessions idle past the deadline. Sessions with
/// staged-but-unflushed records are never evicted (their replies are
/// still parked on the commit queue). An evicted session gets a
/// parting snapshot so its eventual recovery is O(snapshot), not
/// O(history).
fn evict_idle(cfg: &ServeConfig, sessions: &mut HashMap<String, SessionEntry>) {
    let now = Instant::now();
    let idle: Vec<String> = sessions
        .iter()
        .filter(|(_, e)| now.duration_since(e.last_touch) >= cfg.idle_timeout && !e.has_staged())
        .map(|(n, _)| n.clone())
        .collect();
    for name in idle {
        if let Some(mut entry) = sessions.remove(&name) {
            let _ = entry.sync_all();
            if cfg.snapshot_every > 0 {
                entry.snapshot_now(&cfg.root, &cfg.faults);
            }
            riot_trace::registry()
                .counter("serve.sessions.evicted")
                .inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("riot-serve-mgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_cfg(root: &Path) -> ServeConfig {
        let mut cfg = ServeConfig::new(root);
        cfg.threads = 2;
        cfg.tick = Duration::from_millis(2);
        cfg
    }

    #[test]
    fn open_cmd_close_round_trip() {
        let root = tmp_root("roundtrip");
        let mgr = SessionManager::start(test_cfg(&root)).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "a",
            JobKind::Open { cell: "TOP".into() },
            1,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        assert_eq!(
            rx.recv().unwrap(),
            Reply {
                id: 1,
                body: ReplyBody::Ok("created".into())
            }
        );
        mgr.submit(
            "a",
            JobKind::Cmd {
                line: "create nand2 I0".into(),
            },
            2,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(rep.id, 2);
        assert!(
            matches!(rep.body, ReplyBody::Ok(ref d) if d.starts_with("instance")),
            "{rep:?}"
        );
        mgr.submit("a", JobKind::Close, 3, TraceContext::NONE, tx)
            .unwrap();
        assert_eq!(
            rx.recv().unwrap(),
            Reply {
                id: 3,
                body: ReplyBody::Ok("closed".into())
            }
        );
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn pipelined_replies_stay_in_order() {
        let root = tmp_root("order");
        let mgr = SessionManager::start(test_cfg(&root)).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "p",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        for i in 1..=20u64 {
            mgr.submit(
                "p",
                JobKind::Cmd {
                    line: format!("create nand2 N{i}"),
                },
                i,
                TraceContext::NONE,
                tx.clone(),
            )
            .unwrap();
        }
        let ids: Vec<u64> = (0..=20).map(|_| rx.recv().unwrap().id).collect();
        assert_eq!(ids, (0..=20).collect::<Vec<_>>());
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn full_inbox_reports_busy_without_queueing() {
        let root = tmp_root("busy");
        let mut cfg = test_cfg(&root);
        cfg.threads = 1;
        cfg.inbox_cap = 4;
        let mgr = SessionManager::start(cfg).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        // Stall the single worker so the inbox backs up.
        mgr.submit(
            "b",
            JobKind::Stall { ms: 300 },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let the worker pick it up
        let mut busy = 0;
        for i in 1..=50u64 {
            match mgr.submit(
                "b",
                JobKind::Stall { ms: 0 },
                i,
                TraceContext::NONE,
                tx.clone(),
            ) {
                Ok(()) => {}
                Err(ReplyBody::Busy) => busy += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(busy > 0, "bounded inbox never pushed back");
        drop(tx);
        while rx.recv().is_ok() {}
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn cmd_without_open_recovers_or_errors() {
        let root = tmp_root("lazy");
        let mgr = SessionManager::start(test_cfg(&root)).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "ghost",
            JobKind::Cmd {
                line: "create nand2 X".into(),
            },
            1,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert!(matches!(rep.body, ReplyBody::Err(ref m) if m.contains("no such session")));
        // Open, close (flushes WAL), then cmd transparently recovers.
        mgr.submit(
            "ghost",
            JobKind::Open { cell: "TOP".into() },
            2,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        mgr.submit("ghost", JobKind::Close, 3, TraceContext::NONE, tx.clone())
            .unwrap();
        rx.recv().unwrap();
        mgr.submit(
            "ghost",
            JobKind::Cmd {
                line: "create nand2 X".into(),
            },
            4,
            TraceContext::NONE,
            tx,
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert!(matches!(rep.body, ReplyBody::Ok(_)), "{rep:?}");
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn journal_append_fault_crashes_then_recovers_cleanly() {
        let root = tmp_root("fault");
        let cfg = test_cfg(&root);
        // Trip on the 3rd journal-append consultation: after the open
        // head, two commands succeed, the third crashes the session.
        cfg.faults.arm(FAULT_SERVE_JOURNAL_APPEND, 2);
        let mgr = SessionManager::start(cfg).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "f",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        for i in 1..=3u64 {
            mgr.submit(
                "f",
                JobKind::Cmd {
                    line: format!("create nand2 C{i}"),
                },
                i,
                TraceContext::NONE,
                tx.clone(),
            )
            .unwrap();
            // Serialize so each command is its own batch: the fault arm
            // counts consultations, one per command.
            let rep = rx.recv().unwrap();
            if i <= 2 {
                assert!(matches!(rep.body, ReplyBody::Ok(_)), "cmd {i}: {rep:?}");
            } else {
                assert!(
                    matches!(rep.body, ReplyBody::Err(ref m) if m.contains("crashed")),
                    "cmd {i}: {rep:?}"
                );
            }
        }
        // Recovery: reopen and observe exactly the acknowledged prefix.
        mgr.submit(
            "f",
            JobKind::Open { cell: "TOP".into() },
            9,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        match rep.body {
            ReplyBody::Ok(d) => {
                assert!(d.contains("recovered 3 records"), "{d}");
                assert!(d.contains("truncated"), "torn tail should be reported: {d}");
            }
            other => panic!("reopen failed: {other:?}"),
        }
        // Instance ids are arena indices: a fresh create on the
        // recovered session lands at index 2 iff exactly the two
        // acknowledged creates survived.
        mgr.submit(
            "f",
            JobKind::Cmd {
                line: "create nand2 C9".into(),
            },
            10,
            TraceContext::NONE,
            tx,
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(
            rep.body,
            ReplyBody::Ok("instance 2".into()),
            "acknowledged prefix only"
        );
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn group_flush_fault_refuses_staged_runs_and_recovers() {
        let root = tmp_root("groupfault");
        let cfg = test_cfg(&root);
        // Trip the first group-flush consultation: the staged run's
        // records never reach disk, so its replies must refuse.
        cfg.faults.arm(riot_core::FAULT_SERVE_GROUP_FLUSH, 0);
        let mgr = SessionManager::start(cfg).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "g",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        mgr.submit(
            "g",
            JobKind::Cmd {
                line: "create nand2 A".into(),
            },
            1,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert!(
            matches!(rep.body, ReplyBody::Err(ref m) if m.contains("group flush")),
            "{rep:?}"
        );
        // Recovery sees only the durable prefix: the WAL head. The
        // refused create never happened.
        mgr.submit(
            "g",
            JobKind::Open { cell: "TOP".into() },
            2,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert!(
            matches!(rep.body, ReplyBody::Ok(ref d) if d.contains("recovered 1 records")),
            "{rep:?}"
        );
        mgr.submit(
            "g",
            JobKind::Cmd {
                line: "create nand2 A".into(),
            },
            3,
            TraceContext::NONE,
            tx,
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(
            rep.body,
            ReplyBody::Ok("instance 0".into()),
            "refused command left no trace"
        );
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn snapshots_cut_at_the_interval_keep_sessions_correct() {
        let root = tmp_root("snapint");
        let mut cfg = test_cfg(&root);
        cfg.snapshot_every = 4;
        let mgr = SessionManager::start(cfg).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "si",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        for i in 1..=10u64 {
            mgr.submit(
                "si",
                JobKind::Cmd {
                    line: format!("create nand2 N{i}"),
                },
                i,
                TraceContext::NONE,
                tx.clone(),
            )
            .unwrap();
            let rep = rx.recv().unwrap();
            assert!(matches!(rep.body, ReplyBody::Ok(_)), "cmd {i}: {rep:?}");
        }
        mgr.submit("si", JobKind::Close, 99, TraceContext::NONE, tx.clone())
            .unwrap();
        rx.recv().unwrap();
        mgr.shutdown();
        // A snapshot was cut (interval 4 < 10 commands) and the WAL
        // compacted behind it.
        assert!(crate::snapshot::snap_path(&root, "si").exists());
        // Reopen from disk: snapshot + tail must equal the full state.
        let mgr = SessionManager::start(test_cfg(&root)).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "si",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert!(
            matches!(rep.body, ReplyBody::Ok(ref d) if d.contains("recovered 11 records")),
            "{rep:?}"
        );
        mgr.submit(
            "si",
            JobKind::Cmd {
                line: "create nand2 X".into(),
            },
            1,
            TraceContext::NONE,
            tx,
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(
            rep.body,
            ReplyBody::Ok("instance 10".into()),
            "all ten creates survived the snapshot round-trip"
        );
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn idle_sessions_are_evicted_and_recover_on_demand() {
        let root = tmp_root("evict");
        let mut cfg = test_cfg(&root);
        cfg.idle_timeout = Duration::from_millis(30);
        let mgr = SessionManager::start(cfg).unwrap();
        let (tx, rx) = channel();
        let tx = ReplyTx::direct(tx);
        mgr.submit(
            "idle",
            JobKind::Open { cell: "TOP".into() },
            0,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        mgr.submit(
            "idle",
            JobKind::Cmd {
                line: "create nand2 A".into(),
            },
            1,
            TraceContext::NONE,
            tx.clone(),
        )
        .unwrap();
        rx.recv().unwrap();
        let wait_for = |want: usize| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while mgr.live_sessions() != want && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            mgr.live_sessions()
        };
        assert_eq!(wait_for(1), 1);
        assert_eq!(wait_for(0), 0, "idle session should be evicted");
        // A fresh create after transparent recovery lands at index 1
        // iff the pre-eviction instance survived the WAL round-trip.
        mgr.submit(
            "idle",
            JobKind::Cmd {
                line: "create nand2 B".into(),
            },
            2,
            TraceContext::NONE,
            tx,
        )
        .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(
            rep.body,
            ReplyBody::Ok("instance 1".into()),
            "transparent recovery"
        );
        mgr.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }
}
