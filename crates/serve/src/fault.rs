//! Serving-layer fault injection.
//!
//! The command engine already has seeded fault sites inside the editor
//! ([`riot_core::fault`]); the server adds three more on the request
//! path — [`riot_core::FAULT_SERVE_ACCEPT`],
//! [`riot_core::FAULT_SERVE_FRAME_DECODE`], and
//! [`riot_core::FAULT_SERVE_JOURNAL_APPEND`] — so `riot-check`-style
//! tests can prove a fault *anywhere* between the socket and the WAL
//! never corrupts session state.
//!
//! Two triggering modes compose:
//!
//! * a seeded [`FaultPlan`] (the same SplitMix64 decision stream the
//!   editor uses) trips sites at a configured rate — for soak runs;
//! * deterministic **arms** ([`ServeFaults::arm`]) trip a named site on
//!   its *n*-th consultation — for tests that need a fault at an exact
//!   point ("kill the session on its 30th journal append").

use riot_core::FaultPlan;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    plan: Option<FaultPlan>,
    /// `(site, remaining_consultations_before_trip)`.
    armed: Vec<(&'static str, u64)>,
    injected: u64,
}

/// Shared, thread-safe fault-injection state for one server. Cloning is
/// cheap (an [`Arc`]); all clones observe the same decision stream.
#[derive(Debug, Clone, Default)]
pub struct ServeFaults {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<Inner>>,
}

impl ServeFaults {
    /// A disarmed injector: every consultation is a single relaxed
    /// atomic load.
    pub fn none() -> ServeFaults {
        ServeFaults::default()
    }

    /// Attaches a seeded rate-based plan covering all serve sites.
    pub fn with_plan(plan: FaultPlan) -> ServeFaults {
        let f = ServeFaults::default();
        f.inner.lock().expect("fault lock").plan = Some(plan);
        f.enabled.store(true, Ordering::Relaxed);
        f
    }

    /// Arms `site` to trip on its `after`-th consultation from now
    /// (0 = the very next one). Multiple arms on one site queue up.
    pub fn arm(&self, site: &'static str, after: u64) {
        let mut inner = self.inner.lock().expect("fault lock");
        inner.armed.push((site, after));
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Consults the injector at `site`. Returns `true` when the site
    /// must fail now. Counts every injection in the
    /// `serve.fault.injected` metric.
    pub fn should_inject(&self, site: &'static str) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock().expect("fault lock");
        let mut trip = false;
        // Deterministic arms first: find the first arm for this site.
        if let Some(pos) = inner.armed.iter().position(|(s, _)| *s == site) {
            if inner.armed[pos].1 == 0 {
                inner.armed.remove(pos);
                trip = true;
            } else {
                inner.armed[pos].1 -= 1;
            }
        }
        if !trip {
            if let Some(plan) = inner.plan.as_mut() {
                trip = plan.should_inject(site);
            }
        }
        if trip {
            inner.injected += 1;
            riot_trace::registry().counter("serve.fault.injected").inc();
        }
        trip
    }

    /// Total faults injected so far across all sites.
    pub fn injected(&self) -> u64 {
        self.inner.lock().expect("fault lock").injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_core::{FAULT_SERVE_ACCEPT, FAULT_SERVE_JOURNAL_APPEND};

    #[test]
    fn disarmed_never_trips() {
        let f = ServeFaults::none();
        for _ in 0..100 {
            assert!(!f.should_inject(FAULT_SERVE_ACCEPT));
        }
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn arm_trips_exactly_on_the_nth_consultation() {
        let f = ServeFaults::none();
        f.arm(FAULT_SERVE_JOURNAL_APPEND, 3);
        let hits: Vec<bool> = (0..6)
            .map(|_| f.should_inject(FAULT_SERVE_JOURNAL_APPEND))
            .collect();
        assert_eq!(hits, [false, false, false, true, false, false]);
        assert_eq!(f.injected(), 1);
    }

    #[test]
    fn arms_are_site_scoped() {
        let f = ServeFaults::none();
        f.arm(FAULT_SERVE_JOURNAL_APPEND, 0);
        assert!(!f.should_inject(FAULT_SERVE_ACCEPT));
        assert!(f.should_inject(FAULT_SERVE_JOURNAL_APPEND));
    }

    #[test]
    fn rate_plan_trips_at_full_rate() {
        let f = ServeFaults::with_plan(FaultPlan::new(1, 1.0));
        assert!(f.should_inject(FAULT_SERVE_ACCEPT));
        assert!(f.injected() >= 1);
    }
}
