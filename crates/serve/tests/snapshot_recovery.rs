//! Snapshot-era crash recovery, proved against the riot-check model.
//!
//! Three layers of evidence that the durability fast path never
//! changes what a session *means*:
//!
//! * a proptest that `suspend → snapshot → load → resume` is
//!   state-identical for arbitrary command histories (the canonical
//!   codec makes byte equality state equality);
//! * a fault injected at the **snapshot write** site tears the
//!   snapshot, and the session must stay fully usable, its WAL
//!   uncompacted, and recovery must fall back to a model-equivalent
//!   full replay;
//! * a fault injected at the **group flush** site crashes the session
//!   mid-window, and the surviving WAL must hold exactly the
//!   acknowledged prefix, model-equivalent, with nothing unflushed
//!   leaking in.

use proptest::prelude::*;
use riot_core::{
    decode_session, encode_session, Editor, Journal, FAULT_SERVE_GROUP_FLUSH,
    FAULT_SERVE_SNAPSHOT_WRITE,
};
use riot_serve::{
    frame_snapshot, parse_snapshot, standard_library, wal_path, Bind, Client, ServeConfig, Server,
    SessionEntry,
};
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-snaprec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// One pseudo-random editing step: gate index + offset, decoded from
/// an opcode. Failed commands (duplicate create, missing target) are
/// part of the property — they must not corrupt the snapshot either.
fn step_line(op: u8, gate: usize, dx: i32) -> String {
    match op % 4 {
        0 => format!("create nand2 G{gate}"),
        1 => format!("translate G{gate} {} 0", i64::from(dx) * 4000),
        2 => "undo".to_owned(),
        _ => "redo".to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `suspend → snapshot → load → resume` round-trips the session
    /// exactly: the canonical codec re-encodes the decoded session to
    /// the same bytes, and the decoded session still resumes and
    /// re-suspends to those bytes.
    #[test]
    fn snapshot_round_trip_is_state_identical(
        steps in prop::collection::vec((0u8..4, 0usize..6, -2i32..3), 0..40)
    ) {
        let mut lib = standard_library();
        let cp = {
            let mut ed = Editor::open(&mut lib, "TOP").expect("TOP opens");
            for (op, gate, dx) in steps {
                // Errors (duplicate names, missing gates, empty undo
                // stack) are legal editing history; ignore them.
                let _ = riot_core::parse_command_line(&step_line(op, gate, dx), 0)
                    .map(|cmd| ed.execute(cmd));
            }
            ed.suspend()
        };
        let payload = encode_session(&lib, &cp).expect("live session encodes");

        // Framing round-trips.
        let framed = frame_snapshot(7, &payload);
        let (covered, parsed) = parse_snapshot(&framed).expect("own framing parses");
        prop_assert_eq!(covered, 7);
        prop_assert_eq!(parsed, &payload[..]);

        // Decode → re-encode is the identity: state-identical.
        let (lib2, cp2) = decode_session(&payload).expect("own payload decodes");
        prop_assert_eq!(
            encode_session(&lib2, &cp2).expect("decoded session re-encodes"),
            payload.clone()
        );

        // And the decoded session is alive: resume, suspend, still
        // the same bytes.
        let mut lib2 = lib2;
        let ed2 = Editor::resume(&mut lib2, cp2).expect("decoded session resumes");
        let cp3 = ed2.suspend();
        prop_assert_eq!(
            encode_session(&lib2, &cp3).expect("resumed session re-encodes"),
            payload
        );
    }
}

#[test]
fn torn_snapshot_never_compacts_and_recovery_falls_back() {
    let root = temp_root("snapfault");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    cfg.snapshot_every = 4;
    // Every snapshot attempt in this test tears: the WAL must stay
    // full-history because compaction may only follow a durable
    // snapshot.
    for _ in 0..32 {
        cfg.faults.arm(FAULT_SERVE_SNAPSHOT_WRITE, 0);
    }
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    c.open("snapfault", "TOP").unwrap();
    for k in 0..10u32 {
        let line = if k.is_multiple_of(2) {
            format!("create nand2 G{}", k / 2)
        } else {
            format!("translate G{} 4000 0", k / 2)
        };
        // Torn snapshots must never cost an acknowledgement.
        c.cmd("snapfault", &line).unwrap();
    }
    c.close_session("snapfault").unwrap();
    c.shutdown_server().unwrap();
    h.wait();

    // The WAL still starts at the `edit` head: compaction was refused.
    let bytes = std::fs::read(wal_path(&root, "snapfault")).unwrap();
    let rec = Journal::recover_wal(&bytes);
    assert!(rec.is_clean());
    let cmds = rec.journal.commands().to_vec();
    assert_eq!(cmds.len(), 11, "edit head + 10 commands, none compacted");
    assert!(matches!(
        cmds.first(),
        Some(riot_core::Command::Edit { .. })
    ));

    // The torn snapshot is on disk and unusable; recovery ignores it.
    let snap = std::fs::read(riot_serve::snap_path(&root, "snapfault")).unwrap();
    assert!(parse_snapshot(&snap).is_err(), "snapshot is torn");
    let fallbacks = riot_trace::registry().counter("serve.recovery.full_replay");
    let before = fallbacks.get();
    let (mut entry, kind) = SessionEntry::recover(&root, "snapfault", standard_library()).unwrap();
    assert!(matches!(
        kind,
        riot_serve::OpenKind::Recovered { records: 11, .. }
    ));
    assert_eq!(fallbacks.get() - before, 1, "fallback path taken");

    // Model equivalence of the fallback recovery.
    let mut mlib = standard_library();
    let (model, _) = riot_check::lockstep_model(&mut mlib, &cmds).unwrap();
    let cp = entry.cp.take().unwrap();
    let ed = Editor::resume(&mut entry.lib, cp).unwrap();
    riot_check::check_equiv(&ed, &model)
        .unwrap_or_else(|e| panic!("fallback recovery diverges: {e}"));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn group_flush_fault_preserves_exactly_the_acknowledged_prefix() {
    let root = temp_root("flushfault");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    // The third flush pass over this session crashes it.
    cfg.faults.arm(FAULT_SERVE_GROUP_FLUSH, 2);
    let faults = cfg.faults.clone();
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    c.open("flushfault", "TOP").unwrap();
    let mut acked = Vec::new();
    let mut crashed = false;
    for k in 0..6 {
        let line = format!("create nand2 G{k}");
        match c.cmd("flushfault", &line) {
            Ok(_) => acked.push(line),
            Err(e) => {
                assert!(e.contains("group flush"), "unexpected error: {e}");
                crashed = true;
                break;
            }
        }
    }
    assert!(crashed, "the armed group-flush fault must fire");
    assert_eq!(faults.injected(), 1);

    // The WAL holds exactly the acknowledged prefix — the refused
    // command was staged but its bytes never joined a flush the
    // client heard about.
    let bytes = std::fs::read(wal_path(&root, "flushfault")).unwrap();
    let rec = Journal::recover_wal(&bytes);
    let cmds = rec.journal.commands().to_vec();
    assert_eq!(
        cmds.len(),
        acked.len() + 1,
        "durable records == acknowledged commands + edit head"
    );
    let mut mlib = standard_library();
    let (_, replayed) = riot_check::lockstep_model(&mut mlib, &cmds).unwrap();
    assert_eq!(replayed, cmds.len());

    // Reopen recovers the prefix and the session works again.
    let detail = c.open("flushfault", "TOP").unwrap();
    assert!(
        detail.contains(&format!("recovered {} records", acked.len() + 1)),
        "recovery report missing: {detail}"
    );
    assert_eq!(
        c.cmd("flushfault", "create nand2 X").unwrap(),
        format!("instance {}", acked.len()),
        "arena picks up exactly after the durable prefix"
    );
    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}
