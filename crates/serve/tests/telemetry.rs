//! Telemetry-plane integration tests: wire-propagated trace context
//! decomposing into server-side child spans, the HTTP scrape endpoint,
//! the `telemetry`/`dump` wire verbs, percentile stats lines, and v1
//! client compatibility.

use riot_serve::{
    Bind, Client, FlightRecorder, ProtoVersion, ServeConfig, Server, TelemetryFormat,
};
use riot_trace::{fresh_trace_id, Snapshot, TraceContext};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A traced, pipelined `cmd` must decompose into the full server-side
/// span chain — decode, queue-wait, apply, wal-flush — all carrying
/// the **client's** trace id. This is the acceptance bar for the wire
/// propagation: one client span explains the whole server round trip.
#[test]
fn traced_cmd_decomposes_into_server_side_child_spans() {
    riot_trace::enable(true);
    let root = temp_root("traced");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();

    let mut c = Client::connect(&h.addr()).unwrap();
    assert_eq!(c.version(), ProtoVersion::V2, "fresh client negotiates v2");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.open("traced", "TOP").unwrap();

    // Pipeline two traced commands under one client trace, as a traced
    // caller (UI thread, batch tool) would.
    let trace_id = fresh_trace_id();
    let ctx = TraceContext::new(trace_id, 7);
    let id1 = c.cmd_traced("traced", "create nand2 A", ctx).unwrap();
    let id2 = c.cmd_traced("traced", "create nand2 B", ctx).unwrap();
    assert_eq!(c.recv().unwrap().id, id1);
    assert_eq!(c.recv().unwrap().id, id2);

    let spans = riot_trace::recorder().snapshot();
    let mine: Vec<&str> = spans
        .iter()
        .filter(|s| s.trace == trace_id)
        .map(|s| s.name)
        .collect();
    for required in [
        "serve.frame.decode",
        "serve.queue.wait",
        "serve.cmd.apply",
        "serve.wal.flush",
    ] {
        assert!(
            mine.contains(&required),
            "trace {trace_id:#x} is missing the `{required}` child span; got {mine:?}"
        );
    }
    assert!(
        mine.len() >= 4,
        "expected at least 4 server-side child spans, got {mine:?}"
    );

    c.shutdown_server().unwrap();
    h.wait();
    riot_trace::enable(false);
    let _ = std::fs::remove_dir_all(root);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect telemetry listener");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header split");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    body.to_owned()
}

/// Pulls one sample value out of a Prometheus text body, checking the
/// whole body is well-formed on the way past.
fn prom_value(body: &str, metric: &str) -> Option<u64> {
    let mut found = None;
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == ':'),
            "invalid metric name in line {line:?}"
        );
        let v: i64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        if bare == metric {
            found = Some(v as u64);
        }
    }
    found
}

#[test]
fn http_scrape_serves_valid_prometheus_with_live_counters() {
    let root = temp_root("scrape");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.telemetry_addr = Some("127.0.0.1:0".into());
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let scrape = h.telemetry_addr().expect("telemetry listener is up");

    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.open("scrape", "TOP").unwrap();
    for k in 0..20 {
        c.cmd("scrape", &format!("create nand2 S{k}")).unwrap();
    }

    let body = http_get(scrape, "/metrics");
    let cmds = prom_value(&body, "riot_serve_cmds_total").expect("cmds counter exposed");
    assert!(cmds >= 20, "riot_serve_cmds_total = {cmds}");
    assert!(
        body.contains("riot_serve_wal_fsync_ns_bucket")
            && prom_value(&body, "riot_serve_wal_fsync_ns_count").unwrap_or(0) > 0,
        "fsync-latency histogram missing:\n{body}"
    );

    // Counters are monotone across scrapes while traffic flows.
    for k in 20..40 {
        c.cmd("scrape", &format!("create nand2 S{k}")).unwrap();
    }
    let body2 = http_get(scrape, "/metrics");
    let cmds2 = prom_value(&body2, "riot_serve_cmds_total").unwrap();
    assert!(cmds2 >= cmds + 20, "not monotone: {cmds} -> {cmds2}");

    // The JSON rendering parses under the same schema the wire verb
    // uses, and the health probe answers.
    let json = http_get(scrape, "/metrics.json");
    let snap = Snapshot::parse(&json).expect("valid riot-telemetry/1 json");
    assert!(snap
        .counters
        .iter()
        .any(|(n, v)| n == "serve.cmds" && *v >= 40));
    assert_eq!(http_get(scrape, "/healthz"), "ok\n");

    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn telemetry_and_dump_wire_verbs_answer_inline() {
    let root = temp_root("verbs");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.open("verbs", "TOP").unwrap();
    c.cmd("verbs", "create nand2 A").unwrap();

    let prom = c.telemetry(TelemetryFormat::Prometheus).unwrap();
    assert!(prom.contains("riot_serve_cmds_total"), "{prom}");
    let json = c.telemetry(TelemetryFormat::Json).unwrap();
    Snapshot::parse(&json).expect("wire json snapshot parses");

    // `dump` writes the flight recorder under the server root and
    // answers with the path; the file parses back into events.
    let path = c.dump().unwrap();
    let text = std::fs::read_to_string(&path).expect("dump file exists");
    let events = FlightRecorder::parse_dump(&text).expect("dump parses");
    assert!(
        events.iter().any(|e| e.detail == "create nand2 A"),
        "dump misses the applied command: {text}"
    );

    // The stats line carries p50/p95/p99 for serve.* histograms.
    let stats = c.stats().unwrap();
    assert!(
        stats
            .lines()
            .any(|l| l.starts_with("serve.") && l.contains(" p99 ")),
        "no percentile lines in stats: {stats}"
    );

    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}

/// A strict `RIOTSRV1` client keeps working against the revised
/// server: same verbs, same replies, no trace bytes on the wire.
#[test]
fn v1_clients_are_unaffected_by_the_protocol_revision() {
    let root = temp_root("v1compat");
    let cfg = ServeConfig::new(&root);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect_v1(&h.addr()).unwrap();
    assert_eq!(c.version(), ProtoVersion::V1);
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(c.open("old", "TOP").unwrap(), "created");
    assert_eq!(c.cmd("old", "create nand2 A").unwrap(), "instance 0");
    // Traced sends silently drop the context on a v1 connection.
    let id = c
        .cmd_traced("old", "create nand2 B", TraceContext::new(99, 1))
        .unwrap();
    assert_eq!(c.recv().unwrap().id, id);
    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}
