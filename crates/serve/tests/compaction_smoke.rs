//! Compaction smoke test — the CI `compaction-smoke` job.
//!
//! A 500-command session runs with `--snapshot-every 100` and an armed
//! journal-append fault that kills the session mid-burst (450 commands
//! land, the 451st crashes). Recovery must then be O(snapshot):
//! snapshots were cut at records 101/201/301/401, so the reopen decodes
//! the latest snapshot and replays **at most one snapshot interval** of
//! WAL tail — never the 451-record history. The recovered session
//! finishes the remaining commands, and the final state is proved
//! model-equivalent to a clean lockstep replay of every acknowledged
//! command.

use riot_core::{parse_command_line, Editor, FAULT_SERVE_JOURNAL_APPEND};
use riot_serve::{standard_library, Bind, Client, ServeConfig, Server, SessionEntry};
use std::time::Duration;

fn command_line(k: usize) -> String {
    if k.is_multiple_of(2) {
        format!("create nand2 G{}", k / 2)
    } else {
        format!("translate G{} 4000 0", k / 2)
    }
}

#[test]
fn killed_mid_burst_session_recovers_in_one_snapshot_interval() {
    const COMMANDS: usize = 500;
    const INTERVAL: usize = 100;
    const CRASH_AFTER: u64 = 450;

    let root = std::env::temp_dir().join(format!("riot-compaction-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    cfg.snapshot_every = INTERVAL;
    // 450 commands land durably; the 451st hits the fault plan and the
    // session crashes with a torn WAL record.
    cfg.faults.arm(FAULT_SERVE_JOURNAL_APPEND, CRASH_AFTER);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    c.open("smoke", "TOP").unwrap();
    let mut acked: Vec<String> = Vec::new();
    let mut k = 0;
    let crash_error = loop {
        assert!(k < COMMANDS, "the armed fault never fired");
        let line = command_line(k);
        match c.cmd("smoke", &line) {
            Ok(_) => {
                acked.push(line);
                k += 1;
            }
            Err(e) => break e,
        }
    };
    assert!(
        crash_error.contains("session crashed"),
        "expected a crash, got: {crash_error}"
    );
    assert_eq!(acked.len() as u64, CRASH_AFTER, "durable prefix size");

    // Reopen: recovery must come from the newest snapshot (cut at
    // record 401) plus a WAL tail no longer than one interval — not
    // from a 451-record full replay.
    let reg = riot_trace::registry();
    let replayed = reg.counter("serve.recovery.replayed_records");
    let snap_loads = reg.counter("serve.recovery.snapshot_loads");
    let (r0, s0) = (replayed.get(), snap_loads.get());
    let detail = c.open("smoke", "TOP").unwrap();
    assert!(
        detail.contains(&format!("recovered {} records", acked.len() + 1))
            && detail.contains("truncated"),
        "recovery report: {detail}"
    );
    assert_eq!(snap_loads.get() - s0, 1, "recovery decoded the snapshot");
    let tail = replayed.get() - r0;
    assert!(
        tail as usize <= INTERVAL,
        "recovery replayed {tail} records — more than one snapshot \
         interval ({INTERVAL}); compaction is not keeping up"
    );

    // The recovered session finishes the burst.
    for j in k..COMMANDS {
        let line = command_line(j);
        c.cmd("smoke", &line).unwrap();
        acked.push(line);
    }
    c.close_session("smoke").unwrap();
    c.shutdown_server().unwrap();
    h.wait();

    // Offline proof: recover from disk once more and compare against a
    // clean lockstep replay of everything the client was promised.
    let mut cmds = vec![riot_core::Command::Edit {
        cell: "TOP".to_owned(),
    }];
    for (i, line) in acked.iter().enumerate() {
        cmds.push(parse_command_line(line, i + 1).unwrap());
    }
    let mut mlib = standard_library();
    let (model, replayed) = riot_check::lockstep_model(&mut mlib, &cmds)
        .unwrap_or_else(|e| panic!("reference replay diverges: {e}"));
    assert_eq!(replayed, cmds.len());

    let (mut entry, _) = SessionEntry::recover(&root, "smoke", standard_library()).unwrap();
    let cp = entry.cp.take().expect("recovered session is suspended");
    let ed = Editor::resume(&mut entry.lib, cp).expect("recovered session resumes");
    riot_check::check_equiv(&ed, &model)
        .unwrap_or_else(|e| panic!("recovered state diverges from clean replay: {e}"));
    let _ = std::fs::remove_dir_all(root);
}
