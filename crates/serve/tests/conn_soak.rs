//! Connection-plane soak and conformance tests, run against **both**
//! io models through one shared helper: a 256-connection herd mixing
//! idle, pipelining and slow-reader clients with zero lost or
//! misordered replies; `busy` backpressure under a stuffed inbox;
//! half-open connections evicted on the read timeout; and the poll
//! loop's `serve.conns.open` gauge returning to zero after a drain.
//!
//! Each model's scenarios run sequentially inside a single `#[test]`
//! because the gauges live in the process-global `riot_trace` registry
//! — two concurrent poll loops would fight over them. The threads
//! model never touches the poll gauges, so the two tests may overlap.

use riot_serve::{Bind, Client, IoModel, Reply, ReplyBody, RequestBody, ServeConfig, Server};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn soak_cfg(root: &std::path::Path, model: IoModel) -> ServeConfig {
    let mut cfg = ServeConfig::new(root);
    cfg.threads = 2;
    cfg.tick = Duration::from_millis(2);
    cfg.read_timeout = Duration::from_secs(10);
    cfg.write_timeout = Duration::from_secs(10);
    cfg.io_model = model;
    cfg
}

/// Pipelines `n` pings with `window` in flight and asserts the replies
/// come back **in send order** — the conn plane answers pings inline,
/// so any reordering here is a frame-dispatch or backlog-order bug.
fn ping_pipeliner(addr: &riot_serve::BoundAddr, n: usize, window: usize) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut expected: VecDeque<u64> = VecDeque::new();
    let mut sent = 0usize;
    let mut acked = 0usize;
    while acked < n {
        while expected.len() < window && sent < n {
            expected.push_back(
                c.send(RequestBody::Ping)
                    .map_err(|e| format!("send: {e}"))?,
            );
            sent += 1;
        }
        let Reply { id, body } = c.recv().map_err(|e| format!("recv: {e}"))?;
        let want = expected.pop_front().ok_or("reply with nothing in flight")?;
        if id != want {
            return Err(format!("misordered reply: got id {id}, wanted {want}"));
        }
        match body {
            ReplyBody::Ok(_) => acked += 1,
            other => return Err(format!("ping answered {other:?}")),
        }
    }
    Ok(())
}

/// Drives `n` independent `create` commands through one session with a
/// window of 8, absorbing `busy` backpressure. Asserts every command
/// is acknowledged exactly once and no reply answers an unknown id.
fn cmd_driver(addr: &riot_serve::BoundAddr, session: &str, n: usize) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    for _ in 0..1000 {
        match c.open(session, "TOP") {
            Err(e) if e == "busy" => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => return Err(format!("open: {e}")),
            Ok(_) => break,
        }
    }
    let mut ready: VecDeque<usize> = (0..n).collect();
    let mut in_flight: HashMap<u64, usize> = HashMap::new();
    let mut acked = vec![false; n];
    while acked.iter().any(|a| !a) {
        while in_flight.len() < 8 {
            let Some(i) = ready.pop_front() else { break };
            let id = c
                .send(RequestBody::Cmd {
                    session: session.to_owned(),
                    line: format!("create nand2 S{i}"),
                })
                .map_err(|e| format!("send: {e}"))?;
            in_flight.insert(id, i);
        }
        let Reply { id, body } = c.recv().map_err(|e| format!("recv: {e}"))?;
        let i = in_flight
            .remove(&id)
            .ok_or_else(|| format!("reply id {id} answers nothing in flight"))?;
        match body {
            ReplyBody::Ok(_) => {
                if acked[i] {
                    return Err(format!("command {i} acknowledged twice"));
                }
                acked[i] = true;
            }
            ReplyBody::Busy => ready.push_front(i),
            ReplyBody::Err(m) => return Err(format!("command {i}: {m}")),
        }
    }
    for _ in 0..1000 {
        match c.close_session(session) {
            Err(e) if e == "busy" => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => return Err(format!("close: {e}")),
            Ok(_) => return Ok(()),
        }
    }
    Err("close: busy after 1000 retries".into())
}

/// Fires `n` pings without reading a single reply, sleeps, then drains
/// them all — the server must buffer the replies (bounded backlog) and
/// deliver every one, in order, once the reader wakes up.
fn slow_reader(addr: &riot_serve::BoundAddr, n: usize) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(
            c.send(RequestBody::Ping)
                .map_err(|e| format!("send: {e}"))?,
        );
    }
    std::thread::sleep(Duration::from_millis(150));
    for want in ids {
        let Reply { id, body } = c.recv().map_err(|e| format!("recv: {e}"))?;
        if id != want {
            return Err(format!("slow reader misordered: got {id}, wanted {want}"));
        }
        if !matches!(body, ReplyBody::Ok(_)) {
            return Err(format!("slow reader ping answered {body:?}"));
        }
    }
    Ok(())
}

/// The shared herd scenario: 256 concurrent connections — 168 idle, 40
/// ping pipeliners, 32 command sessions, 16 slow readers — with every
/// reply accounted for.
fn herd(model: IoModel) {
    let root = temp_root(&format!("herd-{}", model.as_str()));
    let cfg = soak_cfg(&root, model);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = h.addr();

    let mut idle = Vec::new();
    for i in 0..168 {
        idle.push(Client::connect(&addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")));
    }
    if model == IoModel::Poll {
        // One round trip so the loop has certainly seen the whole herd,
        // then the open-connections gauge must cover it.
        ping_pipeliner(&addr, 1, 1).unwrap();
        let open = riot_trace::registry().gauge("serve.conns.open").get();
        assert!(open >= 168, "serve.conns.open = {open} with 168 idle conns");
    }

    let decode_in_place = riot_trace::registry().counter("serve.conn.decode.in_place");
    let decoded_before = decode_in_place.get();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..40 {
            let addr = addr.clone();
            handles.push(scope.spawn(move || ping_pipeliner(&addr, 40, 8)));
        }
        for s in 0..32 {
            let addr = addr.clone();
            let session = format!("soak-{}-{s}", model.as_str());
            handles.push(scope.spawn(move || cmd_driver(&addr, &session, 20)));
        }
        for _ in 0..16 {
            let addr = addr.clone();
            handles.push(scope.spawn(move || slow_reader(&addr, 200)));
        }
        for (k, handle) in handles.into_iter().enumerate() {
            handle
                .join()
                .unwrap_or_else(|_| Err("worker panicked".into()))
                .unwrap_or_else(|e| panic!("soak worker {k} ({}): {e}", model.as_str()));
        }
    });
    assert!(
        decode_in_place.get() > decoded_before,
        "zero-copy decode counter never moved under load"
    );

    drop(idle);
    h.shutdown();
    if model == IoModel::Poll {
        assert_eq!(
            riot_trace::registry().gauge("serve.conns.open").get(),
            0,
            "serve.conns.open must return to 0 after the drain"
        );
        assert_eq!(
            riot_trace::registry()
                .gauge("serve.conn.backlog_bytes")
                .get(),
            0,
            "serve.conn.backlog_bytes must return to 0 after the drain"
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

/// A stuffed inbox must answer `busy`, not buffer unboundedly: stall
/// the only worker, overfill its 2-deep queue, and count the refusals.
fn busy_under_pressure(model: IoModel) {
    let root = temp_root(&format!("busy-{}", model.as_str()));
    let mut cfg = soak_cfg(&root, model);
    cfg.threads = 1;
    cfg.inbox_cap = 2;
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.open("jam", "TOP").unwrap();

    // Hold the worker down, then flood: the stall occupies it while the
    // pipelined commands overflow the 2-deep inbox.
    let stall_id = c
        .send(RequestBody::Stall {
            session: "jam".into(),
            ms: 200,
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let mut ids = vec![stall_id];
    for k in 0..8 {
        ids.push(
            c.send(RequestBody::Cmd {
                session: "jam".into(),
                line: format!("create nand2 J{k}"),
            })
            .unwrap(),
        );
    }
    let mut busy = 0usize;
    let mut seen = 0usize;
    while seen < ids.len() {
        let Reply { id, body } = c.recv().unwrap();
        assert!(ids.contains(&id), "phantom reply id {id}");
        if matches!(body, ReplyBody::Busy) {
            busy += 1;
        }
        seen += 1;
    }
    assert!(busy > 0, "a 2-deep inbox swallowed 8 pipelined commands");
    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}

/// Half-open connections — handshaken then silent, or never
/// handshaken at all — must be evicted on the read timeout, observed
/// from the client side as EOF.
fn half_open_eviction(model: IoModel) {
    let root = temp_root(&format!("halfopen-{}", model.as_str()));
    let mut cfg = soak_cfg(&root, model);
    cfg.read_timeout = Duration::from_millis(200);
    cfg.write_timeout = Duration::from_millis(200);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let riot_serve::BoundAddr::Tcp(sa) = h.addr() else {
        panic!("tcp bind expected");
    };

    // Handshakes, then goes silent.
    let mut silent = std::net::TcpStream::connect(sa).unwrap();
    silent.write_all(riot_serve::SRV_MAGIC_V2).unwrap();
    let mut echo = [0u8; 8];
    silent.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, riot_serve::SRV_MAGIC_V2);

    // Never even sends the magic.
    let mut mute = std::net::TcpStream::connect(sa).unwrap();

    for (tag, s) in [("silent", &mut silent), ("mute", &mut mute)] {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let started = Instant::now();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break, // evicted: clean EOF
                Ok(_) => continue,
                Err(e) => panic!("{tag} conn: expected EOF, got {e}"),
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "{tag} conn outlived the 200ms read timeout"
        );
    }
    h.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

/// A stop request must cut through an idle herd without waiting out
/// any tick: the wake pipe (poll) / `shutdown_read` (threads) turns
/// 100 parked connections into an immediate drain.
fn fast_shutdown(model: IoModel, bound: Duration) {
    let root = temp_root(&format!("fastdown-{}", model.as_str()));
    let cfg = soak_cfg(&root, model);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = h.addr();
    let mut herd = Vec::new();
    for i in 0..100 {
        herd.push(Client::connect(&addr).unwrap_or_else(|e| panic!("conn {i}: {e}")));
    }
    // One round trip guarantees the server has registered the herd.
    ping_pipeliner(&addr, 1, 1).unwrap();

    let started = Instant::now();
    h.shutdown();
    let elapsed = started.elapsed();
    drop(herd);
    assert!(
        elapsed < bound,
        "{} drain of 100 idle conns took {elapsed:?} (bound {bound:?})",
        model.as_str()
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn poll_model_soaks_clean() {
    herd(IoModel::Poll);
    busy_under_pressure(IoModel::Poll);
    half_open_eviction(IoModel::Poll);
    // The wake pipe makes the drain latency a couple of 2ms loop
    // iterations, nowhere near any timeout.
    fast_shutdown(IoModel::Poll, Duration::from_millis(10));
}

#[test]
fn threads_model_soaks_clean() {
    herd(IoModel::Threads);
    busy_under_pressure(IoModel::Threads);
    half_open_eviction(IoModel::Threads);
    // `shutdown_read` unblocks every parked reader instantly; the
    // bound is looser only because 200 OS threads must unwind.
    fast_shutdown(IoModel::Threads, Duration::from_millis(500));
}
