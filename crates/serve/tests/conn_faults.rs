//! The connection plane's two fault sites, proved harmless to
//! durability against the riot-check model:
//!
//! * `serve.poll.wakeup` — a *lost* wakeup: the pipe stays undrained
//!   and reply routing skips one loop iteration. Delivery must ride
//!   the tick fallback; nothing is lost, only late.
//! * `serve.conn.backlog` — a client that never drains: the reply
//!   routing evicts the connection instead of buffering unboundedly.
//!   The acknowledgement is lost with the socket, but every command
//!   the worker applied is already journaled, and the WAL must replay
//!   model-equivalently.

use riot_core::{Editor, Journal, FAULT_SERVE_CONN_BACKLOG, FAULT_SERVE_POLL_WAKEUP};
use riot_serve::{
    standard_library, wal_path, Bind, Client, IoModel, ServeConfig, Server, SessionEntry,
};
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-connfault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn poll_cfg(root: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(2);
    cfg.io_model = IoModel::Poll;
    cfg
}

/// A lost wakeup delays reply routing by one iteration; the tick
/// fallback delivers on the next pass. The client just sees a normal
/// (slightly late) `ok` — and the `serve.poll.wakeup.lost` counter
/// plus a flight-recorder fault event prove the site actually fired.
#[test]
fn lost_wakeup_is_absorbed_by_the_tick_fallback() {
    let root = temp_root("wakeup");
    let cfg = poll_cfg(&root);
    cfg.faults.arm(FAULT_SERVE_POLL_WAKEUP, 0);
    let faults = cfg.faults.clone();
    let lost = riot_trace::registry().counter("serve.poll.wakeup.lost");
    let before = lost.get();
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    c.open("wake", "TOP").unwrap();
    assert_eq!(c.cmd("wake", "create nand2 A").unwrap(), "instance 0");
    assert_eq!(faults.injected(), 1, "the armed wakeup fault must fire");
    assert!(
        lost.get() > before,
        "serve.poll.wakeup.lost never counted the dropped wakeup"
    );

    // The plane is healthy afterwards: more traffic, clean drain.
    assert_eq!(c.cmd("wake", "create nand2 B").unwrap(), "instance 1");
    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}

/// A tripped backlog evicts the connection while its reply is in
/// flight: the client loses the socket, **not** the durability. The
/// WAL must hold every applied command and replay model-equivalently
/// (riot-check lockstep), and a reconnect resumes exactly after it.
#[test]
fn backlog_eviction_loses_the_socket_never_the_journal() {
    let root = temp_root("backlog");
    let cfg = poll_cfg(&root);
    // First consultation = the reply to the first routed job.
    cfg.faults.arm(FAULT_SERVE_CONN_BACKLOG, 1);
    let faults = cfg.faults.clone();
    let evicted = riot_trace::registry().counter("serve.conn.evicted");
    let before = evicted.get();
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // `open` consumes consultation 0; the `cmd` reply trips the site,
    // so the command is applied and journaled but its ack dies with
    // the eviction.
    c.open("evict", "TOP").unwrap();
    let err = c
        .cmd("evict", "create nand2 A")
        .expect_err("the evicted connection cannot deliver the ack");
    assert!(
        err.contains("closed") || err.contains("i/o"),
        "unexpected eviction error: {err}"
    );
    assert_eq!(faults.injected(), 1);
    assert!(evicted.get() > before, "serve.conn.evicted never moved");

    // The command survived: the hosted session outlives its socket, so
    // a fresh connection attaches and sees the applied command.
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(
        c.open("evict", "TOP").unwrap(),
        "attached",
        "the session must outlive its evicted socket"
    );
    assert_eq!(
        c.cmd("evict", "create nand2 B").unwrap(),
        "instance 1",
        "arena resumes after the durable record"
    );
    c.close_session("evict").unwrap();
    c.shutdown_server().unwrap();
    h.wait();

    // Model equivalence of the surviving journal, riot-check style.
    let bytes = std::fs::read(wal_path(&root, "evict")).unwrap();
    let rec = Journal::recover_wal(&bytes);
    assert!(rec.is_clean(), "eviction must not tear the WAL");
    let cmds = rec.journal.commands().to_vec();
    let mut mlib = standard_library();
    let (model, replayed) = riot_check::lockstep_model(&mut mlib, &cmds).unwrap();
    assert_eq!(replayed, cmds.len());
    let (mut entry, _) = SessionEntry::recover(&root, "evict", standard_library()).unwrap();
    let cp = entry.cp.take().unwrap();
    let ed = Editor::resume(&mut entry.lib, cp).unwrap();
    riot_check::check_equiv(&ed, &model)
        .unwrap_or_else(|e| panic!("post-eviction recovery diverges from the model: {e}"));
    let _ = std::fs::remove_dir_all(root);
}
