//! Golden conformance fixture for the poll event loop:
//! `examples/poll_trace.jsonl` pins one connection's full lifecycle —
//! accept → readable (including a mid-frame split) → handshake →
//! frame → dispatch → reply → writable → close — as canonical JSONL
//! trace events. The fixture must parse and re-encode byte-identically
//! (the [`riot_serve::TraceEvent`] codec is canonical), and replaying
//! the script through a real [`riot_serve::Connection`] must reproduce
//! the file byte-for-byte. Regenerate with the `#[ignore]` test below
//! after a deliberate protocol change.

use riot_serve::conn::to_hex;
use riot_serve::{
    encode_frame, ConnEvent, Connection, ProtoVersion, Reply, ReplyBody, Request, RequestBody,
    RequestBodyRef, RequestRef, TraceEvent, SRV_MAGIC_V2,
};
use std::path::PathBuf;

/// The fixture's connection token: arbitrary, pinned.
const CONN: u64 = 7;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/poll_trace.jsonl")
}

fn request_text(body: &RequestBodyRef<'_>) -> String {
    match body {
        RequestBodyRef::Open { session, cell } => format!("open {session} {cell}"),
        RequestBodyRef::Cmd { session, line } => format!("cmd {session} {line}"),
        RequestBodyRef::Ping => "ping".to_owned(),
        other => format!("{other:?}"),
    }
}

fn reply_text(body: &ReplyBody) -> String {
    match body {
        ReplyBody::Ok(d) => format!("ok {d}"),
        ReplyBody::Err(m) => format!("err {m}"),
        ReplyBody::Busy => "busy".to_owned(),
    }
}

/// The session a request dispatches into, if it crosses into the
/// worker pool (pings are answered on the event loop itself).
fn dispatch_session(body: &RequestBodyRef<'_>) -> Option<String> {
    match body {
        RequestBodyRef::Open { session, .. } | RequestBodyRef::Cmd { session, .. } => {
            Some((*session).to_owned())
        }
        _ => None,
    }
}

/// Flushes the connection's whole write backlog as one `writable`
/// event, exactly as the loop does when the socket accepts it all.
fn flush(c: &mut Connection, ev: &mut Vec<TraceEvent>) {
    let bytes = c.writable_bytes().to_vec();
    if !bytes.is_empty() {
        c.advance_write(bytes.len());
        ev.push(TraceEvent::Writable {
            conn: CONN,
            hex: to_hex(&bytes),
        });
    }
}

/// Feeds the wire chunks of one request, pumping the state machine
/// after each: `readable` per chunk, then `frame` (+ `dispatch` for
/// worker verbs) once the frame completes, then the scripted `reply`
/// and the `writable` that carries it out.
fn step(c: &mut Connection, ev: &mut Vec<TraceEvent>, chunks: &[&[u8]], reply: &Reply) {
    let mut replied = false;
    for chunk in chunks {
        ev.push(TraceEvent::Readable {
            conn: CONN,
            hex: to_hex(chunk),
        });
        c.ingest(chunk);
        while let Some(event) = c.next_event() {
            let ConnEvent::Frame { off, len } = event else {
                panic!("fixture script expected a frame, got {event:?}");
            };
            let payload = c.frame_payload(off, len);
            let (req, _) =
                RequestRef::decode_versioned(payload, ProtoVersion::V2).expect("fixture decodes");
            ev.push(TraceEvent::Frame {
                conn: CONN,
                id: req.id,
                text: request_text(&req.body),
            });
            let dispatch = dispatch_session(&req.body);
            if let Some(session) = dispatch {
                ev.push(TraceEvent::Dispatch {
                    conn: CONN,
                    id: req.id,
                    session,
                });
            }
            c.note_dispatched();
            let _ = c.deliver_reply(reply);
            ev.push(TraceEvent::Reply {
                conn: CONN,
                id: reply.id,
                text: reply_text(&reply.body),
            });
            flush(c, ev);
            replied = true;
        }
    }
    assert!(replied, "fixture chunks never completed a frame");
}

/// Drives the canonical script through a real connection state
/// machine and returns the trace it produces. This is both the
/// fixture generator and the replay: the golden test asserts its
/// output matches the checked-in file byte-for-byte.
fn replayed_trace() -> Vec<TraceEvent> {
    let mut ev = Vec::new();
    let mut c = Connection::new(1 << 16);
    ev.push(TraceEvent::Accept { conn: CONN });

    // Handshake: magic in, version event, echo out.
    ev.push(TraceEvent::Readable {
        conn: CONN,
        hex: to_hex(SRV_MAGIC_V2),
    });
    c.ingest(SRV_MAGIC_V2);
    assert_eq!(c.next_event(), Some(ConnEvent::Handshake(ProtoVersion::V2)));
    ev.push(TraceEvent::Handshake {
        conn: CONN,
        version: 2,
    });
    flush(&mut c, &mut ev);

    // open riot TOP — one whole frame.
    let open = Request {
        id: 1,
        body: RequestBody::Open {
            session: "riot".into(),
            cell: "TOP".into(),
        },
    };
    let frame = encode_frame(&open.encode_v2(None));
    step(
        &mut c,
        &mut ev,
        &[&frame],
        &Reply {
            id: 1,
            body: ReplyBody::Ok("created".into()),
        },
    );

    // cmd riot create nand2 A — split mid-frame: the first chunk ends
    // inside the payload, pinning the partial-frame path.
    let cmd = Request {
        id: 2,
        body: RequestBody::Cmd {
            session: "riot".into(),
            line: "create nand2 A".into(),
        },
    };
    let frame = encode_frame(&cmd.encode_v2(None));
    let (head, tail) = frame.split_at(13);
    step(
        &mut c,
        &mut ev,
        &[head, tail],
        &Reply {
            id: 2,
            body: ReplyBody::Ok("instance 0".into()),
        },
    );

    // ping — answered on the loop, no dispatch event.
    let ping = Request {
        id: 3,
        body: RequestBody::Ping,
    };
    let frame = encode_frame(&ping.encode_v2(None));
    step(
        &mut c,
        &mut ev,
        &[&frame],
        &Reply {
            id: 3,
            body: ReplyBody::Ok("pong".into()),
        },
    );

    // Drain: backlog is flushed and nothing is in flight, so the
    // connection closes immediately.
    c.begin_drain();
    assert!(c.is_closed(), "scripted drain must close cleanly");
    ev.push(TraceEvent::Close { conn: CONN });
    ev
}

fn render(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Every line of the fixture parses and re-encodes to the same bytes:
/// the trace codec is canonical, so a fixture diff is always a real
/// protocol change, never formatting noise.
#[test]
fn fixture_parses_and_reencodes_byte_identically() {
    let text = std::fs::read_to_string(fixture_path()).expect("examples/poll_trace.jsonl exists");
    assert!(!text.is_empty() && text.ends_with('\n'));
    for line in text.lines() {
        let event = TraceEvent::parse_line(line).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(event.to_json_line(), line, "non-canonical fixture line");
    }
}

/// Replaying the pinned script through a live connection state machine
/// reproduces the fixture byte-for-byte — accept through close,
/// including the mid-frame split and the handshake echo.
#[test]
fn replay_reproduces_the_fixture() {
    let want = std::fs::read_to_string(fixture_path()).expect("examples/poll_trace.jsonl exists");
    assert_eq!(render(&replayed_trace()), want, "event-loop trace drifted");
}

/// Rewrites the checked-in fixture from the live state machine. Run
/// after a deliberate wire or trace change:
/// `cargo test -p riot-serve --test poll_trace_golden -- --ignored`
#[test]
#[ignore = "rewrites the checked-in fixture"]
fn regenerate_fixture() {
    std::fs::write(fixture_path(), render(&replayed_trace())).expect("write fixture");
}
