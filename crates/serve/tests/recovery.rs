//! Crash-recovery integration test: a fault injected at the
//! `serve.journal.append` site kills the hosted session mid-batch, the
//! WAL is left with a deliberately torn tail, and the acknowledged
//! prefix must recover to a state the `riot-check` model recognizes as
//! equivalent — command by command.
//!
//! This is the serving-layer half of the durability contract: an `ok`
//! reply is released only after the WAL flush, so every acknowledged
//! command survives the crash and nothing unacknowledged leaks in.

use riot_core::{Journal, FAULT_SERVE_JOURNAL_APPEND};
use riot_serve::{standard_library, wal_path, Bind, Client, ServeConfig, Server};
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn journal_fault_leaves_a_model_equivalent_recoverable_prefix() {
    let root = temp_root("recovery");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 2;
    cfg.tick = Duration::from_millis(2);
    // Trip the journal-append site on its third consultation: the
    // first two commands land durably, the third crashes the session.
    cfg.faults.arm(FAULT_SERVE_JOURNAL_APPEND, 2);
    let faults = cfg.faults.clone();

    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    assert_eq!(c.open("crash", "TOP").unwrap(), "created");
    assert_eq!(c.cmd("crash", "create nand2 A").unwrap(), "instance 0");
    assert_eq!(c.cmd("crash", "create nand2 B").unwrap(), "instance 1");
    // The third command trips the armed fault: the server writes a
    // torn record, drops the session, and reports the crash.
    let err = c.cmd("crash", "translate A 4000 0").unwrap_err();
    assert!(
        err.contains("session crashed"),
        "expected a crash report, got: {err}"
    );
    assert_eq!(faults.injected(), 1, "exactly one fault fired");

    // --- Offline view: the WAL on disk ends in a torn record and
    // recovers to exactly the acknowledged prefix.
    let wal = wal_path(&root, "crash");
    let bytes = std::fs::read(&wal).expect("WAL survives the crash");
    let rec = Journal::recover_wal(&bytes);
    assert!(
        rec.corruption.is_some(),
        "the crash must leave a torn tail, got a clean WAL"
    );
    let cmds = rec.journal.commands().to_vec();
    let lines: Vec<String> = cmds.iter().map(riot_core::command_to_line).collect();
    assert_eq!(
        lines,
        ["edit TOP", "create nand2 A", "create nand2 B"],
        "recovered prefix is the acknowledged prefix, nothing more"
    );

    // --- Model equivalence: replay the recovered prefix in lockstep
    // with the riot-check reference model. Every intermediate state —
    // not just the last — must match on all user-observable axes.
    let mut lib = standard_library();
    let replayed = riot_check::lockstep_replay(&mut lib, &cmds)
        .unwrap_or_else(|e| panic!("recovered prefix diverges from the model: {e}"));
    assert_eq!(replayed, 3, "edit head + two commands replayed");

    // --- Online view: reopening the session recovers the same prefix
    // and the session is fully usable again.
    let detail = c.open("crash", "TOP").unwrap();
    assert!(
        detail.contains("recovered 3 records") && detail.contains("truncated"),
        "recovery report missing: {detail}"
    );
    // Instance ids are arena indices: the next create landing in slot 2
    // proves exactly instances 0 and 1 survived.
    assert_eq!(c.cmd("crash", "create nand2 C").unwrap(), "instance 2");
    assert_eq!(c.cmd("crash", "translate A 4000 0").unwrap(), "done");
    c.close_session("crash").unwrap();

    // The healed WAL must now be clean and still model-equivalent.
    let bytes = std::fs::read(&wal).unwrap();
    let rec = Journal::recover_wal(&bytes);
    assert!(
        rec.is_clean(),
        "rewritten WAL is intact: {:?}",
        rec.corruption
    );
    let mut lib = standard_library();
    let replayed = riot_check::lockstep_replay(&mut lib, rec.journal.commands())
        .unwrap_or_else(|e| panic!("healed WAL diverges from the model: {e}"));
    assert_eq!(replayed, 5, "edit head + four commands after the heal");

    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn repeated_crashes_never_corrupt_acknowledged_state() {
    // Three separate journal crashes over a longer session: each crash
    // is followed by a reopen; at the end the WAL must replay
    // model-equivalently whatever subset of commands got acknowledged
    // along the way. (Arms on one site queue up: the counters run
    // back-to-back, so the crashes land at consults 8, 17 and 26.)
    let root = temp_root("soak");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    for _ in 0..3 {
        cfg.faults.arm(FAULT_SERVE_JOURNAL_APPEND, 8);
    }

    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    c.open("soak", "TOP").unwrap();
    let mut last_created: Option<String> = None;
    for k in 0..60 {
        let name = format!("G{k}");
        let line = match (&last_created, k % 2) {
            (Some(prev), 1) => format!("translate {prev} 4000 0"),
            _ => format!("create nand2 {name}"),
        };
        match c.cmd("soak", &line) {
            Ok(_) => {
                if line.starts_with("create") {
                    last_created = Some(name);
                }
            }
            Err(e) if e.contains("session crashed") || e.contains("no such session") => {
                // Reopen; recovery replays the acknowledged prefix.
                c.open("soak", "TOP").unwrap();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    c.close_session("soak").unwrap();
    c.shutdown_server().unwrap();
    h.wait();

    let bytes = std::fs::read(wal_path(&root, "soak")).unwrap();
    let rec = Journal::recover_wal(&bytes);
    let mut lib = standard_library();
    let replayed = riot_check::lockstep_replay(&mut lib, rec.journal.commands())
        .unwrap_or_else(|e| panic!("soak WAL diverges from the model: {e}"));
    assert!(replayed >= 1, "at least the edit head replays");
    let _ = std::fs::remove_dir_all(root);
}
