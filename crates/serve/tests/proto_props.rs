//! Property tests for the `RIOTSRV1` frame and message codecs: every
//! payload round-trips, every torn tail and every bit flip decodes to
//! a clean [`FrameCorruption`] — never a panic, never silent garbage.

use proptest::prelude::*;
use riot_serve::{
    decode_frame_eof, encode_frame, scan_frame, valid_session_name, FrameCorruption, FrameScan,
    Reply, ReplyBody, Request, RequestBody,
};

/// Arbitrary binary payload (up to 200 bytes, full byte range).
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0usize..256, 0..200)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// A command-ish line: printable, no interior structure the codec
/// cares about (the codec treats it as opaque words).
fn arb_line() -> impl Strategy<Value = String> {
    "[a-z0-9 _-]{1,80}".prop_map(|s| {
        let joined = s.split_whitespace().collect::<Vec<_>>().join(" ");
        if joined.is_empty() {
            "x".to_owned()
        } else {
            joined
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_round_trips(payload in arb_payload()) {
        let frame = encode_frame(&payload);
        let (back, consumed) = decode_frame_eof(&frame).expect("intact frame decodes");
        prop_assert_eq!(back, payload);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn torn_tails_decode_to_clean_errors(payload in arb_payload(), cut in 0usize..200) {
        let frame = encode_frame(&payload);
        let cut = cut % frame.len().max(1);
        if cut == frame.len() {
            return Ok(());
        }
        let torn = &frame[..cut];
        match decode_frame_eof(torn) {
            Err(FrameCorruption::TornHeader) => prop_assert!(cut < 8),
            Err(FrameCorruption::TornPayload { expected, available }) => {
                prop_assert_eq!(expected, payload.len());
                prop_assert_eq!(available, cut - 8);
            }
            other => prop_assert!(false, "torn frame decoded to {other:?}"),
        }
        // The streaming scanner must agree that more bytes are needed
        // (it cannot know the stream ended).
        prop_assert_eq!(scan_frame(torn), FrameScan::Incomplete);
    }

    #[test]
    fn bit_flips_never_yield_the_original_decode(
        payload in arb_payload(),
        bit in 0usize..1600,
    ) {
        let frame = encode_frame(&payload);
        let bit = bit % (frame.len() * 8);
        let mut flipped = frame.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        // A flipped frame may decode (flips in the length field can
        // re-frame the bytes) but must never reproduce the original
        // payload as if nothing happened — CRC-32 catches every
        // single-bit error over the region it covers.
        if let Ok((back, _)) = decode_frame_eof(&flipped) {
            prop_assert_ne!(back, payload);
        }
    }

    #[test]
    fn frame_streams_scan_in_sequence(payloads in prop::collection::vec(arb_payload(), 1..6)) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame(p));
        }
        let mut off = 0usize;
        for expected in &payloads {
            match scan_frame(&wire[off..]) {
                FrameScan::Complete { payload, consumed } => {
                    prop_assert_eq!(&payload, expected);
                    off += consumed;
                }
                other => prop_assert!(false, "wanted a frame, got {other:?}"),
            }
        }
        prop_assert_eq!(off, wire.len());
    }

    #[test]
    fn requests_round_trip(
        id in 0u64..u64::MAX,
        session in "[A-Za-z0-9_-]{1,64}",
        line in arb_line(),
    ) {
        prop_assert!(valid_session_name(&session));
        for body in [
            RequestBody::Open { session: session.clone(), cell: "TOP".to_owned() },
            RequestBody::Cmd { session: session.clone(), line },
            RequestBody::Stats { session: Some(session.clone()) },
            RequestBody::Close { session },
            RequestBody::Ping,
            RequestBody::Stats { session: None },
            RequestBody::Shutdown,
        ] {
            let req = Request { id, body };
            let bytes = req.encode();
            prop_assert_eq!(Request::decode(&bytes).expect("round trip"), req);
        }
    }

    #[test]
    fn replies_round_trip(id in 0u64..u64::MAX, detail in arb_line()) {
        for body in [
            ReplyBody::Ok(detail.clone()),
            ReplyBody::Err(detail.clone()),
            ReplyBody::Busy,
        ] {
            let rep = Reply { id, body };
            let bytes = rep.encode();
            prop_assert_eq!(Reply::decode(&bytes).expect("round trip"), rep);
        }
    }

    #[test]
    fn request_decode_never_panics_on_garbage(bytes in arb_payload()) {
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = decode_frame_eof(&bytes);
        let _ = scan_frame(&bytes);
    }
}
