//! Golden-fixture test for the `RIOTSRV1` wire format.
//!
//! `examples/handshake.srv` is a checked-in byte capture of one
//! complete client session: the 8-byte magic followed by seven framed
//! requests (open → four commands → close → shutdown). The fixture
//! pins the wire format: if the codec drifts, these bytes stop
//! decoding — and that is a protocol break, not a refactor.

use riot_serve::{
    scan_frame, Bind, FrameScan, Reply, ReplyBody, Request, RequestBody, ServeConfig, Server,
    Stream, SRV_MAGIC,
};
use std::io::{Read, Write};

const FIXTURE: &[u8] = include_bytes!("../../../examples/handshake.srv");

fn expected_requests() -> Vec<Request> {
    let s = |t: &str| t.to_owned();
    vec![
        Request {
            id: 1,
            body: RequestBody::Open {
                session: s("alice"),
                cell: s("TOP"),
            },
        },
        Request {
            id: 2,
            body: RequestBody::Cmd {
                session: s("alice"),
                line: s("create nand2 I0"),
            },
        },
        Request {
            id: 3,
            body: RequestBody::Cmd {
                session: s("alice"),
                line: s("translate I0 4000 0"),
            },
        },
        Request {
            id: 4,
            body: RequestBody::Cmd {
                session: s("alice"),
                line: s("create nand2 I1"),
            },
        },
        Request {
            id: 5,
            body: RequestBody::Cmd {
                session: s("alice"),
                line: s("connect I0 OUT I1 A"),
            },
        },
        Request {
            id: 6,
            body: RequestBody::Close {
                session: s("alice"),
            },
        },
        Request {
            id: 7,
            body: RequestBody::Shutdown,
        },
    ]
}

/// The fixture decodes to exactly the expected request sequence.
#[test]
fn fixture_decodes_to_the_canonical_session() {
    assert_eq!(&FIXTURE[..8], SRV_MAGIC, "fixture starts with the magic");
    let mut rest = &FIXTURE[8..];
    let mut decoded = Vec::new();
    while !rest.is_empty() {
        match scan_frame(rest) {
            FrameScan::Complete { payload, consumed } => {
                decoded.push(Request::decode(&payload).expect("fixture frame decodes"));
                rest = &rest[consumed..];
            }
            other => panic!("fixture has a non-frame region: {other:?}"),
        }
    }
    assert_eq!(decoded, expected_requests());
}

/// Re-encoding the decoded requests reproduces the fixture **byte for
/// byte** — the codec is deterministic and stable.
#[test]
fn fixture_re_encodes_byte_identically() {
    let mut rebuilt = SRV_MAGIC.to_vec();
    for req in expected_requests() {
        rebuilt.extend_from_slice(&riot_serve::encode_frame(&req.encode()));
    }
    assert_eq!(
        rebuilt, FIXTURE,
        "wire encoding drifted from the golden bytes"
    );
}

/// The fixture is not just syntax: replayed against a live server it
/// runs to completion with every request acknowledged.
#[test]
fn fixture_replays_against_a_live_server() {
    let root = std::env::temp_dir().join(format!("riot-serve-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 2;
    cfg.tick = std::time::Duration::from_millis(2);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut s = Stream::connect(&h.addr()).unwrap();
    // The fixture opens with the client magic; the server echoes it.
    s.write_all(FIXTURE).unwrap();
    let mut echo = [0u8; 8];
    s.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, SRV_MAGIC);
    // Collect replies until the server half-closes after the drain.
    let mut bytes = Vec::new();
    let mut tmp = [0u8; 1024];
    loop {
        match s.read(&mut tmp) {
            Ok(0) | Err(_) => break,
            Ok(n) => bytes.extend_from_slice(&tmp[..n]),
        }
    }
    let mut replies = Vec::new();
    let mut rest = &bytes[..];
    while !rest.is_empty() {
        match scan_frame(rest) {
            FrameScan::Complete { payload, consumed } => {
                replies.push(Reply::decode(&payload).expect("reply decodes"));
                rest = &rest[consumed..];
            }
            other => panic!("server wrote a non-frame region: {other:?}"),
        }
    }
    h.wait();
    // Pipelined replies may interleave across streams (the inline
    // `shutdown` ack can overtake session replies), so match by id.
    let mut ids: Vec<u64> = replies.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        vec![1, 2, 3, 4, 5, 6, 7],
        "every request answered exactly once"
    );
    for reply in &replies {
        assert!(
            matches!(reply.body, ReplyBody::Ok(_)),
            "request {} failed: {:?}",
            reply.id,
            reply.body
        );
    }
    // Per-session FIFO: the session-bound replies (1..=6) appear in
    // submission order relative to each other.
    let session_ids: Vec<u64> = replies.iter().map(|r| r.id).filter(|id| *id <= 6).collect();
    assert_eq!(session_ids, vec![1, 2, 3, 4, 5, 6]);
    let _ = std::fs::remove_dir_all(root);
}
