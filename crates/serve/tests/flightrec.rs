//! Flight-recorder integration: a fault-injected crash mid-burst must
//! leave a dump file under the server root whose tail — the session's
//! last open plus every acknowledged command after it — replays
//! model-equivalently through the riot-check lockstep harness.
//!
//! That is the recorder's reason to exist: after a crash in
//! production, the dump alone reconstructs what the server actually
//! did, and the reference model vouches for it.

use riot_core::FAULT_SERVE_JOURNAL_APPEND;
use riot_serve::{standard_library, Bind, Client, FlightKind, FlightRecorder, ServeConfig, Server};
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("riot-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn find_dumps(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut dumps: Vec<_> = std::fs::read_dir(root)
        .expect("server root exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec-") && n.ends_with(".jsonl"))
        })
        .collect();
    dumps.sort();
    dumps
}

#[test]
fn crash_dump_tail_replays_model_equivalent() {
    let root = temp_root("flightrec");
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 1;
    cfg.tick = Duration::from_millis(1);
    // Trip the journal-append site mid-burst: five commands land, the
    // sixth crashes the session and auto-dumps the flight recorder.
    cfg.faults.arm(FAULT_SERVE_JOURNAL_APPEND, 5);
    let faults = cfg.faults.clone();

    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let mut c = Client::connect(&h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    assert_eq!(c.open("crashy", "TOP").unwrap(), "created");
    let mut acknowledged = 0usize;
    let mut crashed = false;
    for k in 0..8 {
        match c.cmd("crashy", &format!("create nand2 C{k}")) {
            Ok(_) => acknowledged += 1,
            Err(e) => {
                assert!(e.contains("session crashed"), "unexpected error: {e}");
                crashed = true;
                break;
            }
        }
    }
    assert!(crashed, "the armed fault must crash the burst");
    assert_eq!(faults.injected(), 1);
    assert_eq!(
        acknowledged, 5,
        "five commands acknowledged before the crash"
    );

    // The crash path dumps the recorder without being asked.
    let dumps = find_dumps(&root);
    assert!(!dumps.is_empty(), "crash left no flightrec-*.jsonl in root");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    let events = FlightRecorder::parse_dump(&text).expect("dump parses");

    // The ring saw the whole story: the open, the applied commands,
    // the fault, and the crash marker.
    assert!(events.iter().any(|e| e.kind == FlightKind::Open));
    assert!(events
        .iter()
        .any(|e| e.kind == FlightKind::Fault && e.detail.contains("serve.journal.append")));
    assert!(events.iter().any(|e| e.kind == FlightKind::Crash));

    // The replayable tail — last open's head plus acknowledged
    // commands — is model-equivalent under the lockstep harness.
    let lines = FlightRecorder::replay_lines(&events, "crashy");
    assert_eq!(lines[0], "edit TOP", "head line: {lines:?}");
    assert_eq!(lines.len(), 1 + acknowledged, "tail: {lines:?}");
    let mut lib = standard_library();
    let replayed = riot_check::lockstep_replay_lines(&mut lib, &lines)
        .unwrap_or_else(|e| panic!("dump tail diverges from the model: {e}"));
    assert_eq!(replayed, 1 + acknowledged);

    // Recovery after the crash keeps recording into the same ring: a
    // reopen plus more commands extend the story, and a wire `dump`
    // written after the heal replays the longer tail.
    assert!(c.open("crashy", "TOP").unwrap().contains("recovered"));
    c.cmd("crashy", "create nand2 AFTER").unwrap();
    let healed = c.dump().unwrap();
    let events = FlightRecorder::parse_dump(&std::fs::read_to_string(healed).unwrap()).unwrap();
    let lines = FlightRecorder::replay_lines(&events, "crashy");
    assert!(
        lines.iter().any(|l| l == "create nand2 AFTER"),
        "healed tail misses post-crash work: {lines:?}"
    );
    let mut lib = standard_library();
    riot_check::lockstep_replay_lines(&mut lib, &lines)
        .unwrap_or_else(|e| panic!("healed tail diverges: {e}"));

    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}
