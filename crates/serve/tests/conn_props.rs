//! Property tests for the poll io-model's per-connection state
//! machine: arbitrary interleavings of partial-frame ingestion, reply
//! delivery lag and write-quantum stalls never panic, never surface a
//! torn frame, keep every frame in order, and always terminate in a
//! clean close once a drain begins.

use proptest::prelude::*;
use riot_serve::{
    encode_frame, ConnEvent, Connection, ProtoVersion, Reply, ReplyBody, Request, RequestBody,
    RequestRef, SRV_MAGIC_V2,
};
use std::collections::VecDeque;

/// The wire a well-behaved v2 client would send: magic, then `n`
/// framed ping requests with ids `0..n`.
fn ping_wire(n: usize) -> Vec<u8> {
    let mut wire = SRV_MAGIC_V2.to_vec();
    for id in 0..n as u64 {
        let req = Request {
            id,
            body: RequestBody::Ping,
        };
        wire.extend_from_slice(&encode_frame(&req.encode_v2(None)));
    }
    wire
}

/// Pumps every pending event, decoding each frame in place and
/// recording its id. Panics (via the returned error) on anything a
/// clean stream must never produce.
fn pump(
    c: &mut Connection,
    seen: &mut Vec<u64>,
    pending: &mut VecDeque<u64>,
) -> Result<(), String> {
    while let Some(ev) = c.next_event() {
        match ev {
            ConnEvent::Handshake(v) => {
                if v != ProtoVersion::V2 {
                    return Err(format!("wrong negotiated version {v:?}"));
                }
            }
            ConnEvent::Frame { off, len } => {
                let id = {
                    let payload = c.frame_payload(off, len);
                    let (req, _) = RequestRef::decode_versioned(payload, ProtoVersion::V2)
                        .map_err(|e| format!("torn frame surfaced: {e}"))?;
                    req.id
                };
                seen.push(id);
                c.note_dispatched();
                pending.push_back(id);
            }
            ConnEvent::BadMagic => return Err("clean magic rejected".into()),
            ConnEvent::Corrupt(why) => return Err(format!("clean stream flagged corrupt: {why}")),
        }
    }
    Ok(())
}

/// Flushes the whole write backlog in one go.
fn flush_all(c: &mut Connection) {
    loop {
        let n = c.writable_bytes().len();
        if n == 0 {
            break;
        }
        c.advance_write(n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any split of the byte stream, any reply lag, any write quantum:
    /// every frame decodes exactly once, in order, and a final drain
    /// reaches `Closed` with an empty backlog.
    #[test]
    fn interleavings_never_tear_or_reorder_frames(
        n_reqs in 1usize..12,
        chunk_sizes in prop::collection::vec(1usize..40, 1..64),
        write_quanta in prop::collection::vec(1usize..64, 1..64),
        reply_lag in 0usize..4,
    ) {
        let wire = ping_wire(n_reqs);
        let mut c = Connection::new(1 << 16);
        let mut seen: Vec<u64> = Vec::new();
        let mut pending: VecDeque<u64> = VecDeque::new();
        let (mut off, mut ci, mut wi) = (0usize, 0usize, 0usize);
        while off < wire.len() || !pending.is_empty() {
            if off < wire.len() {
                let end = (off + chunk_sizes[ci % chunk_sizes.len()]).min(wire.len());
                ci += 1;
                c.ingest(&wire[off..end]);
                off = end;
            }
            pump(&mut c, &mut seen, &mut pending).map_err(TestCaseError::fail)?;
            // Replies arrive with a bounded lag while bytes keep
            // flowing; once the wire is spent everything outstanding
            // must come home.
            let lag = if off < wire.len() { reply_lag } else { 0 };
            while pending.len() > lag {
                let id = pending.pop_front().unwrap();
                let out = c.deliver_reply(&Reply {
                    id,
                    body: ReplyBody::Ok("pong".into()),
                });
                prop_assert_eq!(out, riot_serve::QueueOutcome::Queued);
            }
            let quantum = write_quanta[wi % write_quanta.len()];
            wi += 1;
            let n = c.writable_bytes().len().min(quantum);
            if n > 0 {
                c.advance_write(n);
            }
            prop_assert!(!c.is_closed(), "clean traffic closed the connection");
        }
        let want: Vec<u64> = (0..n_reqs as u64).collect();
        prop_assert_eq!(&seen, &want, "frames lost, duplicated or reordered");
        prop_assert_eq!(c.in_flight(), 0);

        c.begin_drain();
        flush_all(&mut c);
        prop_assert!(c.is_closed(), "drain did not terminate in a close");
        prop_assert_eq!(c.backlog_bytes(), 0);
    }

    /// Shutdown at an arbitrary point mid-stream: the drain must
    /// always terminate in `Closed` once outstanding replies are
    /// delivered and the backlog flushes — never a wedge, and never
    /// new frames dispatched after the drain began.
    #[test]
    fn shutdown_always_terminates_in_a_clean_close(
        n_reqs in 1usize..12,
        chunk_sizes in prop::collection::vec(1usize..40, 1..64),
        drain_after in 0usize..20,
    ) {
        let wire = ping_wire(n_reqs);
        let mut c = Connection::new(1 << 16);
        let mut seen: Vec<u64> = Vec::new();
        let mut pending: VecDeque<u64> = VecDeque::new();
        let (mut off, mut ci, mut step) = (0usize, 0usize, 0usize);
        let mut drained = false;
        while off < wire.len() && !drained {
            let end = (off + chunk_sizes[ci % chunk_sizes.len()]).min(wire.len());
            ci += 1;
            c.ingest(&wire[off..end]);
            off = end;
            pump(&mut c, &mut seen, &mut pending).map_err(TestCaseError::fail)?;
            if step == drain_after {
                c.begin_drain();
                drained = true;
            }
            step += 1;
        }
        if !drained {
            c.begin_drain();
        }
        let dispatched = seen.len();

        // Bytes that race in after the stop must be ignored, not
        // dispatched.
        c.ingest(&ping_wire(2)[8..]);
        prop_assert!(c.next_event().is_none(), "frame dispatched after drain");
        prop_assert_eq!(seen.len(), dispatched);

        // In-flight replies still come home, then the flush closes it.
        while let Some(id) = pending.pop_front() {
            let _ = c.deliver_reply(&Reply { id, body: ReplyBody::Ok("pong".into()) });
        }
        flush_all(&mut c);
        prop_assert!(c.is_closed(), "drain wedged: state never reached Closed");
        prop_assert_eq!(c.backlog_bytes(), 0);
        prop_assert_eq!(c.in_flight(), 0);
    }

    /// A single bit flip anywhere past the handshake never panics the
    /// machine, and any frames it does surface decode cleanly or fail
    /// cleanly. If the stream is flagged corrupt, the error-reply +
    /// flush path must still end in a clean close.
    #[test]
    fn bit_flips_fail_clean_and_still_close(
        n_reqs in 1usize..8,
        bit in 0usize..4096,
        chunk in 1usize..64,
    ) {
        let mut wire = ping_wire(n_reqs);
        let payload_bits = (wire.len() - 8) * 8;
        let bit = 64 + bit % payload_bits; // never inside the magic
        wire[bit / 8] ^= 1 << (bit % 8);

        let mut c = Connection::new(1 << 16);
        let mut corrupt = false;
        let mut off = 0usize;
        while off < wire.len() {
            let end = (off + chunk).min(wire.len());
            c.ingest(&wire[off..end]);
            off = end;
            while let Some(ev) = c.next_event() {
                match ev {
                    ConnEvent::Handshake(_) => {}
                    ConnEvent::Frame { off, len } => {
                        // May or may not decode — it must not panic,
                        // and in-place access must stay in bounds.
                        let payload = c.frame_payload(off, len);
                        let _ = RequestRef::decode_versioned(payload, ProtoVersion::V2);
                        c.note_dispatched();
                        let _ = c.deliver_reply(&Reply {
                            id: 0,
                            body: ReplyBody::Ok("pong".into()),
                        });
                    }
                    ConnEvent::BadMagic => prop_assert!(false, "flip was past the magic"),
                    ConnEvent::Corrupt(_) => {
                        corrupt = true;
                        // The owner's last word: one error reply.
                        let _ = c.queue_reply(&Reply {
                            id: u64::MAX,
                            body: ReplyBody::Err("corrupt frame".into()),
                        });
                    }
                }
            }
            let n = c.writable_bytes().len();
            if n > 0 {
                c.advance_write(n);
            }
        }
        if corrupt {
            flush_all(&mut c);
            prop_assert!(c.is_closed(), "corrupt stream must end closed");
        } else {
            // The flip hid in a length field and left a plausible
            // prefix; the machine is simply waiting for more bytes.
            c.begin_drain();
            flush_all(&mut c);
            prop_assert!(c.is_closed());
        }
    }
}
