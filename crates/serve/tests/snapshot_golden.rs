//! Golden-fixture tests for the `RIOTSNAP1` snapshot format.
//!
//! Four checked-in fixtures under `examples/` pin the on-disk formats
//! and the recovery matrix:
//!
//! * `session.snap` + `session_tail.wal` — an intact snapshot covering
//!   9 journal records plus a compacted WAL carrying 2 more: recovery
//!   must decode the snapshot and replay only the tail.
//! * `session_full.wal` — the same 9 records as an uncompacted,
//!   full-history WAL: pairing it with the torn / bad-CRC snapshot
//!   variants proves recovery falls back to full replay instead of
//!   trusting a damaged snapshot.
//! * `session_torn.snap` / `session_badcrc.snap` — the intact snapshot
//!   truncated mid-payload, and with its last payload byte flipped.
//!
//! If the snapshot codec drifts, `session.snap` stops decoding — and
//! that is a format break, not a refactor. Regenerate deliberately
//! with `cargo test -p riot-serve --test snapshot_golden -- --ignored`
//! after such a break.

use riot_core::parse_command_line;
use riot_serve::{
    parse_snapshot, standard_library, wal_path, ServeFaults, SessionEntry, SnapshotError,
};
use std::path::{Path, PathBuf};

const SNAP: &[u8] = include_bytes!("../../../examples/session.snap");
const TAIL_WAL: &[u8] = include_bytes!("../../../examples/session_tail.wal");
const FULL_WAL: &[u8] = include_bytes!("../../../examples/session_full.wal");
const TORN_SNAP: &[u8] = include_bytes!("../../../examples/session_torn.snap");
const BADCRC_SNAP: &[u8] = include_bytes!("../../../examples/session_badcrc.snap");

/// The scripted session the fixtures capture: 8 commands under the
/// snapshot, 2 more in the compacted tail.
fn script_full() -> Vec<&'static str> {
    vec![
        "create nand2 A",
        "create nand2 B",
        "translate A 4000 0",
        "create or2 C",
        "connect A OUT B A",
        "undo",
        "create nand2 D",
        "translate D 8000 0",
    ]
}

fn script_tail() -> Vec<&'static str> {
    vec!["create or2 E", "undo"]
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("riot-snapgold-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    root
}

/// Stages a fixture pair as session `rec` in a temp root.
fn stage(root: &Path, wal: &[u8], snap: Option<&[u8]>) {
    std::fs::write(wal_path(root, "rec"), wal).unwrap();
    if let Some(bytes) = snap {
        std::fs::write(root.join("rec.snap"), bytes).unwrap();
    }
}

/// Proves a recovered entry is model-equivalent to replaying `lines`
/// from scratch through the riot-check reference model.
fn assert_model_equivalent(mut entry: SessionEntry, lines: &[&str]) {
    let mut cmds = vec![riot_core::Command::Edit {
        cell: "TOP".to_owned(),
    }];
    for (i, line) in lines.iter().enumerate() {
        cmds.push(parse_command_line(line, i + 1).unwrap());
    }
    let mut mlib = standard_library();
    let (model, replayed) = riot_check::lockstep_model(&mut mlib, &cmds)
        .unwrap_or_else(|e| panic!("reference replay diverges: {e}"));
    assert_eq!(replayed, cmds.len());
    let cp = entry.cp.take().expect("recovered session is suspended");
    let ed = riot_core::Editor::resume(&mut entry.lib, cp).expect("recovered session resumes");
    riot_check::check_equiv(&ed, &model)
        .unwrap_or_else(|e| panic!("recovered state diverges from full replay: {e}"));
}

#[test]
fn golden_snapshot_plus_tail_recovers_the_full_session() {
    let (covered, _payload) = parse_snapshot(SNAP).expect("checked-in snapshot parses");
    assert_eq!(covered, 9, "snapshot covers edit head + 8 commands");

    let root = temp_root("intact");
    stage(&root, TAIL_WAL, Some(SNAP));
    let (entry, kind) = SessionEntry::recover(&root, "rec", standard_library()).unwrap();
    assert!(
        matches!(
            kind,
            riot_serve::OpenKind::Recovered {
                records: 11,
                truncated: false
            }
        ),
        "snapshot (9) + tail (2) recovered, got {kind:?}"
    );
    let all: Vec<&str> = script_full().into_iter().chain(script_tail()).collect();
    assert_model_equivalent(entry, &all);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn torn_snapshot_fixture_falls_back_to_full_replay() {
    assert_eq!(
        parse_snapshot(TORN_SNAP),
        Err(SnapshotError::Torn),
        "fixture is torn exactly as framed"
    );
    let reg = riot_trace::registry();
    let fallbacks = reg.counter("serve.recovery.full_replay");
    let before = fallbacks.get();

    let root = temp_root("torn");
    stage(&root, FULL_WAL, Some(TORN_SNAP));
    let (entry, kind) = SessionEntry::recover(&root, "rec", standard_library()).unwrap();
    assert!(
        matches!(kind, riot_serve::OpenKind::Recovered { records: 9, .. }),
        "full WAL replays all 9 records, got {kind:?}"
    );
    assert_eq!(fallbacks.get() - before, 1, "recovery took the fallback");
    assert_model_equivalent(entry, &script_full());
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn bad_crc_snapshot_fixture_falls_back_to_full_replay() {
    assert_eq!(
        parse_snapshot(BADCRC_SNAP),
        Err(SnapshotError::BadCrc),
        "fixture fails its CRC exactly as framed"
    );
    let reg = riot_trace::registry();
    let corrupt = reg.counter("serve.recovery.snapshot_corrupt");
    let fallbacks = reg.counter("serve.recovery.full_replay");
    let (c0, f0) = (corrupt.get(), fallbacks.get());

    let root = temp_root("badcrc");
    stage(&root, FULL_WAL, Some(BADCRC_SNAP));
    let (entry, kind) = SessionEntry::recover(&root, "rec", standard_library()).unwrap();
    assert!(
        matches!(kind, riot_serve::OpenKind::Recovered { records: 9, .. }),
        "full WAL replays all 9 records, got {kind:?}"
    );
    assert_eq!(corrupt.get() - c0, 1, "the bad CRC was counted");
    assert_eq!(fallbacks.get() - f0, 1, "recovery took the fallback");
    assert_model_equivalent(entry, &script_full());
    let _ = std::fs::remove_dir_all(root);
}

/// Regenerates every fixture from the script above. Ignored by
/// default: the fixtures pin the format, so regenerate only after a
/// deliberate format change, and commit the new bytes.
#[test]
#[ignore = "rewrites the checked-in fixtures"]
fn regenerate_snapshot_fixtures() {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let faults = ServeFaults::none();
    let root = temp_root("regen");

    let mut entry = SessionEntry::create(&root, "rec", "TOP", standard_library()).unwrap();
    let apply = |entry: &mut SessionEntry, lines: &[&str]| {
        let cp = entry.cp.take().unwrap();
        let mut ed = riot_core::Editor::resume(&mut entry.lib, cp).unwrap();
        for line in lines {
            riot_serve::session::execute_line(&mut ed, line).unwrap();
        }
        entry.cp = Some(ed.suspend());
        entry.sync_all().unwrap();
    };
    apply(&mut entry, &script_full());
    std::fs::copy(wal_path(&root, "rec"), examples.join("session_full.wal")).unwrap();

    assert!(entry.snapshot_now(&root, &faults), "snapshot cut");
    apply(&mut entry, &script_tail());
    drop(entry);
    std::fs::copy(wal_path(&root, "rec"), examples.join("session_tail.wal")).unwrap();
    let snap = std::fs::read(root.join("rec.snap")).unwrap();
    std::fs::write(examples.join("session.snap"), &snap).unwrap();

    // Torn: header plus half the payload. Bad CRC: last byte flipped.
    let header = 9 + 8 + 4 + 4;
    let torn = &snap[..header + (snap.len() - header) / 2];
    std::fs::write(examples.join("session_torn.snap"), torn).unwrap();
    let mut flipped = snap.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(examples.join("session_badcrc.snap"), flipped).unwrap();
    let _ = std::fs::remove_dir_all(root);
}
