//! Exporter contract tests: a golden Prometheus rendering pinned
//! byte-for-byte (scrapers parse this text — format drift is an
//! incident, not a refactor), plus property tests that the JSON
//! snapshot round-trips exactly through [`Snapshot::parse`].

use proptest::prelude::*;
use riot_trace::metrics::Registry;
use riot_trace::Snapshot;

/// The fixed registry behind the golden text: one counter, one gauge,
/// one histogram spanning three log2 buckets, and one name that needs
/// sanitizing.
fn golden_registry() -> Registry {
    let reg = Registry::default();
    reg.counter("serve.cmds").add(42);
    reg.counter("weird\"name").inc();
    reg.gauge("serve.slo.error_permille").set(7);
    let h = reg.histogram("serve.wal.fsync_ns");
    for v in [1u64, 2, 3, 100] {
        h.record(v);
    }
    reg
}

#[test]
fn prometheus_text_matches_golden() {
    let text = Snapshot::of(&golden_registry()).to_prometheus();
    let golden = "\
# TYPE riot_serve_cmds_total counter
riot_serve_cmds_total 42
# TYPE riot_weird_name_total counter
riot_weird_name_total 1
# TYPE riot_serve_slo_error_permille gauge
riot_serve_slo_error_permille 7
# TYPE riot_serve_wal_fsync_ns histogram
riot_serve_wal_fsync_ns_bucket{le=\"1\"} 1
riot_serve_wal_fsync_ns_bucket{le=\"3\"} 3
riot_serve_wal_fsync_ns_bucket{le=\"127\"} 4
riot_serve_wal_fsync_ns_bucket{le=\"+Inf\"} 4
riot_serve_wal_fsync_ns_sum 106
riot_serve_wal_fsync_ns_count 4
";
    assert_eq!(text, golden, "rendered:\n{text}");
}

#[test]
fn golden_json_round_trips_and_escapes() {
    let snap = Snapshot::of(&golden_registry());
    let json = snap.to_json();
    // The quote in `weird"name` must be escaped, never raw.
    assert!(json.contains("weird\\\"name"), "{json}");
    assert!(json.contains("\"schema\":\"riot-telemetry/1\""), "{json}");
    let back = Snapshot::parse(&json).expect("golden json parses");
    assert_eq!(back, snap);
}

/// Metric-name strategy: the characters real call sites use, plus a
/// quote and a backslash so the JSON escaper is exercised.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._\"\\\\]{0,16}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_snapshot_round_trips(
        counters in prop::collection::vec((arb_name(), 0u64..u64::MAX / 2), 0..6),
        gauges in prop::collection::vec((arb_name(), -1_000_000i64..1_000_000), 0..6),
        histograms in prop::collection::vec(
            (arb_name(), prop::collection::vec(0u64..1_000_000_000, 1..40)),
            0..4,
        ),
    ) {
        let reg = Registry::default();
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(*v);
        }
        for (name, vals) in &histograms {
            let h = reg.histogram(name);
            for v in vals {
                h.record(*v);
            }
        }
        let snap = Snapshot::of(&reg);
        let back = Snapshot::parse(&snap.to_json()).expect("round trip parses");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_text_is_well_formed(
        counters in prop::collection::vec((arb_name(), 0u64..1_000_000), 1..5),
        samples in prop::collection::vec(0u64..1_000_000, 1..20),
    ) {
        let reg = Registry::default();
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        let h = reg.histogram("lat.ns");
        for v in &samples {
            h.record(*v);
        }
        let text = Snapshot::of(&reg).to_prometheus();
        let mut last_bucket: Option<u64> = None;
        for line in text.lines() {
            if line.starts_with("# TYPE ") {
                continue;
            }
            // Every sample line is `name{labels} value` or `name value`
            // with a metric name in the Prometheus alphabet.
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            let bare = name.split('{').next().unwrap();
            prop_assert!(
                bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {bare:?}"
            );
            prop_assert!(value.parse::<i64>().is_ok(), "bad value in {line:?}");
            // Cumulative bucket counts never decrease.
            if let Some(rest) = name.strip_prefix("riot_lat_ns_bucket{le=\"") {
                let v: u64 = value.parse().unwrap();
                if !rest.starts_with('+') {
                    if let Some(prev) = last_bucket {
                        prop_assert!(v >= prev, "bucket counts regressed in {line:?}");
                    }
                    last_bucket = Some(v);
                }
            }
        }
        prop_assert!(text.contains("riot_lat_ns_count"), "{text}");
    }
}
