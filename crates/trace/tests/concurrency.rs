//! Thread-safety: 8 threads hammer the registry and the span recorder
//! concurrently; totals must balance exactly and nothing may deadlock.

use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn eight_threads_hammer_the_registry() {
    let reg = riot_trace::registry();
    let counter = reg.counter("conc.counter");
    let gauge = reg.gauge("conc.gauge");
    let hist = reg.histogram("conc.hist");

    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    counter.inc();
                    gauge.add(1);
                    gauge.add(-1);
                    hist.record(t as u64 * 1000 + (i % 97));
                    // Exercise the name-lookup path too (read-lock +
                    // hash), not just cached handles.
                    if i % 64 == 0 {
                        riot_trace::registry().counter("conc.lookup").inc();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics under contention");
    }

    assert_eq!(counter.get(), (THREADS as u64) * ITERS);
    assert_eq!(gauge.get(), 0);
    assert_eq!(hist.count(), (THREADS as u64) * ITERS);
    assert_eq!(
        reg.counter("conc.lookup").get(),
        (THREADS as u64) * ITERS.div_ceil(64)
    );
    // Percentile walk over concurrent-written buckets stays sane.
    let p99 = hist.p99().expect("nonempty");
    assert!(p99 <= hist.max().unwrap());
}

#[test]
fn eight_threads_emit_spans() {
    riot_trace::enable(true);
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..500u64 {
                    let mut outer = riot_trace::span!("conc.outer", i = i);
                    let _inner = riot_trace::span!("conc.inner");
                    outer.field("done", 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics under contention");
    }
    riot_trace::enable(false);

    let spans = riot_trace::recorder().snapshot();
    let inner: Vec<_> = spans.iter().filter(|s| s.name == "conc.inner").collect();
    assert!(inner.len() >= THREADS * 500, "all inner spans recorded");
    // Every inner span's parent is an outer span from the same thread.
    let by_id: std::collections::HashMap<u64, &riot_trace::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    for s in &inner {
        let parent = by_id.get(&s.parent).expect("parent in ring");
        assert_eq!(parent.name, "conc.outer");
        assert_eq!(parent.thread, s.thread);
    }
    assert!(riot_trace::registry().histogram("conc.inner").count() >= (THREADS as u64) * 500);
}
