//! `riot-trace`: the observability substrate of the RIOT reproduction.
//!
//! The ROADMAP's north star is a system "as fast as the hardware
//! allows" — a claim that needs *measurement*, not vibes. This crate
//! provides the three pieces every later perf PR builds on:
//!
//! * **Spans** ([`span`], [`span!`]) — guard-style timed regions with
//!   optional `u64` key/value fields, nested via a per-thread stack.
//!   Finished spans land in a global ring-buffer [`Recorder`] and feed
//!   a per-span-name latency [`Histogram`] automatically.
//! * **Metrics registry** ([`registry`]) — named monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-log2-bucket latency
//!   [`Histogram`]s with p50/p95/p99 estimation. All handles are
//!   lock-free on the hot path (atomics); the registry lock is only
//!   taken on first registration of a name.
//! * **Exporters** ([`summary`], [`jsonl`], [`chrome_trace`]) — a
//!   human-readable session summary, machine-readable JSON lines, and
//!   Chrome `trace_event` JSON loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//! * **Trace context** ([`TraceContext`], [`span_with_context`],
//!   [`adopt`], [`complete_span`]) — explicit trace ids that follow a
//!   logical operation across threads and, via the riot-serve wire
//!   protocol, across processes; every span records the trace it
//!   belongs to.
//! * **Live exposition** ([`Snapshot`], [`prometheus`],
//!   [`json_snapshot`]) — point-in-time registry snapshots rendered as
//!   Prometheus text format or JSON, scrapeable while a server runs.
//!
//! # Cost model
//!
//! Tracing is **disabled by default**. A disabled [`span!`] is one
//! relaxed atomic load and a branch — no clock read, no allocation —
//! so instrumented hot paths stay within noise of uninstrumented ones.
//! Enable with [`enable`], or by setting the `RIOT_TRACE` environment
//! variable (see [`init_from_env`]).
//!
//! # `RIOT_TRACE` environment hook
//!
//! `RIOT_TRACE=summary` prints the session summary to stderr when the
//! instrumented application calls [`dump_from_env`] (the riot editor
//! does so on drop); `RIOT_TRACE=jsonl:/path` and
//! `RIOT_TRACE=chrome:/path.json` write the corresponding export to a
//! file.
//!
//! # Example
//!
//! ```
//! riot_trace::enable(true);
//! {
//!     let mut s = riot_trace::span!("route.river", nets = 8u64);
//!     // ... do the work ...
//!     s.field("tracks", 3);
//! }
//! let spans = riot_trace::recorder().snapshot();
//! assert!(spans.iter().any(|r| r.name == "route.river"));
//! let h = riot_trace::registry().histogram("route.river");
//! assert!(h.count() >= 1);
//! riot_trace::enable(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod export;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use context::{adopt, current, fresh_trace_id, ContextGuard, TraceContext};
pub use export::{chrome_trace, jsonl, summary};
pub use expose::{json_snapshot, prometheus, sanitize_metric_name, Snapshot};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use recorder::{recorder, Recorder, SpanRecord};
pub use span::{complete_span, span, span_with_context, Span};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span recording on or off globally.
///
/// Counters and gauges obtained directly from the [`registry`] always
/// work; this switch gates the span machinery (clock reads, ring-buffer
/// pushes, auto-histograms) so uninstrumented runs pay only an atomic
/// load per [`span!`] site.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The parsed form of the `RIOT_TRACE` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSink {
    /// `RIOT_TRACE=summary`: human-readable summary to stderr.
    Summary,
    /// `RIOT_TRACE=jsonl:/path`: JSON-lines export to a file.
    Jsonl(String),
    /// `RIOT_TRACE=chrome:/path.json`: Chrome trace export to a file.
    Chrome(String),
}

/// Parses a `RIOT_TRACE` value. Unknown forms yield `None`.
pub fn parse_sink(value: &str) -> Option<TraceSink> {
    let v = value.trim();
    if v.is_empty() {
        return None;
    }
    if v == "summary" || v == "1" {
        return Some(TraceSink::Summary);
    }
    if let Some(path) = v.strip_prefix("jsonl:") {
        return Some(TraceSink::Jsonl(path.to_owned()));
    }
    if let Some(path) = v.strip_prefix("chrome:") {
        return Some(TraceSink::Chrome(path.to_owned()));
    }
    None
}

fn env_sink() -> Option<&'static TraceSink> {
    static SINK: OnceLock<Option<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| {
        std::env::var("RIOT_TRACE")
            .ok()
            .and_then(|v| parse_sink(&v))
    })
    .as_ref()
}

/// Enables tracing when the `RIOT_TRACE` environment variable names a
/// valid sink. Cheap after the first call; instrumented applications
/// call this at session start (the riot editor does in `Editor::open`).
pub fn init_from_env() {
    if env_sink().is_some() {
        enable(true);
    }
}

/// Dumps the collected trace to the sink named by `RIOT_TRACE`, if any.
/// Returns the sink used. The riot editor calls this on drop, so
/// `RIOT_TRACE=chrome:/tmp/t.json cargo run --example quickstart` "just
/// works". File-write failures are reported on stderr, never panic.
pub fn dump_from_env() -> Option<TraceSink> {
    let sink = env_sink()?;
    match sink {
        TraceSink::Summary => eprintln!("{}", summary()),
        TraceSink::Jsonl(path) => {
            if let Err(e) = std::fs::write(path, jsonl()) {
                eprintln!("riot-trace: cannot write {path}: {e}");
            }
        }
        TraceSink::Chrome(path) => {
            if let Err(e) = std::fs::write(path, chrome_trace()) {
                eprintln!("riot-trace: cannot write {path}: {e}");
            }
        }
    }
    Some(sink.clone())
}

/// Clears the recorder and every registry metric. Intended for the
/// replay profiler and tests; concurrent recordings may interleave.
pub fn reset() {
    recorder().clear();
    registry().reset();
}

/// Opens a guard-style span with optional `u64` fields:
///
/// ```
/// riot_trace::enable(true);
/// let _s = riot_trace::span!("cif.parse", bytes = 1024u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut __riot_span = $crate::span($name);
        $(__riot_span.field(stringify!($key), $value as u64);)+
        __riot_span
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_parsing() {
        assert_eq!(parse_sink("summary"), Some(TraceSink::Summary));
        assert_eq!(
            parse_sink("jsonl:/tmp/x.jsonl"),
            Some(TraceSink::Jsonl("/tmp/x.jsonl".into()))
        );
        assert_eq!(
            parse_sink("chrome:/tmp/x.json"),
            Some(TraceSink::Chrome("/tmp/x.json".into()))
        );
        assert_eq!(parse_sink(""), None);
        assert_eq!(parse_sink("bogus"), None);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        enable(false);
        let before = recorder().snapshot().len();
        {
            let _s = span!("test.disabled", n = 1u64);
        }
        assert_eq!(recorder().snapshot().len(), before);
    }
}
