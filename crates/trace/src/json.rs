//! A minimal hand-rolled JSON reader for the telemetry plane.
//!
//! The crate emits all its JSON by hand; this is the matching reader,
//! just big enough to parse what we emit — exposition snapshots,
//! flight-recorder dumps, bench reports — back into a [`Value`] tree
//! for round-trip tests and for riot-check's dump replayer. It is a
//! strict recursive-descent parser over the full JSON grammar with two
//! deliberate simplifications: numbers are kept as `i128` (covering
//! the full `u64` and `i64` ranges we emit; fractions and exponents
//! are rejected) and `\uXXXX` escapes outside the BMP surrogate
//! mechanism are decoded individually.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (we never emit fractions).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalized (sorted) by the map.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{}\"", crate::export::escape_json(s)),
            Value::Array(v) => {
                f.write_str("[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", crate::export::escape_json(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(format!("bad utf-8 at byte {start}")),
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated utf-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            Value::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            Value::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap(), &Value::Object(BTreeMap::new()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("1.5").is_err());
        assert!(Value::parse("1e3").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"k":[1,-2,"s\n",true,null],"z":{"q":0}}"#;
        let v = Value::parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(Value::parse(&printed).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::parse("\"héllo ⊕\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ⊕"));
    }
}
