//! Live metrics exposition: point-in-time registry snapshots rendered
//! as Prometheus text format or JSON.
//!
//! A [`Snapshot`] freezes every counter, gauge, and histogram in a
//! [`Registry`] into plain data, then renders either way:
//!
//! * [`Snapshot::to_prometheus`] — the Prometheus text exposition
//!   format, version 0.0.4: counters as `<name>_total`, gauges plain,
//!   histograms as cumulative `_bucket{le="…"}` series over the
//!   registry's log2 buckets plus `_sum`/`_count`. Metric names are
//!   sanitized (`.` and any other invalid character become `_`) and
//!   prefixed `riot_` so the whole plane lives under one namespace.
//! * [`Snapshot::to_json`] — a single JSON object mirroring the
//!   snapshot exactly (including percentile estimates), parseable back
//!   via [`Snapshot::parse`]; the round trip is property-tested.
//!
//! The riot-serve `telemetry` wire verb and `--telemetry-addr` HTTP
//! listener both serve these renderings of the global [`registry`].

use crate::json::Value;
use crate::metrics::{registry, Registry};
use std::fmt::Write as _;

/// Frozen statistics of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Conservative p50 estimate (0 when empty).
    pub p50: u64,
    /// Conservative p95 estimate (0 when empty).
    pub p95: u64,
    /// Conservative p99 estimate (0 when empty).
    pub p99: u64,
    /// Non-empty `(bucket_low, bucket_high, count)` triples,
    /// ascending by bound.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// A point-in-time copy of a [`Registry`]. All lists are sorted by
/// name, so equal registries produce identical snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, stats)` per non-empty histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Rewrites a metric name into the Prometheus alphabet
/// (`[a-zA-Z0-9_:]`) and prefixes `riot_` unless already present:
/// `serve.wal.fsync_ns` → `riot_serve_wal_fsync_ns`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    if !name.starts_with("riot_") && !name.starts_with("riot.") {
        out.push_str("riot_");
    }
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        // Prometheus names cannot start with a digit, but the riot_
        // prefix already guarantees a letter first unless the name was
        // pre-prefixed.
        if ok && !(i == 0 && out.is_empty() && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// Freezes `reg` (histograms with zero observations are omitted;
    /// their Prometheus series would be all-zero noise).
    pub fn of(reg: &Registry) -> Snapshot {
        Snapshot {
            counters: reg.counters(),
            gauges: reg.gauges(),
            histograms: reg
                .histograms()
                .into_iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(name, h)| {
                    (
                        name,
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min().unwrap_or(0),
                            max: h.max().unwrap_or(0),
                            p50: h.p50().unwrap_or(0),
                            p95: h.p95().unwrap_or(0),
                            p99: h.p99().unwrap_or(0),
                            buckets: h.nonzero_buckets(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Renders the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n}_total counter");
            let _ = writeln!(out, "{n}_total {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(_, high, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{high}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// Renders the snapshot as one JSON object (raw names, exact
    /// values). [`Snapshot::parse`] inverts this.
    pub fn to_json(&self) -> String {
        use crate::export::escape_json;
        let mut out = String::from("{\"schema\":\"riot-telemetry/1\",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                escape_json(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99,
            );
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a [`Snapshot::to_json`] document back into a snapshot.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = Value::parse(text)?;
        if v.get("schema").and_then(Value::as_str) != Some("riot-telemetry/1") {
            return Err(format!("bad schema: {:?}", v.get("schema")));
        }
        let section = |key: &str| -> Result<Vec<(String, Value)>, String> {
            match v.get(key) {
                Some(Value::Object(m)) => {
                    Ok(m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                }
                other => Err(format!("{key} is not an object: {other:?}")),
            }
        };
        let mut counters = Vec::new();
        for (name, val) in section("counters")? {
            counters.push((
                name.clone(),
                val.as_u64().ok_or(format!("counter {name} not a u64"))?,
            ));
        }
        let mut gauges = Vec::new();
        for (name, val) in section("gauges")? {
            gauges.push((
                name.clone(),
                val.as_i64().ok_or(format!("gauge {name} not an i64"))?,
            ));
        }
        let mut histograms = Vec::new();
        for (name, val) in section("histograms")? {
            let field = |key: &str| -> Result<u64, String> {
                val.get(key)
                    .and_then(Value::as_u64)
                    .ok_or(format!("histogram {name}.{key} missing or not a u64"))
            };
            let mut buckets = Vec::new();
            for (i, b) in val
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or(format!("histogram {name}.buckets missing"))?
                .iter()
                .enumerate()
            {
                let triple = b
                    .as_array()
                    .filter(|a| a.len() == 3)
                    .ok_or(format!("histogram {name}.buckets[{i}] not a triple"))?;
                let n = |j: usize| -> Result<u64, String> {
                    triple[j]
                        .as_u64()
                        .ok_or(format!("histogram {name}.buckets[{i}][{j}] not a u64"))
                };
                buckets.push((n(0)?, n(1)?, n(2)?));
            }
            histograms.push((
                name.clone(),
                HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                    buckets,
                },
            ));
        }
        // BTreeMap iteration already sorted each section by name,
        // matching the Registry snapshot ordering.
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

/// Prometheus text rendering of the global [`registry`].
pub fn prometheus() -> String {
    Snapshot::of(registry()).to_prometheus()
}

/// JSON snapshot of the global [`registry`].
pub fn json_snapshot() -> String {
    Snapshot::of(registry()).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_names() {
        assert_eq!(
            sanitize_metric_name("serve.wal.fsync_ns"),
            "riot_serve_wal_fsync_ns"
        );
        assert_eq!(sanitize_metric_name("riot_already"), "riot_already");
        assert_eq!(sanitize_metric_name("weird-name\"x"), "riot_weird_name_x");
        assert_eq!(sanitize_metric_name("a:b"), "riot_a:b");
    }

    #[test]
    fn snapshot_round_trips_by_hand() {
        let reg = Registry::default();
        reg.counter("serve.cmds").add(200);
        reg.gauge("serve.queue.depth").set(-3);
        let h = reg.histogram("serve.wal.fsync_ns");
        for v in [100u64, 120, 9000] {
            h.record(v);
        }
        let snap = Snapshot::of(&reg);
        let parsed = Snapshot::parse(&snap.to_json()).expect("parse back");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let reg = Registry::default();
        reg.histogram("never.recorded");
        reg.counter("c").inc();
        let snap = Snapshot::of(&reg);
        assert!(snap.histograms.is_empty());
        assert!(!snap.to_prometheus().contains("never_recorded"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::default();
        let h = reg.histogram("lat");
        h.record(1); // bucket [0,1]
        h.record(2); // bucket [2,3]
        h.record(3); // bucket [2,3]
        let text = Snapshot::of(&reg).to_prometheus();
        assert!(text.contains("riot_lat_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("riot_lat_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("riot_lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("riot_lat_sum 6\n"), "{text}");
        assert!(text.contains("riot_lat_count 3\n"), "{text}");
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(Snapshot::parse("{\"schema\":\"bogus\"}").is_err());
        assert!(Snapshot::parse("not json").is_err());
    }
}
