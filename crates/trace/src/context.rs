//! Trace context: explicit trace ids and cross-thread span handoff.
//!
//! A [`TraceContext`] is the pair `(trace_id, parent_span)` that lets a
//! logical operation keep one identity while it hops threads — or
//! machines, via the RIOTSRV1 wire protocol's optional trace-context
//! frame field. The producer side captures a context from a live span
//! ([`crate::Span::context`]); the consumer side either opens a span
//! explicitly under it ([`crate::span_with_context`]) or adopts it for
//! a scope ([`adopt`]) so every *root* span opened in that scope
//! continues the remote trace.
//!
//! Ids are plain `u64`s: `0` means "no trace". A root span opened with
//! no surrounding context starts a fresh trace whose id is the span's
//! own id, so every recorded span always belongs to exactly one trace.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The portable identity of an in-flight trace: which trace, and which
/// span inside it to parent the next child on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace this work belongs to (0 = none).
    pub trace_id: u64,
    /// The span to parent the continuation on (0 = root).
    pub parent_span: u64,
}

impl TraceContext {
    /// The absent context: no trace, no parent.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        parent_span: 0,
    };

    /// A context with both ids explicit.
    pub fn new(trace_id: u64, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span,
        }
    }

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.parent_span == 0
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

/// A process-unique, never-zero trace id for stamping a *new* trace at
/// its origin (e.g. a wire client starting a request). Mixes a counter
/// with the process id so ids from client and server processes sharing
/// a test harness do not collide.
pub fn fresh_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    // SplitMix64 finalizer over (pid << 32 | counter): well-spread,
    // deterministic per process, and never 0 for n >= 1.
    let mut z = (u64::from(std::process::id()) << 32)
        .wrapping_add(n)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z | 1
}

thread_local! {
    /// The context root spans on this thread continue, when set.
    static REMOTE: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

pub(crate) fn remote() -> TraceContext {
    REMOTE.with(Cell::get)
}

/// Guard restoring the previously adopted context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: TraceContext,
}

/// Adopts `ctx` for the current scope: until the returned guard drops,
/// every **root** span opened on this thread (one with no enclosing
/// span) records `ctx.trace_id` as its trace and `ctx.parent_span` as
/// its parent. Spans already nested under a local span are unaffected.
///
/// ```
/// riot_trace::enable(true);
/// let ctx = riot_trace::TraceContext::new(riot_trace::fresh_trace_id(), 0);
/// let _g = riot_trace::adopt(ctx);
/// let s = riot_trace::span!("work.remote");
/// assert_eq!(s.trace_id(), ctx.trace_id);
/// # drop(s);
/// # riot_trace::enable(false);
/// ```
pub fn adopt(ctx: TraceContext) -> ContextGuard {
    let prev = REMOTE.with(|r| r.replace(ctx));
    ContextGuard { prev }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        REMOTE.with(|r| r.set(self.prev));
    }
}

/// The context a child opened *right now* on this thread would
/// continue: the innermost open span if any, else the adopted remote
/// context, else [`TraceContext::NONE`].
pub fn current() -> TraceContext {
    if let Some((id, trace)) = crate::span::current_open() {
        return TraceContext {
            trace_id: trace,
            parent_span: id,
        };
    }
    remote()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = fresh_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn adopt_nests_and_restores() {
        assert_eq!(remote(), TraceContext::NONE);
        let outer = TraceContext::new(7, 9);
        let g1 = adopt(outer);
        assert_eq!(remote(), outer);
        {
            let inner = TraceContext::new(8, 1);
            let _g2 = adopt(inner);
            assert_eq!(remote(), inner);
        }
        assert_eq!(remote(), outer);
        drop(g1);
        assert_eq!(remote(), TraceContext::NONE);
    }

    #[test]
    fn none_is_none() {
        assert!(TraceContext::NONE.is_none());
        assert!(!TraceContext::new(1, 0).is_none());
        assert_eq!(TraceContext::default(), TraceContext::NONE);
    }
}
