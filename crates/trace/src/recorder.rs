//! The global ring-buffer span recorder.
//!
//! Finished spans are pushed into a bounded ring; when the ring is
//! full the oldest spans are evicted (and counted in
//! [`Recorder::dropped`]) so a long session cannot grow without bound.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Default ring capacity (spans).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One finished span, as stored in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`"cmd.route"`, `"rest.solve"`, …).
    pub name: &'static str,
    /// Unique id (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Trace this span belongs to (root spans start a trace named
    /// after their own id, so this is never 0 for recorded spans).
    pub trace: u64,
    /// Small sequential id of the recording thread.
    pub thread: u64,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// `u64` key/value fields attached via [`crate::Span::field`].
    pub fields: Vec<(&'static str, u64)>,
}

struct Ring {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

/// The global span sink: a mutex-guarded bounded ring.
pub struct Recorder {
    inner: Mutex<Ring>,
}

/// The process-wide recorder.
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        inner: Mutex::new(Ring {
            buf: VecDeque::with_capacity(1024),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }),
    })
}

impl Recorder {
    /// Pushes one finished span, evicting the oldest when full.
    pub fn record(&self, rec: SpanRecord) {
        let mut r = self.inner.lock().expect("recorder lock");
        if r.buf.len() >= r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(rec);
    }

    /// A copy of the current ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .expect("recorder lock")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Drains the ring, returning its contents oldest first.
    pub fn take(&self) -> Vec<SpanRecord> {
        let mut r = self.inner.lock().expect("recorder lock");
        r.buf.drain(..).collect()
    }

    /// Empties the ring and resets the eviction counter.
    pub fn clear(&self) {
        let mut r = self.inner.lock().expect("recorder lock");
        r.buf.clear();
        r.dropped = 0;
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dropped
    }

    /// Changes the ring capacity (evicting oldest spans if shrinking).
    pub fn set_capacity(&self, capacity: usize) {
        let mut r = self.inner.lock().expect("recorder lock");
        r.capacity = capacity.max(1);
        while r.buf.len() > r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> SpanRecord {
        SpanRecord {
            name: "test.ring",
            id,
            parent: 0,
            trace: id,
            thread: 1,
            start_ns: id,
            dur_ns: 1,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        // A private ring via capacity manipulation on the global one
        // would race other tests; build a local Recorder instead.
        let r = Recorder {
            inner: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: 3,
                dropped: 0,
            }),
        };
        for i in 1..=5 {
            r.record(rec(i));
        }
        let spans = r.snapshot();
        assert_eq!(spans.iter().map(|s| s.id).collect::<Vec<_>>(), [3, 4, 5]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.take().len(), 3);
        assert!(r.is_empty());
    }
}
