//! Guard-style timed spans with nesting and `u64` key/value fields.
//!
//! A [`Span`] measures the region between its creation and its drop.
//! Spans nest through a per-thread stack: a span opened while another
//! is alive records that span's id as its parent, which is what lets
//! the Chrome exporter reconstruct the flame graph of an
//! abut→route→stretch session.
//!
//! Every span also carries a **trace id** grouping it with the other
//! spans of the same logical operation, across threads and (via the
//! wire protocol) across processes. Children inherit the trace id of
//! their parent; a root span with no adopted [`TraceContext`] starts a
//! fresh trace identified by its own span id. Use [`span_with_context`]
//! to continue a trace handed off from another thread, and
//! [`complete_span`] to record a region whose start predates knowing
//! its context (e.g. frame decode, queue wait).

use crate::context::TraceContext;
use crate::recorder::{recorder, SpanRecord};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Spans keep at most this many fields; extras are dropped silently.
pub const MAX_FIELDS: usize = 8;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn this_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    /// The stack of currently-open `(span id, trace id)` pairs.
    static OPEN: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open `(span id, trace id)` on this thread, if any.
pub(crate) fn current_open() -> Option<(u64, u64)> {
    OPEN.with(|o| o.borrow().last().copied())
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    trace: u64,
    thread: u64,
    start_ns: u64,
    started: Instant,
    fields: Vec<(&'static str, u64)>,
}

/// A guard measuring one timed region. Created by [`span`] or the
/// [`span!`](crate::span!) macro; records on drop. When tracing is
/// disabled the guard is inert and costs nothing beyond the
/// construction-time enabled check.
pub struct Span(Option<ActiveSpan>);

fn open_span(name: &'static str, explicit: Option<TraceContext>) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    let ep = epoch();
    let started = Instant::now();
    let id = next_span_id();
    let (parent, trace) = OPEN.with(|o| {
        let mut o = o.borrow_mut();
        let (parent, trace) = match explicit {
            // An explicit context wins even inside an open span: the
            // caller is continuing a trace handed off from elsewhere.
            Some(ctx) => (ctx.parent_span, ctx.trace_id),
            None => match o.last().copied() {
                Some((pid, ptrace)) => (pid, ptrace),
                None => {
                    let remote = crate::context::remote();
                    if remote.is_none() {
                        (0, 0)
                    } else {
                        (remote.parent_span, remote.trace_id)
                    }
                }
            },
        };
        // A fresh root starts a trace named after its own span id so
        // every record belongs to exactly one nonzero trace.
        let trace = if trace == 0 { id } else { trace };
        o.push((id, trace));
        (parent, trace)
    });
    Span(Some(ActiveSpan {
        name,
        id,
        parent,
        trace,
        thread: this_thread_id(),
        start_ns: started.duration_since(ep).as_nanos() as u64,
        started,
        fields: Vec::with_capacity(4),
    }))
}

/// Opens a span named `name`. Names should be short dotted paths
/// (`"cmd.route"`, `"rest.solve"`); the auto-histogram in the registry
/// is keyed by this exact string.
pub fn span(name: &'static str) -> Span {
    open_span(name, None)
}

/// Opens a span continuing `ctx` — the cross-thread (and cross-wire)
/// handoff primitive. The new span records `ctx.parent_span` as its
/// parent and `ctx.trace_id` as its trace even if other spans are open
/// on this thread; children opened while it is alive inherit the trace.
pub fn span_with_context(name: &'static str, ctx: TraceContext) -> Span {
    open_span(name, Some(ctx))
}

/// Records an already-elapsed region `[started, now)` as a finished
/// span under `ctx`, feeding the ring and the auto-histogram exactly
/// like a guard would. For regions whose start predates knowing their
/// context (frame decode discovers the context *inside* the bytes;
/// queue wait starts on the submitting thread and ends on the worker).
/// Returns the recorded span's id (0 when tracing is disabled).
pub fn complete_span(
    name: &'static str,
    ctx: TraceContext,
    started: Instant,
    fields: &[(&'static str, u64)],
) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let ep = epoch();
    let dur_ns = started.elapsed().as_nanos() as u64;
    // `duration_since` saturates to zero if `started` predates the
    // lazily-initialized epoch.
    let start_ns = started.duration_since(ep).as_nanos() as u64;
    let id = next_span_id();
    let trace = if ctx.trace_id == 0 { id } else { ctx.trace_id };
    crate::registry().histogram(name).record(dur_ns);
    recorder().record(SpanRecord {
        name,
        id,
        parent: ctx.parent_span,
        trace,
        thread: this_thread_id(),
        start_ns,
        dur_ns,
        fields: fields.to_vec(),
    });
    id
}

impl Span {
    /// Attaches a `u64` field to the span (no-op when disabled or when
    /// [`MAX_FIELDS`] is exceeded).
    pub fn field(&mut self, key: &'static str, value: u64) {
        if let Some(a) = self.0.as_mut() {
            if a.fields.len() < MAX_FIELDS {
                a.fields.push((key, value));
            }
        }
    }

    /// This span's id, or 0 when tracing is disabled.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map(|a| a.id).unwrap_or(0)
    }

    /// The trace this span belongs to, or 0 when tracing is disabled.
    pub fn trace_id(&self) -> u64 {
        self.0.as_ref().map(|a| a.trace).unwrap_or(0)
    }

    /// The context a continuation of this span should carry: same
    /// trace, parented on this span. [`TraceContext::NONE`] when
    /// tracing is disabled.
    pub fn context(&self) -> TraceContext {
        match self.0.as_ref() {
            Some(a) => TraceContext {
                trace_id: a.trace,
                parent_span: a.id,
            },
            None => TraceContext::NONE,
        }
    }

    /// Whether this guard is live (tracing was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = a.started.elapsed().as_nanos() as u64;
        OPEN.with(|o| {
            let mut o = o.borrow_mut();
            // Guards normally drop LIFO; tolerate out-of-order drops.
            if o.last().map(|&(id, _)| id) == Some(a.id) {
                o.pop();
            } else if let Some(pos) = o.iter().rposition(|&(id, _)| id == a.id) {
                o.remove(pos);
            }
        });
        crate::registry().histogram(a.name).record(dur_ns);
        recorder().record(SpanRecord {
            name: a.name,
            id: a.id,
            parent: a.parent,
            trace: a.trace,
            thread: a.thread,
            start_ns: a.start_ns,
            dur_ns,
            fields: a.fields,
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => f.write_str("Span(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enable/disable tests in this module against each
    /// other (global flag).
    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::enable(true);
        let r = f();
        crate::enable(false);
        r
    }

    #[test]
    fn spans_nest_and_record() {
        with_enabled(|| {
            let outer_id;
            {
                let outer = span("test.outer");
                outer_id = outer.id();
                let _inner = crate::span!("test.inner", depth = 2u64);
            }
            let spans = recorder().snapshot();
            let inner = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.inner")
                .expect("inner recorded");
            assert_eq!(inner.parent, outer_id);
            assert_eq!(inner.fields, vec![("depth", 2u64)]);
            let outer = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.outer")
                .expect("outer recorded");
            assert_eq!(outer.parent, 0);
            assert!(outer.dur_ns >= inner.dur_ns);
            // A root starts a trace named after itself; children share it.
            assert_eq!(outer.trace, outer_id);
            assert_eq!(inner.trace, outer_id);
        });
    }

    #[test]
    fn field_limit_enforced() {
        with_enabled(|| {
            let mut s = span("test.fields");
            for i in 0..(MAX_FIELDS as u64 + 4) {
                s.field("k", i);
            }
            drop(s);
            let spans = recorder().snapshot();
            let rec = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.fields")
                .unwrap();
            assert_eq!(rec.fields.len(), MAX_FIELDS);
        });
    }

    #[test]
    fn auto_histogram_fed() {
        with_enabled(|| {
            drop(span("test.autohist"));
            assert!(crate::registry().histogram("test.autohist").count() >= 1);
        });
    }

    #[test]
    fn explicit_context_continues_trace() {
        with_enabled(|| {
            let ctx = TraceContext::new(4242, 17);
            let handed = span_with_context("test.handoff", ctx);
            assert_eq!(handed.trace_id(), 4242);
            let child = span("test.handoff.child");
            assert_eq!(child.trace_id(), 4242);
            let child_ctx = child.context();
            assert_eq!(child_ctx.trace_id, 4242);
            assert_eq!(child_ctx.parent_span, child.id());
            drop(child);
            drop(handed);
            let spans = recorder().snapshot();
            let rec = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.handoff")
                .unwrap();
            assert_eq!(rec.parent, 17);
            assert_eq!(rec.trace, 4242);
        });
    }

    #[test]
    fn adopted_context_applies_to_roots_only() {
        with_enabled(|| {
            let ctx = TraceContext::new(909, 5);
            let _g = crate::adopt(ctx);
            let root = span("test.adopt.root");
            assert_eq!(root.trace_id(), 909);
            let spans_before = root.id();
            drop(root);
            let spans = recorder().snapshot();
            let rec = spans.iter().rev().find(|r| r.id == spans_before).unwrap();
            assert_eq!(rec.parent, 5);
            assert_eq!(rec.trace, 909);
        });
    }

    #[test]
    fn complete_span_records_under_context() {
        with_enabled(|| {
            let t0 = Instant::now();
            let ctx = TraceContext::new(31337, 99);
            let id = complete_span("test.complete", ctx, t0, &[("bytes", 64)]);
            assert_ne!(id, 0);
            let spans = recorder().snapshot();
            let rec = spans.iter().rev().find(|r| r.id == id).unwrap();
            assert_eq!(rec.name, "test.complete");
            assert_eq!(rec.trace, 31337);
            assert_eq!(rec.parent, 99);
            assert_eq!(rec.fields, vec![("bytes", 64u64)]);
            assert!(crate::registry().histogram("test.complete").count() >= 1);
        });
    }

    #[test]
    fn disabled_handoff_is_inert() {
        crate::enable(false);
        let s = span_with_context("test.handoff.off", TraceContext::new(1, 2));
        assert!(!s.is_recording());
        assert_eq!(s.context(), TraceContext::NONE);
        assert_eq!(
            complete_span("test.off", TraceContext::NONE, Instant::now(), &[]),
            0
        );
    }
}
