//! Guard-style timed spans with nesting and `u64` key/value fields.
//!
//! A [`Span`] measures the region between its creation and its drop.
//! Spans nest through a per-thread stack: a span opened while another
//! is alive records that span's id as its parent, which is what lets
//! the Chrome exporter reconstruct the flame graph of an
//! abut→route→stretch session.

use crate::recorder::{recorder, SpanRecord};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Spans keep at most this many fields; extras are dropped silently.
pub const MAX_FIELDS: usize = 8;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn this_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    /// The stack of currently-open span ids on this thread.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
    started: Instant,
    fields: Vec<(&'static str, u64)>,
}

/// A guard measuring one timed region. Created by [`span`] or the
/// [`span!`](crate::span!) macro; records on drop. When tracing is
/// disabled the guard is inert and costs nothing beyond the
/// construction-time enabled check.
pub struct Span(Option<ActiveSpan>);

/// Opens a span named `name`. Names should be short dotted paths
/// (`"cmd.route"`, `"rest.solve"`); the auto-histogram in the registry
/// is keyed by this exact string.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span(None);
    }
    let ep = epoch();
    let started = Instant::now();
    let id = next_span_id();
    let parent = OPEN.with(|o| {
        let mut o = o.borrow_mut();
        let parent = o.last().copied().unwrap_or(0);
        o.push(id);
        parent
    });
    Span(Some(ActiveSpan {
        name,
        id,
        parent,
        thread: this_thread_id(),
        start_ns: started.duration_since(ep).as_nanos() as u64,
        started,
        fields: Vec::with_capacity(4),
    }))
}

impl Span {
    /// Attaches a `u64` field to the span (no-op when disabled or when
    /// [`MAX_FIELDS`] is exceeded).
    pub fn field(&mut self, key: &'static str, value: u64) {
        if let Some(a) = self.0.as_mut() {
            if a.fields.len() < MAX_FIELDS {
                a.fields.push((key, value));
            }
        }
    }

    /// This span's id, or 0 when tracing is disabled.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map(|a| a.id).unwrap_or(0)
    }

    /// Whether this guard is live (tracing was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = a.started.elapsed().as_nanos() as u64;
        OPEN.with(|o| {
            let mut o = o.borrow_mut();
            // Guards normally drop LIFO; tolerate out-of-order drops.
            if o.last() == Some(&a.id) {
                o.pop();
            } else if let Some(pos) = o.iter().rposition(|&x| x == a.id) {
                o.remove(pos);
            }
        });
        crate::registry().histogram(a.name).record(dur_ns);
        recorder().record(SpanRecord {
            name: a.name,
            id: a.id,
            parent: a.parent,
            thread: a.thread,
            start_ns: a.start_ns,
            dur_ns,
            fields: a.fields,
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => f.write_str("Span(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enable/disable tests in this module against each
    /// other (global flag).
    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::enable(true);
        let r = f();
        crate::enable(false);
        r
    }

    #[test]
    fn spans_nest_and_record() {
        with_enabled(|| {
            let outer_id;
            {
                let outer = span("test.outer");
                outer_id = outer.id();
                let _inner = crate::span!("test.inner", depth = 2u64);
            }
            let spans = recorder().snapshot();
            let inner = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.inner")
                .expect("inner recorded");
            assert_eq!(inner.parent, outer_id);
            assert_eq!(inner.fields, vec![("depth", 2u64)]);
            let outer = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.outer")
                .expect("outer recorded");
            assert_eq!(outer.parent, 0);
            assert!(outer.dur_ns >= inner.dur_ns);
        });
    }

    #[test]
    fn field_limit_enforced() {
        with_enabled(|| {
            let mut s = span("test.fields");
            for i in 0..(MAX_FIELDS as u64 + 4) {
                s.field("k", i);
            }
            drop(s);
            let spans = recorder().snapshot();
            let rec = spans
                .iter()
                .rev()
                .find(|r| r.name == "test.fields")
                .unwrap();
            assert_eq!(rec.fields.len(), MAX_FIELDS);
        });
    }

    #[test]
    fn auto_histogram_fed() {
        with_enabled(|| {
            drop(span("test.autohist"));
            assert!(crate::registry().histogram("test.autohist").count() >= 1);
        });
    }
}
