//! The metrics registry: named counters, gauges, and log2-bucket
//! latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s of pure
//! atomics: after the first registration of a name, updates are
//! lock-free and wait-free. Cache the handle when a site is hot;
//! re-looking a name up costs one `RwLock` read and one hash.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of log2 buckets ([`Histogram`] covers the whole `u64` range).
pub const BUCKETS: usize = 64;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-log2-bucket histogram for latencies in nanoseconds.
///
/// Bucket `i` holds values `v` with `floor(log2(max(v,1))) == i`, i.e.
/// the half-open range `[2^i, 2^(i+1))`, with bucket 0 also absorbing
/// `v == 0`. Percentiles are estimated as the **upper bound** of the
/// bucket where the requested rank falls — a conservative (never
/// under-reporting) estimate with ≤2x resolution, plenty for latency
/// work where the interesting differences are order-of-magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        63 - (v | 1).leading_zeros() as usize
    }

    /// Inclusive `(low, high)` value bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// When `i >= BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS);
        let low = if i == 0 { 0 } else { 1u64 << i };
        let high = if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        };
        (low, high)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest exact observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean of observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-`ceil(q*count)` observation, clamped to
    /// the exact observed max. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                let (_, high) = Self::bucket_bounds(i);
                return Some(high.min(self.max.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// p50 (median) estimate.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// p95 estimate.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// p99 estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Non-empty `(bucket_low, bucket_high, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| {
                    let (lo, hi) = Self::bucket_bounds(i);
                    (lo, hi, c)
                })
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The named-metric registry. Obtain the global one with [`registry`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("registry lock").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_owned()).or_default())
}

fn sorted_snapshot<T, V>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    f: impl Fn(&Arc<T>) -> V,
) -> Vec<(String, V)> {
    let mut v: Vec<(String, V)> = map
        .read()
        .expect("registry lock")
        .iter()
        .map(|(k, m)| (k.clone(), f(m)))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// `(name, value)` pairs of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        sorted_snapshot(&self.counters, |c| c.get())
    }

    /// `(name, value)` pairs of every gauge, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        sorted_snapshot(&self.gauges, |g| g.get())
    }

    /// `(name, handle)` pairs of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        sorted_snapshot(&self.histograms, Arc::clone)
    }

    /// Zeroes every metric (handles stay valid).
    pub fn reset(&self) {
        for (_, c) in self.counters.read().expect("registry lock").iter() {
            c.0.store(0, Ordering::Relaxed);
        }
        for (_, g) in self.gauges.read().expect("registry lock").iter() {
            g.0.store(0, Ordering::Relaxed);
        }
        for (_, h) in self.histograms.read().expect("registry lock").iter() {
            h.reset();
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // v == 0 and v == 1 land in bucket 0; boundaries split exactly
        // at powers of two.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(7), 2);
        assert_eq!(Histogram::bucket_index(8), 3);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "low bound of {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high bound of {i}");
            if i > 0 {
                assert_eq!(lo, Histogram::bucket_bounds(i - 1).1 + 1, "contiguous");
            }
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(63).1, u64::MAX);
    }

    #[test]
    fn histogram_stats_exact_fields() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1060);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(265.0));
    }

    #[test]
    fn percentile_math_on_known_distribution() {
        let h = Histogram::default();
        // 99 observations in [64,127] (bucket 6), 1 at 8000 (bucket 12).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(8000);
        // p50 and p95 fall in bucket 6 -> upper bound 127.
        assert_eq!(h.p50(), Some(127));
        assert_eq!(h.p95(), Some(127));
        // p99: rank ceil(0.99*100)=99 is still in bucket 6.
        assert_eq!(h.p99(), Some(127));
        // p100 reaches the outlier, clamped to the exact max.
        assert_eq!(h.percentile(1.0), Some(8000));
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let h = Histogram::default();
        h.record(65); // bucket 6, upper bound 127
        assert_eq!(h.p50(), Some(65), "estimate never exceeds the max");
    }

    #[test]
    fn percentile_rank_uses_ceiling() {
        let h = Histogram::default();
        h.record(1); // bucket 0
        h.record(1_000_000); // bucket 19
                             // rank ceil(0.5*2) = 1 -> first bucket.
        assert_eq!(h.p50(), Some(1));
        assert!(h.percentile(0.51).unwrap() > 1);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::default();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("g").set(-5);
        r.gauge("g").add(2);
        assert_eq!(r.gauge("g").get(), -3);
        r.histogram("h").record(42);
        assert_eq!(r.histogram("h").count(), 1);
        assert_eq!(r.counters(), vec![("a".to_owned(), 3)]);
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.histogram("h").count(), 0);
        assert_eq!(r.histogram("h").min(), None);
    }
}
