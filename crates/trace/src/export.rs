//! Exporters: human-readable summary, JSON lines, and Chrome
//! `trace_event` JSON.
//!
//! All JSON is emitted by hand (the crate has zero dependencies); only
//! span names and field keys — short static identifiers — and metric
//! names reach the output, and every string is escaped anyway.

use crate::metrics::registry;
use crate::recorder::{recorder, SpanRecord};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fields_json(fields: &[(&'static str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), v);
    }
    out.push('}');
    out
}

/// Pretty-prints a nanosecond quantity (`123ns`, `4.5µs`, `6.7ms`,
/// `8.9s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// A human-readable session summary: counters, gauges, and latency
/// histograms with count/mean/p50/p95/p99/max. This is what the `STATS`
/// textual command and `RIOT_TRACE=summary` print.
pub fn summary() -> String {
    let reg = registry();
    let mut out = String::from("== riot-trace session summary ==\n");
    let counters = reg.counters();
    let gauges = reg.gauges();
    let hists = reg.histograms();
    if counters.iter().all(|(_, v)| *v == 0)
        && hists.iter().all(|(_, h)| h.count() == 0)
        && gauges.is_empty()
    {
        out.push_str("(no metrics recorded; set RIOT_TRACE or call riot_trace::enable)\n");
    }
    if counters.iter().any(|(_, v)| *v > 0) {
        out.push_str("counters:\n");
        for (name, v) in &counters {
            if *v > 0 {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &gauges {
            let _ = writeln!(out, "  {name:<28} {v}");
        }
    }
    let live: Vec<_> = hists.iter().filter(|(_, h)| h.count() > 0).collect();
    if !live.is_empty() {
        let _ = writeln!(
            out,
            "latency:\n  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "span", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, h) in live {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                name,
                h.count(),
                fmt_ns(h.mean().unwrap_or(0.0) as u64),
                fmt_ns(h.p50().unwrap_or(0)),
                fmt_ns(h.p95().unwrap_or(0)),
                fmt_ns(h.p99().unwrap_or(0)),
                fmt_ns(h.max().unwrap_or(0)),
            );
        }
    }
    let dropped = recorder().dropped();
    let _ = writeln!(
        out,
        "spans buffered: {}{}",
        recorder().len(),
        if dropped > 0 {
            format!(" ({dropped} evicted)")
        } else {
            String::new()
        }
    );
    out
}

fn span_json(r: &SpanRecord) -> String {
    format!(
        "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"trace\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"fields\":{}}}",
        escape_json(r.name),
        r.id,
        r.parent,
        r.trace,
        r.thread,
        r.start_ns,
        r.dur_ns,
        fields_json(&r.fields),
    )
}

/// JSON-lines export: one object per buffered span, then one per
/// counter/gauge/histogram. Machine-readable and diff-friendly.
pub fn jsonl() -> String {
    let mut out = String::new();
    for r in recorder().snapshot() {
        out.push_str(&span_json(&r));
        out.push('\n');
    }
    let reg = registry();
    for (name, v) in reg.counters() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(&name),
            v
        );
    }
    for (name, v) in reg.gauges() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(&name),
            v
        );
    }
    for (name, h) in reg.histograms() {
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(&name),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.p50().unwrap_or(0),
            h.p95().unwrap_or(0),
            h.p99().unwrap_or(0),
        );
    }
    out
}

/// Chrome `trace_event` export: a JSON array of complete (`"ph":"X"`)
/// events, loadable in `chrome://tracing` and Perfetto. Timestamps and
/// durations are microseconds (fractional, preserving ns precision);
/// span fields appear under `args`.
pub fn chrome_trace() -> String {
    chrome_trace_of(&recorder().snapshot())
}

/// [`chrome_trace`] over an explicit span list (the profiler uses this
/// to export a drained ring).
pub fn chrome_trace_of(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"riot\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
            escape_json(r.name),
            micros(r.start_ns),
            micros(r.dur_ns),
            r.thread,
            fields_json(&r.fields),
        );
    }
    out.push_str("\n]\n");
    out
}

/// Nanoseconds as a decimal microsecond literal with ns precision
/// (`1234` ns → `1.234`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, id: u64) -> SpanRecord {
        SpanRecord {
            name,
            id,
            parent: 0,
            trace: id,
            thread: 1,
            start_ns: 1_500,
            dur_ns: 2_250,
            fields: vec![("nets", 4)],
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let t = chrome_trace_of(&[rec("route.river", 1), rec("rest.solve", 2)]);
        assert!(t.trim_start().starts_with('['));
        assert!(t.trim_end().ends_with(']'));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ts\":1.500"));
        assert!(t.contains("\"dur\":2.250"));
        assert!(t.contains("\"args\":{\"nets\":4}"));
        // Balanced braces/brackets (a structural smoke test; the CI
        // profile step runs a real JSON parser over the artifact).
        let open = t.matches('{').count();
        let close = t.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_chrome_trace_is_valid_array() {
        assert_eq!(chrome_trace_of(&[]).trim(), "[\n]");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn summary_mentions_emptiness() {
        // Cannot assert much about the shared registry, but summary
        // must never panic and always carries the header.
        assert!(summary().starts_with("== riot-trace session summary =="));
    }
}
