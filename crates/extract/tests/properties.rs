//! Property tests for extraction: route cells always connect their
//! ends, combs never short their fingers, and extraction is a pure
//! function of the cell.

use proptest::prelude::*;
use riot_extract::extract;
use riot_geom::{Layer, Side};
use riot_route::{river_route, RouteProblem, Terminal};

fn arb_route_problem() -> impl Strategy<Value = RouteProblem> {
    prop::collection::vec((0i64..12, 0i64..12), 1..7).prop_map(|gaps| {
        let (mut xb, mut xt) = (0i64, 0i64);
        let mut bottom = Vec::new();
        let mut top = Vec::new();
        for (i, (gb, gt)) in gaps.iter().enumerate() {
            xb += 7 + gb;
            xt += 7 + gt;
            bottom.push(Terminal::new(format!("n{i}"), xb, Layer::Metal, 3));
            top.push(Terminal::new(format!("n{i}"), xt, Layer::Metal, 3));
        }
        RouteProblem::new(bottom, top)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn route_cells_connect_each_net_end_to_end(p in arb_route_problem()) {
        let route = river_route(&p).expect("routable");
        let cell = route.to_sticks_cell("rc");
        let nl = extract(&cell).expect("extracts");
        // Every bottom pin connects to its own top pin and to no other
        // net's pins.
        for (i, w) in route.wires().iter().enumerate() {
            let bottom = w.name.clone();
            let top = format!("{}'", w.name);
            prop_assert!(
                nl.connected(&bottom, &top),
                "net {i} broken in the route cell"
            );
            for (j, other) in route.wires().iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !nl.connected(&bottom, &other.name),
                        "nets {i} and {j} shorted"
                    );
                }
            }
        }
    }

    #[test]
    fn comb_fingers_never_short(n in 1usize..8, pitch in 4i64..10) {
        let comb = riot_cells::parametric::comb("c", Side::Left, n, pitch);
        let nl = extract(&comb).expect("extracts");
        prop_assert_eq!(nl.net_count(), n);
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (format!("P{i}"), format!("P{j}"));
                prop_assert!(!nl.connected(&a, &b), "{} shorted to {}", a, b);
            }
        }
    }

    #[test]
    fn extraction_is_deterministic(p in arb_route_problem()) {
        let cell = river_route(&p).expect("routable").to_sticks_cell("rc");
        let a = extract(&cell).expect("extracts");
        let b = extract(&cell).expect("extracts");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn stretching_preserves_connectivity(grow in prop::collection::vec(0i64..8, 2..6)) {
        // Stretch a comb; fingers stay separate, pins stay attached.
        let n = grow.len();
        let comb = riot_cells::parametric::comb("c", Side::Left, n, 6);
        let mut spec = riot_rest::StretchSpec::new(riot_rest::Axis::Y);
        let mut cum = 0;
        for (i, g) in grow.iter().enumerate() {
            cum += g;
            spec.push_target(format!("P{i}"), 6 * (i as i64 + 1) + cum);
        }
        let stretched = riot_rest::stretch(&comb, &spec).expect("feasible");
        let before = extract(&comb).expect("extracts");
        let after = extract(&stretched).expect("extracts");
        prop_assert_eq!(before.net_count(), after.net_count());
        for i in 0..n {
            let pin = format!("P{i}");
            prop_assert!(after.net_of_pin(&pin).is_some(), "pin {pin} floated");
        }
    }
}

#[test]
fn filter_leaf_cells_all_extract() {
    for cell in [
        riot_cells::shift_register(),
        riot_cells::nand2(),
        riot_cells::or2(),
    ] {
        let nl = extract(&cell).unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
        assert!(nl.net_count() >= 3, "{}", cell.name());
        // Rails must be continuous but never shorted together.
        assert!(nl.connected("PWRL", "PWRR"), "{}", cell.name());
        assert!(nl.connected("GNDL", "GNDR"), "{}", cell.name());
        assert!(!nl.connected("PWRL", "GNDL"), "{}", cell.name());
    }
}

#[test]
fn shift_register_chain_is_one_net_per_stage() {
    let sr = riot_cells::shift_register();
    let nl = extract(&sr).unwrap();
    // The serial chain runs straight through the stage in metal.
    assert!(nl.connected("SI", "SO"));
    // The tap hangs off the chain through the metal-poly contact.
    assert!(nl.connected("SI", "TAP"));
}
