//! Connectivity extraction and switch-level simulation for Sticks
//! cells — the interface the paper mentions in passing: "Sticks, a
//! symbolic layout format, … is also used as input to simulation."
//!
//! The paper's Caltech simulators are gone, so this crate provides the
//! pipeline they sat behind:
//!
//! 1. **Extraction** ([`extract`]): paint every element of a
//!    [`riot_sticks::SticksCell`] onto a half-lambda grid per layer,
//!    cut transistor channels out of the diffusion, flood-fill the
//!    conductors, join layers at contacts, and attach pins and device
//!    terminals — producing a [`Netlist`].
//! 2. **Simulation** ([`sim`]): a three-valued switch-level NMOS
//!    evaluator over that netlist (enhancement devices switch on their
//!    gate net; depletion loads always conduct; ground paths dominate
//!    supply paths), good enough to verify that the generated gate
//!    cells really compute NAND and NOR.
//!
//! # Example
//!
//! ```
//! use riot_extract::{extract, sim::{simulate, Level}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nand = riot_cells::nand2();
//! let netlist = extract(&nand)?;
//! // A and B drive the same gate? No — distinct nets.
//! assert_ne!(netlist.net_of_pin("A"), netlist.net_of_pin("B"));
//! let out = simulate(
//!     &netlist,
//!     &[("PWRL", Level::High), ("GNDL", Level::Low), ("A", Level::High), ("B", Level::High)],
//! )?;
//! assert_eq!(out.pin("OUT"), Level::Low); // NAND(1,1) = 0
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extractor;
pub mod flatten;
pub mod grid;
pub mod netlist;
pub mod sim;

pub use extractor::extract;
pub use flatten::{flatten_to_sticks, FlattenError};
pub use netlist::{ExtractError, ExtractedDevice, Net, NetId, Netlist};
