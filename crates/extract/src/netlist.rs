//! The extracted netlist: nets, pins and switch devices.

use riot_sticks::DeviceKind;
use std::fmt;

/// Index of a net in its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// One electrical net: a connected set of conductors with the pins
/// attached to it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Net {
    /// Names of the cell pins on this net.
    pub pins: Vec<String>,
}

/// A transistor as the simulator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractedDevice {
    /// Enhancement (switch) or depletion (always-on load).
    pub kind: DeviceKind,
    /// The net controlling the channel.
    pub gate: NetId,
    /// One channel terminal.
    pub source: NetId,
    /// The other channel terminal.
    pub drain: NetId,
}

/// Extraction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// A pin location has no conductor painted under it on its layer.
    FloatingPin(String),
    /// A device terminal sampled empty space (malformed cell).
    FloatingDeviceTerminal {
        /// Index of the device in the cell.
        device: usize,
        /// Which terminal: "gate", "source" or "drain".
        terminal: &'static str,
    },
    /// The cell failed validation before extraction.
    InvalidCell(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::FloatingPin(name) => {
                write!(f, "pin `{name}` has no conductor under it")
            }
            ExtractError::FloatingDeviceTerminal { device, terminal } => {
                write!(f, "device #{device} has a floating {terminal}")
            }
            ExtractError::InvalidCell(msg) => write!(f, "invalid cell: {msg}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// The extracted circuit of one cell.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    pub(crate) nets: Vec<Net>,
    pub(crate) devices: Vec<ExtractedDevice>,
}

impl Netlist {
    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All devices.
    pub fn devices(&self) -> &[ExtractedDevice] {
        &self.devices
    }

    /// The net a named pin sits on.
    pub fn net_of_pin(&self, pin: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.pins.iter().any(|p| p == pin))
            .map(NetId)
    }

    /// True when two pins are on the same conductor (DC-connected
    /// without passing through any transistor channel).
    pub fn connected(&self, a: &str, b: &str) -> bool {
        match (self.net_of_pin(a), self.net_of_pin(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_lookup() {
        let nl = Netlist {
            nets: vec![
                Net {
                    pins: vec!["A".into(), "B".into()],
                },
                Net {
                    pins: vec!["C".into()],
                },
            ],
            devices: vec![],
        };
        assert_eq!(nl.net_of_pin("A"), Some(NetId(0)));
        assert_eq!(nl.net_of_pin("C"), Some(NetId(1)));
        assert_eq!(nl.net_of_pin("Z"), None);
        assert!(nl.connected("A", "B"));
        assert!(!nl.connected("A", "C"));
        assert!(!nl.connected("A", "Z"));
    }
}
