//! The quarter-lambda paint grid and its flood fill.
//!
//! Sticks elements sit on the lambda grid with whole-lambda widths, so
//! painted extents land on **half**-lambda boundaries. The grid stores
//! points at **quarter**-lambda pitch: two shapes that genuinely touch
//! share a painted point, while shapes half a lambda apart leave an
//! unpainted row between them — adjacency in the flood fill then means
//! real electrical contact, never mere proximity.

use riot_geom::{Point, Rect};
use std::collections::{HashMap, HashSet, VecDeque};

/// A set of painted quarter-lambda points with component labelling.
#[derive(Debug, Clone, Default)]
pub struct PaintGrid {
    points: HashSet<(i64, i64)>,
    blocked: HashSet<(i64, i64)>,
}

impl PaintGrid {
    /// An empty grid.
    pub fn new() -> Self {
        PaintGrid::default()
    }

    /// Paints a closed rectangle given in **quarter-lambda**
    /// coordinates (multiply lambda by 4, half-lambda by 2). Every
    /// integer point inside is painted, so unit-step adjacency in the
    /// flood fill means the shapes genuinely overlap or touch.
    pub fn paint_rect_quarter(&mut self, r: Rect) {
        for x in r.x0..=r.x1 {
            for y in r.y0..=r.y1 {
                self.points.insert((x, y));
            }
        }
    }

    /// Paints a rectangle given in lambda coordinates.
    pub fn paint_rect_lambda(&mut self, r: Rect) {
        self.paint_rect_quarter(Rect::new(4 * r.x0, 4 * r.y0, 4 * r.x1, 4 * r.y1));
    }

    /// Blocks a quarter-lambda rectangle: the points stop conducting
    /// (transistor channels cut the diffusion).
    pub fn block_rect_quarter(&mut self, r: Rect) {
        for x in r.x0..=r.x1 {
            for y in r.y0..=r.y1 {
                self.blocked.insert((x, y));
            }
        }
    }

    /// True when a quarter-lambda point is painted and conducting.
    pub fn conducts(&self, p: (i64, i64)) -> bool {
        self.points.contains(&p) && !self.blocked.contains(&p)
    }

    /// Number of conducting points.
    pub fn conducting_count(&self) -> usize {
        self.points
            .iter()
            .filter(|p| !self.blocked.contains(*p))
            .count()
    }

    /// Labels 4-connected conducting components; returns the
    /// point→component map and the component count.
    pub fn components(&self) -> (HashMap<(i64, i64), usize>, usize) {
        let mut label: HashMap<(i64, i64), usize> = HashMap::new();
        let mut next = 0usize;
        for &start in &self.points {
            if self.blocked.contains(&start) || label.contains_key(&start) {
                continue;
            }
            let id = next;
            next += 1;
            let mut queue = VecDeque::from([start]);
            label.insert(start, id);
            while let Some((x, y)) = queue.pop_front() {
                for n in [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)] {
                    if self.conducts(n) && !label.contains_key(&n) {
                        label.insert(n, id);
                        queue.push_back(n);
                    }
                }
            }
        }
        (label, next)
    }

    /// The quarter-lambda point for a lambda-grid location.
    pub fn anchor(p: Point) -> (i64, i64) {
        (4 * p.x, 4 * p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paint_and_conduct() {
        let mut g = PaintGrid::new();
        g.paint_rect_lambda(Rect::new(0, 0, 2, 0));
        assert!(g.conducts((0, 0)));
        assert!(g.conducts((8, 0)));
        assert!(!g.conducts((10, 0)));
    }

    #[test]
    fn touching_rects_share_component() {
        let mut g = PaintGrid::new();
        g.paint_rect_lambda(Rect::new(0, 0, 2, 1));
        g.paint_rect_lambda(Rect::new(2, 0, 4, 1)); // shares the x=2λ edge
        let (label, count) = g.components();
        assert_eq!(count, 1);
        assert_eq!(label[&(0, 0)], label[&(16, 4)]);
    }

    #[test]
    fn half_lambda_gap_is_two_components() {
        // The regression behind the quarter grid: shapes 0.5λ apart
        // (e.g. a rail edge at 23.5λ and a pad at 24λ) must NOT merge.
        let mut g = PaintGrid::new();
        g.paint_rect_quarter(Rect::new(0, 0, 20, 94)); // top edge at 23.5λ
        g.paint_rect_quarter(Rect::new(0, 96, 20, 120)); // bottom at 24λ
        let (_, count) = g.components();
        assert_eq!(count, 2);
    }

    #[test]
    fn separated_rects_are_two_components() {
        let mut g = PaintGrid::new();
        g.paint_rect_lambda(Rect::new(0, 0, 1, 1));
        g.paint_rect_lambda(Rect::new(3, 0, 4, 1));
        let (_, count) = g.components();
        assert_eq!(count, 2);
    }

    #[test]
    fn blocking_splits_a_wire() {
        let mut g = PaintGrid::new();
        g.paint_rect_lambda(Rect::new(0, 0, 10, 0));
        g.block_rect_quarter(Rect::new(20, -2, 22, 2));
        let (label, count) = g.components();
        assert_eq!(count, 2);
        assert_ne!(label[&(0, 0)], label[&(40, 0)]);
        assert!(!g.conducts((20, 0)));
    }

    #[test]
    fn anchor_scales_by_four() {
        assert_eq!(PaintGrid::anchor(Point::new(3, 5)), (12, 20));
    }
}
