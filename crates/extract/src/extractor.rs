//! The extraction pass: Sticks elements to an electrical netlist.

use crate::grid::PaintGrid;
use crate::netlist::{ExtractError, ExtractedDevice, Net, NetId, Netlist};
use riot_geom::{Layer, Point, Rect, Transform};
use riot_sticks::{ContactKind, SticksCell};
use std::collections::HashMap;

/// The conducting layers extraction cares about.
const LAYERS: [Layer; 3] = [Layer::Diffusion, Layer::Poly, Layer::Metal];

/// Extracts the connectivity of a symbolic cell.
///
/// Wires, device bodies and contact landing pads become conductors;
/// transistor channels cut the diffusion, so the two sides of a switch
/// are distinct nets; contacts merge layers; pins and device terminals
/// attach to the nets under them.
///
/// # Errors
///
/// [`ExtractError::InvalidCell`] when the cell fails validation,
/// [`ExtractError::FloatingPin`] /
/// [`ExtractError::FloatingDeviceTerminal`] for elements over empty
/// space.
pub fn extract(cell: &SticksCell) -> Result<Netlist, ExtractError> {
    extract_with_probes(cell, &[])
}

/// Like [`extract`], with extra named **probe points** attached as
/// pins: `(name, lambda position, layer)`. Probes reach internal nets
/// (power rails of instances deep inside a flattened assembly) that the
/// cell's own pins cannot name.
///
/// # Errors
///
/// As [`extract`]; a probe over empty space is a
/// [`ExtractError::FloatingPin`] under its probe name.
pub fn extract_with_probes(
    cell: &SticksCell,
    probes: &[(String, Point, Layer)],
) -> Result<Netlist, ExtractError> {
    cell.validate()
        .map_err(|e| ExtractError::InvalidCell(e.to_string()))?;

    let mut grids: HashMap<Layer, PaintGrid> =
        LAYERS.iter().map(|&l| (l, PaintGrid::new())).collect();

    // Wires.
    for w in cell.wires() {
        let Some(grid) = grids.get_mut(&w.layer) else {
            continue; // implant/glass wires carry no signal
        };
        for (a, b) in w.path.segments() {
            let base = Rect::new(4 * a.x, 4 * a.y, 4 * b.x, 4 * b.y);
            grid.paint_rect_quarter(base.inflated(2 * w.width));
        }
    }

    // Devices: gate poly, diffusion body, channel cut.
    for d in cell.devices() {
        let t = Transform::new(d.orient, d.position);
        let gate = t.apply_rect(Rect::new(-1, -3, 1, 3));
        let diff = t.apply_rect(Rect::new(-3, -1, 3, 1));
        let channel = t.apply_rect(Rect::new(-1, -1, 1, 1));
        grids
            .get_mut(&Layer::Poly)
            .expect("poly grid")
            .paint_rect_lambda(gate);
        let dgrid = grids.get_mut(&Layer::Diffusion).expect("diff grid");
        dgrid.paint_rect_lambda(diff);
        dgrid.block_rect_quarter(Rect::new(
            4 * channel.x0,
            4 * channel.y0,
            4 * channel.x1,
            4 * channel.y1,
        ));
    }

    // Contacts: landing pads on both joined layers.
    for c in cell.contacts() {
        let pad = Rect::from_center(c.position, 4, 4);
        let (a, b) = c.kind.layers();
        for layer in [a, b] {
            grids
                .get_mut(&layer)
                .expect("routable layer grid")
                .paint_rect_lambda(pad);
        }
        let _ = matches!(c.kind, ContactKind::Buried);
    }

    // Per-layer components, then a union-find across layers.
    let mut labels: HashMap<Layer, HashMap<(i64, i64), usize>> = HashMap::new();
    let mut offsets: HashMap<Layer, usize> = HashMap::new();
    let mut total = 0usize;
    for &layer in &LAYERS {
        let (label, count) = grids[&layer].components();
        offsets.insert(layer, total);
        total += count;
        labels.insert(layer, label);
    }
    let mut uf = UnionFind::new(total);

    let comp_at = |layer: Layer, p: Point| -> Option<usize> {
        labels[&layer]
            .get(&PaintGrid::anchor(p))
            .map(|&c| offsets[&layer] + c)
    };

    for c in cell.contacts() {
        let (a, b) = c.kind.layers();
        if let (Some(x), Some(y)) = (comp_at(a, c.position), comp_at(b, c.position)) {
            uf.union(x, y);
        }
    }

    // Resolve nets.
    let mut net_ids: HashMap<usize, usize> = HashMap::new();
    let mut nets: Vec<Net> = Vec::new();
    let mut net_of = |root: usize, nets: &mut Vec<Net>| -> NetId {
        let next = nets.len();
        let id = *net_ids.entry(root).or_insert_with(|| {
            nets.push(Net::default());
            next
        });
        NetId(id)
    };

    // Pins, then probe points.
    let mut pin_results: Vec<(String, NetId)> = Vec::new();
    for pin in cell.pins() {
        let comp = comp_at(pin.layer, pin.position)
            .ok_or_else(|| ExtractError::FloatingPin(pin.name.clone()))?;
        let root = uf.find(comp);
        let id = net_of(root, &mut nets);
        pin_results.push((pin.name.clone(), id));
    }
    for (name, position, layer) in probes {
        let comp =
            comp_at(*layer, *position).ok_or_else(|| ExtractError::FloatingPin(name.clone()))?;
        let root = uf.find(comp);
        let id = net_of(root, &mut nets);
        pin_results.push((name.clone(), id));
    }

    // Device terminals.
    let mut devices = Vec::new();
    for (i, d) in cell.devices().iter().enumerate() {
        let t = Transform::new(d.orient, d.position);
        let gate_comp = comp_at(Layer::Poly, t.apply(Point::ORIGIN)).ok_or(
            ExtractError::FloatingDeviceTerminal {
                device: i,
                terminal: "gate",
            },
        )?;
        let source_comp = comp_at(Layer::Diffusion, t.apply(Point::new(-2, 0))).ok_or(
            ExtractError::FloatingDeviceTerminal {
                device: i,
                terminal: "source",
            },
        )?;
        let drain_comp = comp_at(Layer::Diffusion, t.apply(Point::new(2, 0))).ok_or(
            ExtractError::FloatingDeviceTerminal {
                device: i,
                terminal: "drain",
            },
        )?;
        let gate = net_of(uf.find(gate_comp), &mut nets);
        let source = net_of(uf.find(source_comp), &mut nets);
        let drain = net_of(uf.find(drain_comp), &mut nets);
        devices.push(ExtractedDevice {
            kind: d.kind,
            gate,
            source,
            drain,
        });
    }

    for (name, id) in pin_results {
        nets[id.index()].pins.push(name);
    }

    Ok(Netlist { nets, devices })
}

/// Minimal union-find.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::Side;
    use riot_sticks::{parse, Pin, SymWire};

    #[test]
    fn straight_wire_joins_its_pins() {
        let cell = parse(
            "sticks w\nbbox 0 0 10 4\npin A left NM 0 2 3\npin B right NM 10 2 3\nwire NM 3 0 2 10 2\nend\n",
        )
        .unwrap();
        let nl = extract(&cell).unwrap();
        assert!(nl.connected("A", "B"));
        assert_eq!(nl.net_count(), 1);
    }

    #[test]
    fn different_layers_do_not_join_without_contact() {
        let cell = parse(
            "sticks x\nbbox 0 0 10 4\npin A left NM 0 2 3\npin B right NP 10 2 2\nwire NM 3 0 2 10 2\nwire NP 2 0 2 10 2\nend\n",
        )
        .unwrap();
        let nl = extract(&cell).unwrap();
        assert!(!nl.connected("A", "B"));
        assert_eq!(nl.net_count(), 2);
    }

    #[test]
    fn contact_joins_layers() {
        let cell = parse(
            "sticks x\nbbox 0 0 10 4\npin A left NM 0 2 3\npin B right NP 10 2 2\nwire NM 3 0 2 10 2\nwire NP 2 0 2 10 2\ncontact mp 5 2\nend\n",
        )
        .unwrap();
        let nl = extract(&cell).unwrap();
        assert!(nl.connected("A", "B"));
    }

    #[test]
    fn channel_cuts_diffusion() {
        // A diffusion wire through a transistor channel is two nets.
        let cell = parse(
            "sticks t\nbbox 0 0 20 10\npin S left ND 0 5 2\npin D right ND 20 5 2\nwire ND 2 0 5 20 5\nwire NP 2 10 0 10 5\npin G bottom NP 10 0 2\ndev enh 10 5\nend\n",
        )
        .unwrap();
        let nl = extract(&cell).unwrap();
        assert!(!nl.connected("S", "D"), "channel must cut the wire");
        assert_eq!(nl.devices().len(), 1);
        let d = nl.devices()[0];
        assert_eq!(nl.net_of_pin("G"), Some(d.gate));
        let s = nl.net_of_pin("S").unwrap();
        let dd = nl.net_of_pin("D").unwrap();
        assert!((d.source == s && d.drain == dd) || (d.source == dd && d.drain == s));
    }

    #[test]
    fn floating_pin_detected() {
        let mut cell = SticksCell::new("f", Rect::new(0, 0, 10, 10));
        cell.push_pin(Pin {
            name: "X".into(),
            side: Side::Left,
            layer: Layer::Metal,
            position: Point::new(0, 5),
            width: 3,
        });
        assert!(matches!(
            extract(&cell),
            Err(ExtractError::FloatingPin(name)) if name == "X"
        ));
    }

    #[test]
    fn crossing_wires_on_one_layer_connect() {
        let mut cell = SticksCell::new("c", Rect::new(0, 0, 10, 10));
        for pts in [
            [Point::new(0, 5), Point::new(10, 5)],
            [Point::new(5, 0), Point::new(5, 10)],
        ] {
            cell.push_wire(SymWire {
                layer: Layer::Metal,
                width: 3,
                path: riot_geom::Path::from_points(pts).unwrap(),
            });
        }
        cell.push_pin(Pin {
            name: "A".into(),
            side: Side::Left,
            layer: Layer::Metal,
            position: Point::new(0, 5),
            width: 3,
        });
        cell.push_pin(Pin {
            name: "B".into(),
            side: Side::Top,
            layer: Layer::Metal,
            position: Point::new(5, 10),
            width: 3,
        });
        let nl = extract(&cell).unwrap();
        assert!(nl.connected("A", "B"));
    }
}
