//! A three-valued switch-level NMOS simulator over extracted netlists.
//!
//! The model of the era: enhancement transistors are switches closed
//! when their gate is high; depletion transistors conduct always (the
//! pull-up loads); a path to ground dominates a path to supply
//! (ratioed NMOS logic). Gate values feed back, so evaluation iterates
//! to a fixpoint — enough for the combinational cells Riot assembles.

use crate::netlist::{NetId, Netlist};
use riot_sticks::DeviceKind;
use std::collections::VecDeque;
use std::fmt;

/// A three-valued signal level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Driven low (ground path).
    Low,
    /// Driven/pulled high.
    High,
    /// Not determined.
    #[default]
    Unknown,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Low => "0",
            Level::High => "1",
            Level::Unknown => "X",
        })
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An assignment names a pin the netlist does not have.
    UnknownPin(String),
    /// Two assignments drive one net to different levels.
    ConflictingDrivers {
        /// The twice-driven net.
        net: NetId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownPin(p) => write!(f, "no pin `{p}` in the netlist"),
            SimError::ConflictingDrivers { net } => {
                write!(f, "{net} driven to both levels")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A steady-state solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult<'a> {
    netlist: &'a Netlist,
    levels: Vec<Level>,
}

impl SimResult<'_> {
    /// The level of a net.
    pub fn net(&self, id: NetId) -> Level {
        self.levels[id.index()]
    }

    /// The level at a named pin ([`Level::Unknown`] for unknown pins).
    pub fn pin(&self, name: &str) -> Level {
        self.netlist
            .net_of_pin(name)
            .map(|id| self.net(id))
            .unwrap_or(Level::Unknown)
    }

    /// All net levels, indexed by net.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }
}

/// Solves the netlist with the given pin assignments (inputs **and**
/// rails — name the power pins `High` and ground pins `Low`).
///
/// # Errors
///
/// [`SimError::UnknownPin`] / [`SimError::ConflictingDrivers`].
pub fn simulate<'a>(
    netlist: &'a Netlist,
    assignments: &[(&str, Level)],
) -> Result<SimResult<'a>, SimError> {
    let n = netlist.net_count();
    let mut fixed: Vec<Option<Level>> = vec![None; n];
    for (pin, level) in assignments {
        let id = netlist
            .net_of_pin(pin)
            .ok_or_else(|| SimError::UnknownPin((*pin).to_owned()))?;
        match fixed[id.index()] {
            Some(existing) if existing != *level => {
                return Err(SimError::ConflictingDrivers { net: id })
            }
            _ => fixed[id.index()] = Some(*level),
        }
    }

    let mut levels: Vec<Level> = fixed.iter().map(|f| f.unwrap_or(Level::Unknown)).collect();

    // Iterate: channel conduction depends on gate levels, which depend
    // on conduction. The netlist is finite, so n+1 rounds suffice for
    // feed-forward logic; loop until stable with that bound.
    for _ in 0..=n {
        let reach_low = reach(netlist, &levels, &fixed, Level::Low);
        let reach_high = reach(netlist, &levels, &fixed, Level::High);
        let mut next = levels.clone();
        for i in 0..n {
            next[i] = match fixed[i] {
                Some(l) => l,
                None => {
                    if reach_low[i] {
                        Level::Low // ground paths dominate (ratioed NMOS)
                    } else if reach_high[i] {
                        Level::High
                    } else {
                        Level::Unknown
                    }
                }
            };
        }
        if next == levels {
            break;
        }
        levels = next;
    }

    Ok(SimResult { netlist, levels })
}

/// Nets reachable from any net fixed at `from` through conducting
/// channels.
fn reach(netlist: &Netlist, levels: &[Level], fixed: &[Option<Level>], from: Level) -> Vec<bool> {
    let n = netlist.net_count();
    let mut seen = vec![false; n];
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| fixed[i] == Some(from)).collect();
    for &i in &queue {
        seen[i] = true;
    }
    while let Some(i) = queue.pop_front() {
        // Externally-driven nets are sources, not conduits: a path may
        // end at the supply rail but never continue through it into
        // another gate's pull-up.
        if fixed[i].is_some() && fixed[i] != Some(from) {
            continue;
        }
        for d in netlist.devices() {
            let conducting = match d.kind {
                DeviceKind::Depletion => true,
                DeviceKind::Enhancement => levels[d.gate.index()] == Level::High,
            };
            if !conducting {
                continue;
            }
            let (s, t) = (d.source.index(), d.drain.index());
            let other = if s == i {
                t
            } else if t == i {
                s
            } else {
                continue;
            };
            if !seen[other] {
                seen[other] = true;
                queue.push_back(other);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::extract;

    fn rails(extra: &[(&'static str, Level)]) -> Vec<(&'static str, Level)> {
        let mut v = vec![("PWRL", Level::High), ("GNDL", Level::Low)];
        v.extend_from_slice(extra);
        v
    }

    #[test]
    fn nand_truth_table() {
        let nl = extract(&riot_cells::nand2()).unwrap();
        for (a, b, expect) in [
            (Level::Low, Level::Low, Level::High),
            (Level::Low, Level::High, Level::High),
            (Level::High, Level::Low, Level::High),
            (Level::High, Level::High, Level::Low),
        ] {
            let r = simulate(&nl, &rails(&[("A", a), ("B", b)])).unwrap();
            assert_eq!(r.pin("OUT"), expect, "NAND({a}, {b})");
        }
    }

    #[test]
    fn nor_truth_table() {
        // `or2` carries the paper's cell name; its NMOS topology is a
        // NOR (parallel pull-downs) — see the cells crate docs.
        let nl = extract(&riot_cells::or2()).unwrap();
        for (a, b, expect) in [
            (Level::Low, Level::Low, Level::High),
            (Level::Low, Level::High, Level::Low),
            (Level::High, Level::Low, Level::Low),
            (Level::High, Level::High, Level::Low),
        ] {
            let r = simulate(&nl, &rails(&[("A", a), ("B", b)])).unwrap();
            assert_eq!(r.pin("OUT"), expect, "NOR({a}, {b})");
        }
    }

    #[test]
    fn unknown_inputs_leave_output_pulled_up_or_unknown() {
        let nl = extract(&riot_cells::nand2()).unwrap();
        // A=0 cuts the series chain regardless of B: OUT pulls high.
        let r = simulate(&nl, &rails(&[("A", Level::Low)])).unwrap();
        assert_eq!(r.pin("OUT"), Level::High);
    }

    #[test]
    fn conflicting_rails_rejected() {
        let nl = extract(&riot_cells::nand2()).unwrap();
        // PWRL and PWRR share the rail net.
        let err = simulate(&nl, &[("PWRL", Level::High), ("PWRR", Level::Low)]).unwrap_err();
        assert!(matches!(err, SimError::ConflictingDrivers { .. }));
    }

    #[test]
    fn unknown_pin_rejected() {
        let nl = extract(&riot_cells::nand2()).unwrap();
        assert!(matches!(
            simulate(&nl, &[("NOPE", Level::High)]),
            Err(SimError::UnknownPin(_))
        ));
    }

    #[test]
    fn rails_are_shared_nets() {
        let nl = extract(&riot_cells::nand2()).unwrap();
        assert!(nl.connected("PWRL", "PWRR"));
        assert!(nl.connected("GNDL", "GNDR"));
        assert!(!nl.connected("PWRL", "GNDL"));
    }
}
