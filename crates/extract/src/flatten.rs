//! Flattening an assembled composition cell into one symbolic cell, so
//! the extractor and simulator can verify the *assembly* — that the
//! abutments, routes and stretches Riot made really produce the
//! intended circuit.

use riot_core::{CellKind, LeafSource, Library};
use riot_geom::{Path, Point, Rect, Transform, LAMBDA};
use riot_sticks::{Contact, Device, Pin, SticksCell, SymWire};
use std::fmt;

/// Flattening failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// The named cell is not in the library.
    UnknownCell(String),
    /// The target must be a composition cell.
    NotComposition(String),
    /// A leaf defined only as CIF mask geometry cannot join a symbolic
    /// flatten (the paper's pads are like this).
    CifLeaf(String),
    /// An instance placement is off the lambda grid.
    OffGrid {
        /// The offending instance.
        instance: String,
        /// Its offset in centimicrons.
        offset: Point,
    },
    /// The hierarchy is deeper than 64 levels (a cycle).
    TooDeep,
    /// A composition connector does not sit on the bounding box.
    InteriorConnector(String),
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnknownCell(n) => write!(f, "no cell `{n}`"),
            FlattenError::NotComposition(n) => write!(f, "cell `{n}` is not a composition"),
            FlattenError::CifLeaf(n) => {
                write!(f, "leaf `{n}` is CIF-only and cannot flatten symbolically")
            }
            FlattenError::OffGrid { instance, offset } => {
                write!(f, "instance `{instance}` placed off-grid at {offset}")
            }
            FlattenError::TooDeep => f.write_str("hierarchy too deep (cycle?)"),
            FlattenError::InteriorConnector(n) => {
                write!(f, "connector `{n}` is interior; cannot become a pin")
            }
        }
    }
}

impl std::error::Error for FlattenError {}

/// Flattens a finished composition cell into a single [`SticksCell`]:
/// every symbolic element of every (transitively) instantiated Sticks
/// leaf, transformed into the composition's lambda coordinates, with
/// the composition's connectors as the pins.
///
/// # Errors
///
/// See [`FlattenError`] — notably [`FlattenError::CifLeaf`] when the
/// assembly instantiates mask-only leaves (pads).
pub fn flatten_to_sticks(lib: &Library, cell_name: &str) -> Result<SticksCell, FlattenError> {
    let id = lib
        .find(cell_name)
        .ok_or_else(|| FlattenError::UnknownCell(cell_name.to_owned()))?;
    let cell = lib
        .cell(id)
        .map_err(|_| FlattenError::UnknownCell(cell_name.to_owned()))?;
    if !cell.is_composition() {
        return Err(FlattenError::NotComposition(cell_name.to_owned()));
    }
    let bbox_cm = cell.bbox;
    let bbox = Rect::new(
        div_lambda(bbox_cm.x0)?,
        div_lambda(bbox_cm.y0)?,
        div_lambda(bbox_cm.x1)?,
        div_lambda(bbox_cm.y1)?,
    );
    let mut out = SticksCell::new(format!("{cell_name}_flat"), bbox);
    walk(lib, id, Transform::IDENTITY, 0, &mut out)?;
    for conn in &cell.connectors {
        let position = Point::new(div_lambda(conn.location.x)?, div_lambda(conn.location.y)?);
        let side = bbox
            .side_of(position)
            .ok_or_else(|| FlattenError::InteriorConnector(conn.name.clone()))?;
        out.push_pin(Pin {
            name: conn.name.clone(),
            side,
            layer: conn.layer,
            position,
            width: (conn.width / LAMBDA).max(1),
        });
    }
    Ok(out)
}

fn div_lambda(v: i64) -> Result<i64, FlattenError> {
    if v % LAMBDA != 0 {
        return Err(FlattenError::OffGrid {
            instance: "<coordinate>".into(),
            offset: Point::new(v, 0),
        });
    }
    Ok(v / LAMBDA)
}

fn walk(
    lib: &Library,
    id: riot_core::CellId,
    outer: Transform, // in lambda units
    depth: usize,
    out: &mut SticksCell,
) -> Result<(), FlattenError> {
    if depth > 64 {
        return Err(FlattenError::TooDeep);
    }
    let cell = lib.cell(id).map_err(|_| FlattenError::TooDeep)?;
    match &cell.kind {
        CellKind::Leaf(LeafSource::Sticks(sticks)) => {
            emit(sticks, outer, out);
            Ok(())
        }
        CellKind::Leaf(LeafSource::Cif { .. }) => Err(FlattenError::CifLeaf(cell.name.clone())),
        CellKind::Composition(comp) => {
            for (_, inst) in comp.instances() {
                if inst.transform.offset.x % LAMBDA != 0 || inst.transform.offset.y % LAMBDA != 0 {
                    return Err(FlattenError::OffGrid {
                        instance: inst.name.clone(),
                        offset: inst.transform.offset,
                    });
                }
                for c in 0..inst.cols {
                    for r in 0..inst.rows {
                        let t_cm = inst.element_transform(c, r);
                        let t_lambda = Transform::new(
                            t_cm.orient,
                            Point::new(div_lambda(t_cm.offset.x)?, div_lambda(t_cm.offset.y)?),
                        );
                        walk(lib, inst.cell, t_lambda.then(outer), depth + 1, out)?;
                    }
                }
            }
            Ok(())
        }
    }
}

fn emit(sticks: &SticksCell, t: Transform, out: &mut SticksCell) {
    for w in sticks.wires() {
        let pts: Vec<Point> = w.path.points().iter().map(|&p| t.apply(p)).collect();
        out.push_wire(SymWire {
            layer: w.layer,
            width: w.width,
            path: Path::from_points(pts).expect("Manhattan transform keeps Manhattan paths"),
        });
    }
    for d in sticks.devices() {
        out.push_device(Device {
            kind: d.kind,
            position: t.apply(d.position),
            orient: d.orient.then(t.orient),
        });
    }
    for c in sticks.contacts() {
        out.push_contact(Contact {
            kind: c.kind,
            position: t.apply(c.position),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_core::{AbutOptions, Editor};
    use riot_geom::LAMBDA;

    #[test]
    fn flattens_an_abutted_pair() {
        let mut lib = Library::new();
        let sr = lib.add_sticks_cell(riot_cells::shift_register()).unwrap();
        let mut ed = Editor::open(&mut lib, "PAIR").unwrap();
        let a = ed.create_instance(sr).unwrap();
        let b = ed.create_instance(sr).unwrap();
        ed.translate_instance(b, Point::new(60 * LAMBDA, 0))
            .unwrap();
        ed.connect(b, "SI", a, "SO").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        ed.finish().unwrap();
        drop(ed);
        let flat = flatten_to_sticks(&lib, "PAIR").unwrap();
        flat.validate().unwrap();
        let one = riot_cells::shift_register();
        assert_eq!(flat.wires().len(), 2 * one.wires().len());
        assert_eq!(flat.devices().len(), 2 * one.devices().len());
        // The serial chain is continuous across the abutment.
        let nl = crate::extract(&flat).unwrap();
        assert!(nl.connected("SI", "SO"));
    }

    #[test]
    fn rejects_cif_leaves() {
        let mut lib = Library::new();
        lib.load_cif(&riot_cells::pads_cif()).unwrap();
        let pad = lib.find("padin").unwrap();
        let mut ed = Editor::open(&mut lib, "P").unwrap();
        ed.create_instance(pad).unwrap();
        ed.finish().unwrap();
        drop(ed);
        assert!(matches!(
            flatten_to_sticks(&lib, "P"),
            Err(FlattenError::CifLeaf(_))
        ));
    }

    #[test]
    fn rejects_unknown_and_leaf_targets() {
        let mut lib = Library::new();
        lib.add_sticks_cell(riot_cells::nand2()).unwrap();
        assert!(matches!(
            flatten_to_sticks(&lib, "nope"),
            Err(FlattenError::UnknownCell(_))
        ));
        assert!(matches!(
            flatten_to_sticks(&lib, "nand2"),
            Err(FlattenError::NotComposition(_))
        ));
    }

    #[test]
    fn arrays_flatten_every_element() {
        let mut lib = Library::new();
        let sr = lib.add_sticks_cell(riot_cells::shift_register()).unwrap();
        let mut ed = Editor::open(&mut lib, "ARR").unwrap();
        let i = ed.create_instance(sr).unwrap();
        ed.replicate_instance(i, 4, 1).unwrap();
        ed.finish().unwrap();
        drop(ed);
        let flat = flatten_to_sticks(&lib, "ARR").unwrap();
        let one = riot_cells::shift_register();
        assert_eq!(flat.devices().len(), 4 * one.devices().len());
        // Chain continuity across all four elements.
        let nl = crate::extract(&flat).unwrap();
        assert!(nl.connected("SI[0,0]", "SO[3,0]"));
    }
}
