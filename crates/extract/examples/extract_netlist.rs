//! Extract and print the NAND gate's netlist, then simulate it — the
//! "Sticks as input to simulation" path.
//!
//! Run with `cargo run -p riot-extract --example extract_netlist`.

use riot_extract::sim::{simulate, Level};

fn main() {
    let nand = riot_cells::nand2();
    let nl = riot_extract::extract(&nand).expect("nand2 extracts");
    println!("nets:");
    for (i, n) in nl.nets().iter().enumerate() {
        println!("  net{i}: {:?}", n.pins);
    }
    println!("devices:");
    for d in nl.devices() {
        println!("  {d:?}");
    }
    println!("truth table:");
    for (a, b) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        let lv = |v| if v == 1 { Level::High } else { Level::Low };
        let r = simulate(
            &nl,
            &[
                ("PWRL", Level::High),
                ("GNDL", Level::Low),
                ("A", lv(a)),
                ("B", lv(b)),
            ],
        )
        .expect("simulates");
        println!("  NAND({a}, {b}) = {}", r.pin("OUT"));
    }
}
