//! Tier-1 model-based conformance suite: the `riot-check` harness run
//! under plain `cargo test`, at zero and 10% fault-injection rates,
//! plus a regression proving the seeded known-failure is caught and
//! shrinks to a minimal repro.

use riot_check::{run_check, run_commands, shrink, CheckConfig};

const SEEDS: [u64; 3] = [11, 23, 42];
const STEPS: usize = 200;

#[test]
fn conformance_without_faults() {
    for seed in SEEDS {
        let cfg = CheckConfig {
            seed,
            steps: STEPS,
            fault_rate: 0.0,
            demo_bug: false,
        };
        let report = run_check(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.steps, STEPS);
        assert_eq!(report.faults_injected, 0);
        assert!(report.crash_checks >= STEPS / 97);
    }
}

#[test]
fn conformance_under_ten_percent_faults() {
    let mut total_injected = 0;
    for seed in SEEDS {
        let cfg = CheckConfig {
            seed,
            steps: STEPS,
            fault_rate: 0.10,
            demo_bug: false,
        };
        let report = run_check(&cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.steps, STEPS);
        total_injected += report.faults_injected;
    }
    assert!(
        total_injected > 0,
        "a 10% plan over {} steps x {} seeds should inject at least once",
        STEPS,
        SEEDS.len()
    );
}

#[test]
fn demo_bug_fails_and_shrinks_to_minimal_repro() {
    let cfg = CheckConfig {
        seed: 42,
        steps: 400,
        fault_rate: 0.0,
        demo_bug: true,
    };
    let failure = run_check(&cfg).expect_err("the seeded misprediction must be caught");
    let minimal = shrink(&failure.history, |cmds| run_commands(&cfg, cmds).is_err());
    assert!(
        minimal.len() <= 10,
        "expected a <=10-command repro, got {} commands",
        minimal.len()
    );
    // The minimal repro still fails, and removing its only command
    // makes the failure disappear.
    assert!(run_commands(&cfg, &minimal).is_err());
    assert_eq!(minimal.len(), 1, "clearpend-on-empty is a 1-command repro");
    assert!(run_commands(&cfg, &[]).is_ok());
}
