//! End-to-end integration: textual interface, interactive session,
//! composition save/restore, mask export, both display devices and the
//! plotter — a whole Riot working day in one process.

use riot::core::{Editor, Library};
use riot::geom::{Point, LAMBDA};
use riot::ui::textual::Response;
use riot::ui::{GraphicalCommand, InteractiveSession, TextualInterface};

#[test]
fn textual_then_graphical_then_export() {
    let mut env = TextualInterface::new();
    env.put_file("pads.cif", riot::cells::pads_cif());
    env.put_file(
        "sr.st",
        riot::sticks::to_text(&riot::cells::shift_register()),
    );
    env.execute("read pads.cif").unwrap();
    env.execute("read sr.st").unwrap();
    let Response::EnterEditor(cell) = env.execute("edit TOP").unwrap() else {
        panic!("edit must enter the editor");
    };

    // Graphical editing session: build a 4-stage shift register by
    // pointing, then wire a pad to it.
    {
        let ed = Editor::open(env.library_mut(), &cell).unwrap();
        let mut s = InteractiveSession::new(ed, 512, 480);
        s.click_cell("shiftcell").unwrap();
        s.click_command(GraphicalCommand::Create).unwrap();
        s.click_world(Point::new(0, 0)).unwrap();
        let id = s.editor().find_instance("I0").unwrap();
        s.editor_mut().replicate_instance(id, 4, 1).unwrap();
        s.editor_mut().finish().unwrap();
        assert_eq!(s.editor().instances().len(), 1);
    }

    // Save the session, wipe, restore.
    env.execute("write session.comp").unwrap();
    let saved = env.file("session.comp").unwrap().to_owned();
    let mut env2 = TextualInterface::new();
    env2.put_file("pads.cif", riot::cells::pads_cif());
    env2.put_file(
        "sr.st",
        riot::sticks::to_text(&riot::cells::shift_register()),
    );
    env2.put_file("session.comp", saved);
    env2.execute("read pads.cif").unwrap();
    env2.execute("read sr.st").unwrap();
    env2.execute("read session.comp").unwrap();
    assert!(env2.library().find("TOP").is_some());

    // Mask generation and hardcopy.
    env2.execute("writecif TOP chip.cif").unwrap();
    let cif = riot::cif::parse(env2.file("chip.cif").unwrap()).unwrap();
    assert!(!riot::cif::flatten(&cif).unwrap().is_empty());
    env2.execute("plot TOP top.hpgl").unwrap();
    assert!(env2.file("top.hpgl").unwrap().contains("PD"));
}

#[test]
fn both_devices_render_the_filter() {
    let logic = riot::filter::build_logic(4, riot::filter::LogicStyle::Stretched).unwrap();
    let mut lib = logic.lib;
    let ed = Editor::open(&mut lib, &logic.cell).unwrap();
    let list = riot::ui::render::editor_ops(&ed, Default::default()).unwrap();
    for device in [
        riot::graphics::device::charles(),
        riot::graphics::device::gigi(),
    ] {
        let fb = device.render(&list);
        assert!(
            fb.lit_pixels() > 500,
            "{} shows the assembly",
            device.name()
        );
    }
}

#[test]
fn session_journal_survives_ui_editing() {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::nand2()).unwrap();
    let journal_text = {
        let ed = Editor::open(&mut lib, "TOP").unwrap();
        let mut s = InteractiveSession::new(ed, 512, 480);
        s.click_cell("nand2").unwrap();
        s.click_command(GraphicalCommand::Create).unwrap();
        s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA)).unwrap();
        s.click_world(Point::new(60 * LAMBDA, 10 * LAMBDA)).unwrap();
        s.editor().journal().to_text()
    };
    // The journal replays in a fresh library.
    let journal = riot::core::Journal::parse(&journal_text).unwrap();
    let mut lib2 = Library::new();
    lib2.add_sticks_cell(riot::cells::nand2()).unwrap();
    riot::core::replay(&journal, &mut lib2).unwrap();
    let ed = Editor::open(&mut lib2, "TOP").unwrap();
    assert_eq!(ed.instances().len(), 2);
}

#[test]
fn composition_format_closes_over_route_and_stretch_cells() {
    // Route/stretch create new cells mid-session; the composition file
    // must reference them and reload cleanly.
    let logic = riot::filter::build_logic(4, riot::filter::LogicStyle::Routed).unwrap();
    let text = riot::core::compose::save(&logic.lib);
    let mut lib2 = Library::new();
    // Reload every sticks leaf the original session held.
    for (_, cell) in logic.lib.iter() {
        if let Some(sticks) = cell.sticks() {
            lib2.add_sticks_cell(sticks.clone()).unwrap();
        }
    }
    let ids = riot::core::compose::load(&text, &mut lib2).unwrap();
    assert_eq!(ids.len(), 1);
    let report2 = riot::core::measure::measure(&lib2, &logic.cell).unwrap();
    assert_eq!(report2.bbox, logic.report.bbox);
    assert_eq!(report2.routing_area, logic.report.routing_area);
}
