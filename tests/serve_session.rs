//! Acceptance test for the serving layer: four concurrent clients,
//! each pipelining 50 commands into its own session over one TCP
//! server, must see **every** reply — none lost, none misordered, none
//! failed — and every session's WAL must afterwards replay
//! model-equivalently through the `riot-check` reference model.
//!
//! This is the ISSUE acceptance bar stated for `riot-serve`, exercised
//! through the umbrella crate's public `riot::serve` re-export.

use riot::serve::{wal_path, Bind, Client, ReplyBody, RequestBody, ServeConfig, Server};
use riot_core::Journal;
use std::time::Duration;

const CLIENTS: usize = 4;
const COMMANDS: usize = 50;

/// The k-th command for a session: alternating creates and translates,
/// so the stream exercises both journaled outcome kinds.
fn command_line(k: usize) -> String {
    if k.is_multiple_of(2) {
        format!("create nand2 G{}", k / 2)
    } else {
        format!("translate G{} {} 0", k / 2, 4000 + k)
    }
}

#[test]
fn four_pipelined_clients_lose_and_misorder_nothing() {
    let root = std::env::temp_dir().join(format!("riot-serve-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = ServeConfig::new(&root);
    cfg.threads = 2;
    cfg.tick = Duration::from_millis(2);
    let h = Server::start(cfg, &Bind::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = h.addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let session = format!("accept-{c}");
                    let mut cl = Client::connect(&addr).unwrap();
                    cl.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                    let open = cl.request(RequestBody::Open {
                        session: session.clone(),
                        cell: "TOP".to_owned(),
                    });
                    assert!(
                        matches!(open.as_ref().map(|r| &r.body), Ok(ReplyBody::Ok(_))),
                        "{session}: open failed: {open:?}"
                    );

                    // Pipeline the full command stream: send everything,
                    // then collect. The per-shard inbox (256) comfortably
                    // holds one client's 50 in-flight commands.
                    let mut sent = Vec::with_capacity(COMMANDS);
                    for k in 0..COMMANDS {
                        let id = cl
                            .send(RequestBody::Cmd {
                                session: session.clone(),
                                line: command_line(k),
                            })
                            .unwrap();
                        sent.push(id);
                    }
                    let mut got = Vec::with_capacity(COMMANDS);
                    for _ in 0..COMMANDS {
                        let reply = cl.recv().unwrap();
                        assert!(
                            matches!(reply.body, ReplyBody::Ok(_)),
                            "{session}: command {} failed: {:?}",
                            reply.id,
                            reply.body
                        );
                        got.push(reply.id);
                    }
                    // Zero lost (counts match above), zero misordered:
                    // replies arrive in exact submission order.
                    assert_eq!(got, sent, "{session}: replies out of order");

                    // `instance 25` proves exactly the 25 creates landed.
                    assert_eq!(
                        cl.cmd(&session, "create nand2 LAST").unwrap(),
                        format!("instance {}", COMMANDS / 2),
                        "{session}: instance arena drifted"
                    );
                    assert_eq!(cl.close_session(&session).unwrap(), "closed");
                    session
                })
            })
            .collect();
        let sessions: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Every session's WAL is intact and model-equivalent: the
        // riot-check reference model replays each journal in lockstep
        // with a fresh editor and compares every observable axis.
        for session in &sessions {
            let bytes = std::fs::read(wal_path(&root, session)).unwrap();
            let rec = Journal::recover_wal(&bytes);
            assert!(
                rec.is_clean(),
                "{session}: WAL truncated: {:?}",
                rec.corruption
            );
            // edit head + 50 commands + the final `create LAST`.
            assert_eq!(rec.journal.commands().len(), COMMANDS + 2, "{session}");
            let mut lib = riot::serve::standard_library();
            let replayed = riot_check::lockstep_replay(&mut lib, rec.journal.commands())
                .unwrap_or_else(|e| panic!("{session}: diverges from the model: {e}"));
            assert_eq!(replayed, COMMANDS + 2);
        }
    });

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown_server().unwrap();
    h.wait();
    let _ = std::fs::remove_dir_all(root);
}
