//! Property tests at the editor level: random command sequences never
//! panic and core invariants survive any of them.

use proptest::prelude::*;
use riot::core::{AbutOptions, Editor, Library, RouteOptions, StretchOptions};
use riot::geom::{Orientation, Point, LAMBDA};

/// A random editor command, instance references by small index.
#[derive(Debug, Clone)]
enum Cmd {
    Create(u8),
    Translate(u8, i64, i64),
    Orient(u8, usize),
    Replicate(u8, u8, u8),
    Delete(u8),
    Connect(u8, u8),
    Bus(u8, u8),
    Abut(bool),
    Route(bool),
    Stretch,
    Finish,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u8..3).prop_map(Cmd::Create),
        (0u8..6, -40i64..40, -40i64..40).prop_map(|(i, x, y)| Cmd::Translate(i, x, y)),
        (0u8..6, 0usize..8).prop_map(|(i, o)| Cmd::Orient(i, o)),
        (0u8..6, 1u8..4, 1u8..4).prop_map(|(i, c, r)| Cmd::Replicate(i, c, r)),
        (0u8..6).prop_map(Cmd::Delete),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Cmd::Connect(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Cmd::Bus(a, b)),
        prop::bool::ANY.prop_map(Cmd::Abut),
        prop::bool::ANY.prop_map(Cmd::Route),
        Just(Cmd::Stretch),
        Just(Cmd::Finish),
    ]
}

fn cells() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    lib.add_sticks_cell(riot::cells::nand2()).unwrap();
    lib.add_sticks_cell(riot::cells::or2()).unwrap();
    lib
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of commands either succeeds or returns an error —
    /// never panics, and never leaves the editor unusable.
    #[test]
    fn random_sessions_never_panic(cmds in prop::collection::vec(arb_cmd(), 1..25)) {
        let mut lib = cells();
        let menu: Vec<_> = lib.iter().map(|(id, _)| id).collect();
        let mut ed = Editor::open(&mut lib, "FUZZ").unwrap();
        for cmd in cmds {
            let inst = |ed: &Editor<'_>, i: u8| {
                let live = ed.instances();
                if live.is_empty() {
                    None
                } else {
                    Some(live[i as usize % live.len()].0)
                }
            };
            let result: Result<(), riot::core::RiotError> = match cmd {
                Cmd::Create(c) => ed
                    .create_instance(menu[c as usize % menu.len()])
                    .map(|_| ()),
                Cmd::Translate(i, x, y) => match inst(&ed, i) {
                    Some(id) => ed.translate_instance(id, Point::new(x * LAMBDA, y * LAMBDA)),
                    None => Ok(()),
                },
                Cmd::Orient(i, o) => match inst(&ed, i) {
                    Some(id) => ed.orient_instance(id, Orientation::ALL[o % 8]),
                    None => Ok(()),
                },
                Cmd::Replicate(i, c, r) => match inst(&ed, i) {
                    Some(id) => ed.replicate_instance(id, c as u32, r as u32),
                    None => Ok(()),
                },
                Cmd::Delete(i) => match inst(&ed, i) {
                    Some(id) => ed.delete_instance(id),
                    None => Ok(()),
                },
                Cmd::Connect(a, b) => match (inst(&ed, a), inst(&ed, b)) {
                    (Some(x), Some(y)) => {
                        // Pick arbitrary connectors from each.
                        let fc = ed.world_connectors(x).ok().and_then(|v| v.first().cloned());
                        let tc = ed.world_connectors(y).ok().and_then(|v| v.first().cloned());
                        match (fc, tc) {
                            (Some(f), Some(t)) => {
                                ed.connect(x, &f.name, y, &t.name).map(|_| ())
                            }
                            _ => Ok(()),
                        }
                    }
                    _ => Ok(()),
                },
                Cmd::Bus(a, b) => match (inst(&ed, a), inst(&ed, b)) {
                    (Some(x), Some(y)) if x != y => ed.connect_bus(x, y).map(|_| ()),
                    _ => Ok(()),
                },
                Cmd::Abut(overlap) => ed.abut(AbutOptions { overlap }).map(|_| ()),
                Cmd::Route(move_from) => ed
                    .route(RouteOptions {
                        move_from,
                        ..RouteOptions::default()
                    })
                    .map(|_| ()),
                Cmd::Stretch => ed.stretch(StretchOptions::default()).map(|_| ()),
                Cmd::Finish => ed.finish().map(|_| ()),
            };
            // Errors are fine; panics are not (proptest would catch).
            let _ = result;
            // Invariant: pending connections only reference live
            // instances.
            for p in ed.pending().to_vec() {
                prop_assert!(ed.instance(p.from).is_ok());
                prop_assert!(ed.instance(p.to).is_ok());
            }
        }
        // The editor can always finish.
        ed.finish().unwrap();
        let bbox = ed.cell().bbox;
        for (id, _) in ed.instances() {
            prop_assert!(bbox.contains_rect(ed.instance_bbox(id).unwrap()));
        }
    }

    /// After any successful abut, the first pending pair coincides.
    #[test]
    fn abut_always_lands_first_connection(dx in 5i64..80, dy in -20i64..20) {
        let mut lib = cells();
        let nand = lib.find("nand2").unwrap();
        let mut ed = Editor::open(&mut lib, "AB").unwrap();
        let a = ed.create_instance(nand).unwrap();
        let b = ed.create_instance(nand).unwrap();
        ed.translate_instance(b, Point::new(dx * LAMBDA, dy * LAMBDA)).unwrap();
        if ed.connect(b, "PWRL", a, "PWRR").is_ok() {
            ed.abut(AbutOptions::default()).unwrap();
            let f = ed.world_connector(b, "PWRL").unwrap();
            let t = ed.world_connector(a, "PWRR").unwrap();
            prop_assert_eq!(f.location, t.location);
        }
    }
}
