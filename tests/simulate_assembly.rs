//! Electrical verification of the assembly operations: a gate tree
//! (two NANDs feeding the OR/NOR) is assembled by routing and by
//! stretching, flattened back to one symbolic cell, extracted, and
//! switch-level simulated for every input combination. Both assemblies
//! must compute the same function — the strongest possible form of the
//! paper's "guaranteeing that connections are made correctly".

use riot::core::{AbutOptions, Editor, Library, RouteOptions, StretchOptions};
use riot::extract::sim::{simulate, Level};
use riot::extract::{extract, flatten_to_sticks};
use riot::filter::LogicStyle;
use riot::geom::{Point, Side, LAMBDA};

/// Builds the tree: nand0 | nand1 side by side, or2 on top, output
/// brought out. Returns the library with composition `TREE`.
fn build_tree(style: LogicStyle) -> Library {
    let mut lib = Library::new();
    let nand = lib.add_sticks_cell(riot::cells::nand2()).unwrap();
    let or = lib.add_sticks_cell(riot::cells::or2()).unwrap();
    {
        let mut ed = Editor::open(&mut lib, "TREE").unwrap();
        let n0 = ed.create_instance(nand).unwrap();
        let n1 = ed.create_instance(nand).unwrap();
        ed.translate_instance(n1, Point::new(40 * LAMBDA, 5 * LAMBDA))
            .unwrap();
        ed.connect(n1, "PWRL", n0, "PWRR").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        let o = ed.create_instance(or).unwrap();
        ed.translate_instance(o, Point::new(0, 60 * LAMBDA))
            .unwrap();
        ed.connect(o, "A", n0, "OUT").unwrap();
        ed.connect(o, "B", n1, "OUT").unwrap();
        match style {
            LogicStyle::Routed => {
                ed.route(RouteOptions::default()).unwrap();
            }
            LogicStyle::Stretched => {
                ed.stretch(StretchOptions::default()).unwrap();
            }
        }
        ed.bring_out(o, &["OUT"], Side::Top).unwrap();
        ed.finish().unwrap();
        assert!(ed.warnings().is_empty(), "warnings: {:?}", ed.warnings());
    }
    lib
}

/// Rail probe assignments for every gate instance in the tree.
fn rail_probes(lib: &Library) -> Vec<(String, Point, riot::geom::Layer, Level)> {
    let mut probes = Vec::new();
    let mut ed_lib = lib.clone();
    let ed = Editor::open(&mut ed_lib, "TREE").unwrap();
    for (id, inst) in ed.instances() {
        if inst.name.starts_with("route") {
            continue;
        }
        for (conn, level) in [("PWRL", Level::High), ("GNDL", Level::Low)] {
            if let Ok(wc) = ed.world_connector(id, conn) {
                probes.push((
                    format!("{}_{}", inst.name, conn),
                    Point::new(wc.location.x / LAMBDA, wc.location.y / LAMBDA),
                    wc.layer,
                    level,
                ));
            }
        }
    }
    probes
}

fn tree_function(style: LogicStyle) -> Vec<Level> {
    let lib = build_tree(style);
    let flat = flatten_to_sticks(&lib, "TREE").unwrap();
    flat.validate().unwrap();
    let probes = rail_probes(&lib);
    let probe_pins: Vec<(String, Point, riot::geom::Layer)> = probes
        .iter()
        .map(|(n, p, l, _)| (n.clone(), *p, *l))
        .collect();
    let nl = riot::extract::extractor::extract_with_probes(&flat, &probe_pins).unwrap();
    // Input pins: the nand A/B pins promoted by finish() — names A, B
    // for nand0 and primed versions for nand1.
    let out_pin = nl
        .nets()
        .iter()
        .flat_map(|n| n.pins.iter())
        .find(|p| p.starts_with("OUT"))
        .expect("brought-out output pin")
        .clone();
    let mut results = Vec::new();
    for bits in 0..16u32 {
        let lv = |b: u32| {
            if (bits >> b) & 1 == 1 {
                Level::High
            } else {
                Level::Low
            }
        };
        let mut assigns: Vec<(&str, Level)> =
            vec![("A", lv(0)), ("B", lv(1)), ("A'", lv(2)), ("B'", lv(3))];
        for (name, _, _, level) in &probes {
            assigns.push((name.as_str(), *level));
        }
        let r = simulate(&nl, &assigns).unwrap();
        results.push(r.pin(&out_pin));
    }
    results
}

#[test]
fn assembled_tree_computes_nor_of_nands_when_stretched() {
    let got = tree_function(LogicStyle::Stretched);
    for bits in 0..16u32 {
        let a = bits & 1 == 1;
        let b = (bits >> 1) & 1 == 1;
        let c = (bits >> 2) & 1 == 1;
        let d = (bits >> 3) & 1 == 1;
        let expect = a && b && c && d; // NOR of the two NANDs: both NAND outputs low
        let expect = if expect { Level::High } else { Level::Low };
        assert_eq!(
            got[bits as usize], expect,
            "stretched tree at inputs {a} {b} {c} {d}"
        );
    }
}

#[test]
fn routed_and_stretched_assemblies_compute_the_same_function() {
    let routed = tree_function(LogicStyle::Routed);
    let stretched = tree_function(LogicStyle::Stretched);
    assert_eq!(
        routed, stretched,
        "both connection styles must implement the same circuit"
    );
}

#[test]
fn abutted_shift_chain_extracts_as_one_serial_net() {
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let mut ed = Editor::open(&mut lib, "CHAIN").unwrap();
    let i = ed.create_instance(sr).unwrap();
    ed.replicate_instance(i, 6, 1).unwrap();
    ed.finish().unwrap();
    drop(ed);
    let flat = flatten_to_sticks(&lib, "CHAIN").unwrap();
    let nl = extract(&flat).unwrap();
    // The serial input reaches the far-end serial output through five
    // abutted stage boundaries.
    assert!(nl.connected("SI[0,0]", "SO[5,0]"));
    // Rails run the full row.
    assert!(nl.connected("PWRL[0,0]", "PWRR[5,0]"));
    assert!(!nl.connected("PWRL[0,0]", "GNDL[0,0]"));
}
