//! Golden-file pin of a routed cell: a small layer-mixed channel with
//! one obstacle, solved by the grid router and emitted as mask CIF.
//! The fixture is checked in byte-identically, so any change to the
//! cost model, rasterization, or CIF emission shows up as a diff —
//! intentional changes rerun the ignored regenerator below.

use riot::geom::{Layer, Rect};
use riot::route::{grid_route, RouteProblem, Terminal};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/grid_route.cif")
}

/// The pinned problem: four nets, two of which change layers (river
/// router territory ends here), detouring around a metal block.
fn golden_route_cif() -> String {
    let problem = RouteProblem::new(
        vec![
            Terminal::new("a", 10, Layer::Poly, 2),
            Terminal::new("b", 22, Layer::Metal, 3),
            Terminal::new("c", 34, Layer::Diffusion, 2),
            Terminal::new("d", 46, Layer::Metal, 3),
        ],
        vec![
            Terminal::new("a", 12, Layer::Metal, 3),
            Terminal::new("b", 22, Layer::Metal, 3),
            Terminal::new("c", 32, Layer::Poly, 2),
            Terminal::new("d", 48, Layer::Metal, 3),
        ],
    );
    let obstacles = vec![(Layer::Metal, Rect::new(16, 12, 28, 15))];
    let route = grid_route(&problem, &obstacles).expect("golden problem routes");
    let cell = route.to_sticks_cell("grid_golden");
    riot::cif::write::to_text(&riot::sticks::mask::to_cif_file(&cell))
}

#[test]
fn routed_cell_matches_golden_cif() {
    let expected = std::fs::read_to_string(fixture_path()).expect("examples/grid_route.cif");
    let actual = golden_route_cif();
    assert_eq!(
        actual, expected,
        "grid route CIF diverged from the golden fixture; if the \
         change is intentional run the ignored regenerate_fixture test"
    );
}

#[test]
#[ignore = "rewrites the checked-in fixture"]
fn regenerate_fixture() {
    std::fs::write(fixture_path(), golden_route_cif()).expect("write fixture");
}
