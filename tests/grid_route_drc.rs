//! Differential properties of the grid maze router, checked through
//! the *other* subsystems: every route it emits must pass the real
//! mask-level DRC (`riot::drc`), clear every obstacle it was given
//! (`grid::verify_clearance`), and come out bit-identical at any
//! planner thread count.

use proptest::prelude::*;
use riot::drc::RuleSet;
use riot::geom::{par, Layer, Rect};
use riot::route::{grid, grid_route, river_route, GridRoute, RouteProblem, Terminal};

/// Layer-appropriate terminal width (metal's minimum is 3λ).
fn width_for(layer: Layer) -> i64 {
    if layer == Layer::Metal {
        3
    } else {
        2
    }
}

/// Builds an order-preserving channel from per-net (gap, bottom-layer,
/// top-layer, jog) picks. Layers come from `Layer::ROUTABLE` indices,
/// so nets freely mismatch layers — the case the river router rejects.
fn channel(nets: &[(i64, u8, u8, i64)]) -> RouteProblem {
    let mut bottom = Vec::with_capacity(nets.len());
    let mut top = Vec::with_capacity(nets.len());
    let mut x = 0i64;
    for (i, &(gap, bl, tl, jog)) in nets.iter().enumerate() {
        x += 10 + gap;
        let blayer = Layer::ROUTABLE[bl as usize % Layer::ROUTABLE.len()];
        let tlayer = Layer::ROUTABLE[tl as usize % Layer::ROUTABLE.len()];
        bottom.push(Terminal::new(format!("n{i}"), x, blayer, width_for(blayer)));
        top.push(Terminal::new(
            format!("n{i}"),
            x + jog,
            tlayer,
            width_for(tlayer),
        ));
    }
    RouteProblem::new(bottom, top)
}

/// Full mask-level DRC of the routed cell: sticks → CIF shapes →
/// `RuleSet::nmos`.
fn drc_violations(route: &GridRoute) -> Vec<riot::drc::Violation> {
    let cell = route.to_sticks_cell("grid_route_prop");
    cell.validate().expect("route cell validates");
    let shapes: Vec<riot::cif::FlatShape> = riot::sticks::mask::to_cif_cell(&cell, 1)
        .shapes
        .into_iter()
        .map(|s| riot::cif::FlatShape {
            layer: s.layer,
            geometry: s.geometry,
            depth: 0,
        })
        .collect();
    riot::drc::check(&shapes, &RuleSet::nmos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Obstacle-free channels always route, the result is DRC-clean at
    /// mask level, and 1-thread and 4-thread planning agree exactly.
    #[test]
    fn random_channels_route_drc_clean_and_thread_invariant(
        nets in prop::collection::vec((0i64..5, 0u8..3, 0u8..3, -2i64..3), 2..10)
    ) {
        let problem = channel(&nets);
        par::set_threads(1);
        let serial = grid_route(&problem, &[]);
        par::set_threads(4);
        let parallel = grid_route(&problem, &[]);
        par::set_threads(0);
        let route = serial.expect("obstacle-free channel routes");
        prop_assert_eq!(&route, &parallel.expect("parallel solve agrees"));
        let v = drc_violations(&route);
        prop_assert!(v.is_empty(), "grid route has DRC violations: {v:?}");
    }

    /// Against a random obstacle soup the router either reports the
    /// channel unroutable or returns geometry that clears every
    /// obstacle by the layer's spacing rule *and* passes mask DRC.
    #[test]
    fn random_obstacle_soups_are_respected(
        nets in prop::collection::vec((0i64..5, 0u8..3, 0u8..3, -2i64..3), 2..8),
        blocks in prop::collection::vec(
            (0u8..3, 0i64..120, 8i64..30, 3i64..7, 2i64..5), 0..12
        )
    ) {
        let problem = channel(&nets);
        let obstacles: Vec<(Layer, Rect)> = blocks
            .iter()
            .map(|&(l, x0, y0, w, h)| {
                let layer = Layer::ROUTABLE[l as usize % Layer::ROUTABLE.len()];
                (layer, Rect::new(x0, y0, x0 + w, y0 + h))
            })
            .collect();
        if let Ok(route) = grid_route(&problem, &obstacles) {
            grid::verify_clearance(&route, &obstacles)
                .map_err(TestCaseError::fail)?;
            let v = drc_violations(&route);
            prop_assert!(v.is_empty(), "grid route has DRC violations: {v:?}");
        }
    }
}

#[test]
fn crossing_layer_pair_defeats_river_but_grid_routes() {
    // The canonical case the tentpole exists for: terminals whose
    // layers differ end-to-end. The river router refuses (it cannot
    // change layers); the grid router places vias and succeeds.
    let problem = RouteProblem::new(
        vec![
            Terminal::new("a", 10, Layer::Poly, 2),
            Terminal::new("b", 20, Layer::Metal, 3),
        ],
        vec![
            Terminal::new("a", 20, Layer::Metal, 3),
            Terminal::new("b", 30, Layer::Poly, 2),
        ],
    );
    assert!(river_route(&problem).is_err(), "river must reject");
    let route = grid_route(&problem, &[]).expect("grid routes the crossing pair");
    assert_eq!(route.wires().len(), 2);
    assert!(route.stats().vias >= 2, "layer changes need vias");
    let v = drc_violations(&route);
    assert!(
        v.is_empty(),
        "crossing-pair route has DRC violations: {v:?}"
    );
}
