//! The maintained-connection extension (the paper's future work):
//! record connections into a ledger during assembly, then detect every
//! way a later edit can silently destroy them.

use riot::core::{
    AbutOptions, ConnectionLedger, ConnectionViolation, Editor, Library, RouteOptions,
};
use riot::geom::{Point, LAMBDA};

fn chain_with_ledger(lib: &mut Library) -> ConnectionLedger {
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let mut ed = Editor::open(lib, "CHAIN").unwrap();
    let mut ledger = ConnectionLedger::new();
    let mut prev = ed.create_instance(sr).unwrap();
    for k in 1..4 {
        let next = ed.create_instance(sr).unwrap();
        ed.translate_instance(next, Point::new(k * 60 * LAMBDA, 3 * LAMBDA))
            .unwrap();
        ed.connect(next, "SI", prev, "SO").unwrap();
        ledger.record_pending(&ed).unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        prev = next;
    }
    ed.finish().unwrap();
    assert!(ledger.check(&ed).is_empty());
    ledger
}

#[test]
fn ledger_catches_accidental_moves_anywhere_in_a_chain() {
    let mut lib = Library::new();
    let ledger = chain_with_ledger(&mut lib);
    assert_eq!(ledger.len(), 3);
    let mut ed = Editor::open(&mut lib, "CHAIN").unwrap();
    // Nudge the middle stage: BOTH of its connections break.
    let mid = ed.find_instance("I1").unwrap();
    ed.translate_instance(mid, Point::new(0, 2 * LAMBDA))
        .unwrap();
    let violations = ledger.check(&ed);
    assert_eq!(violations.len(), 2);
    for v in &violations {
        assert!(matches!(v, ConnectionViolation::Separated { .. }));
    }
}

#[test]
fn route_connections_can_be_maintained_too() {
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let nand = lib.add_sticks_cell(riot::cells::nand2()).unwrap();
    let mut ed = Editor::open(&mut lib, "ROUTED").unwrap();
    let s = ed.create_instance(sr).unwrap();
    ed.replicate_instance(s, 2, 1).unwrap();
    let g = ed.create_instance(nand).unwrap();
    ed.translate_instance(g, Point::new(0, 60 * LAMBDA))
        .unwrap();
    ed.connect(g, "A", s, "TAP[0,0]").unwrap();
    ed.connect(g, "B", s, "TAP[1,0]").unwrap();
    let mut ledger = ConnectionLedger::new();
    ledger.record_pending(&ed).unwrap();
    ed.route(RouteOptions::default()).unwrap();
    // After routing, the gate's pins sit on the route's top pins, not
    // the taps — the *logical* connection holds through the route cell,
    // so the ledger naturally reports the direct-coincidence check as
    // separated. This is exactly the fidelity line the paper draws:
    // the successor tool must model connection through routing. The
    // ledger handles it by recording the two abutment interfaces.
    let violations = ledger.check(&ed);
    assert_eq!(violations.len(), 2, "direct check sees the route gap");
    // The supported pattern: re-record against the route cell's pins.
    let mut ledger2 = ConnectionLedger::new();
    let route_inst = ed
        .instances()
        .into_iter()
        .find(|(_, i)| i.name.starts_with("route"))
        .map(|(id, _)| id)
        .unwrap();
    let route_name = ed.instance(route_inst).unwrap().name.clone();
    ledger2.record(riot::core::MaintainedConnection {
        from_instance: ed.instance(g).unwrap().name.clone(),
        from_connector: "A".into(),
        to_instance: route_name.clone(),
        to_connector: "TAP[0,0]'".into(),
    });
    assert!(ledger2.check(&ed).is_empty(), "{:?}", ledger2.check(&ed));
    // And the check catches the gate drifting off the route.
    ed.translate_instance(g, Point::new(LAMBDA, 0)).unwrap();
    assert_eq!(ledger2.check(&ed).len(), 1);
}

#[test]
fn ledger_survives_composition_save_and_reload() {
    let mut lib = Library::new();
    let ledger = chain_with_ledger(&mut lib);
    let text = riot::core::compose::save(&lib);
    let mut lib2 = Library::new();
    lib2.add_sticks_cell(riot::cells::shift_register()).unwrap();
    riot::core::compose::load(&text, &mut lib2).unwrap();
    let mut ed = Editor::open(&mut lib2, "CHAIN").unwrap();
    // Names survived the round trip, so the same ledger still checks.
    assert!(ledger.check(&ed).is_empty());
    let _ = ed.take_warnings();
}
