//! Trace/replay integration: replaying a journal with `riot-trace`
//! enabled produces at least one recorded span per journaled command
//! kind — the invariant the `riot-profile` tool depends on.

use riot::core::{replay, AbutOptions, Editor, Journal, Library, RouteOptions, StretchOptions};
use riot::geom::{Point, LAMBDA};
use std::collections::BTreeSet;

/// A two-output driver leaf (same shape as the `riot-profile` fixture).
const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

/// A two-input receiver leaf.
const RECEIVER: &str = "\
sticks receiver
bbox 0 0 12 24
pin A left NP 0 6 2
pin B left NP 0 12 2
wire NP 2 0 6 8 6
wire NP 2 0 12 8 12
end
";

fn standard_library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    lib.load_sticks(DRIVER).unwrap();
    lib.load_sticks(RECEIVER).unwrap();
    lib
}

/// Records a session covering every replayable command kind that the
/// profiler reports on: create, translate, connect, abut, route,
/// stretch, undo, redo, finish.
fn record_session() -> Journal {
    let mut lib = standard_library();
    let sr = lib.find("shiftcell").unwrap();
    let drv = lib.find("driver").unwrap();
    let rcv = lib.find("receiver").unwrap();

    let mut ed = Editor::open(&mut lib, "TRACED").unwrap();

    // Abutment chain.
    let a = ed.create_instance(sr).unwrap();
    let b = ed.create_instance(sr).unwrap();
    ed.translate_instance(b, Point::new(30 * LAMBDA, 0))
        .unwrap();
    ed.connect(b, "SI", a, "SO").unwrap();
    ed.abut(AbutOptions::default()).unwrap();

    // River route.
    let d1 = ed.create_instance(drv).unwrap();
    ed.translate_instance(d1, Point::new(0, 100 * LAMBDA))
        .unwrap();
    let r1 = ed.create_instance(rcv).unwrap();
    ed.translate_instance(r1, Point::new(40 * LAMBDA, 107 * LAMBDA))
        .unwrap();
    ed.connect(r1, "A", d1, "X").unwrap();
    ed.route(RouteOptions::default()).unwrap();

    // Stretch.
    let d2 = ed.create_instance(drv).unwrap();
    ed.translate_instance(d2, Point::new(0, 200 * LAMBDA))
        .unwrap();
    let r2 = ed.create_instance(rcv).unwrap();
    ed.translate_instance(r2, Point::new(40 * LAMBDA, 200 * LAMBDA))
        .unwrap();
    ed.connect(r2, "A", d2, "X").unwrap();
    ed.connect(r2, "B", d2, "Y").unwrap();
    ed.stretch(StretchOptions::default()).unwrap();

    // History machinery.
    ed.translate_instance(d2, Point::new(0, 2 * LAMBDA))
        .unwrap();
    ed.undo().unwrap();
    ed.redo().unwrap();

    ed.finish().unwrap();
    ed.journal().clone()
}

/// NOTE: single test function — the trace registry is process-global,
/// and this file being its own integration-test binary guarantees no
/// other test mutates it concurrently.
#[test]
fn replay_emits_a_span_per_journaled_command_kind() {
    let journal = record_session();

    // Every command kind that appears in the journal after the `edit`
    // head (the head names the session; it is not applied as a
    // command and therefore carries no span).
    let kinds: BTreeSet<&'static str> = journal
        .commands()
        .iter()
        .map(|c| c.kind_name())
        .filter(|k| *k != "edit")
        .collect();
    for expected in [
        "create",
        "translate",
        "connect",
        "abut",
        "route",
        "stretch",
        "undo",
        "redo",
        "finish",
    ] {
        assert!(kinds.contains(expected), "journal misses kind {expected}");
    }

    riot::trace::reset();
    riot::trace::enable(true);
    let mut lib = standard_library();
    let warnings = replay(&journal, &mut lib).expect("replay");
    riot::trace::enable(false);
    assert!(warnings.is_empty(), "replay warnings: {warnings:?}");

    // Per-kind latency histograms: one `cmd.<kind>` entry with a
    // nonzero count and sane percentiles for every journaled kind.
    let hists: std::collections::HashMap<String, _> =
        riot::trace::registry().histograms().into_iter().collect();
    for kind in &kinds {
        let name = format!("cmd.{kind}");
        let h = hists
            .get(&name)
            .unwrap_or_else(|| panic!("no histogram {name}; have {:?}", hists.keys()));
        assert!(h.count() >= 1, "{name} recorded no samples");
        let p50 = h.p50().expect("p50 defined for nonzero count");
        let p99 = h.p99().expect("p99 defined for nonzero count");
        assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
    }

    // The recorder also holds raw span records for each kind.
    let span_names: BTreeSet<String> = riot::trace::recorder()
        .snapshot()
        .into_iter()
        .map(|r| r.name.to_owned())
        .collect();
    for kind in &kinds {
        let name = format!("cmd.{kind}");
        assert!(span_names.contains(&name), "no span record named {name}");
    }

    // The geometry pipeline (flatten → DRC → banded render) emits its
    // own spans: the memoized flattener, the indexed checker, and one
    // span per framebuffer band (present even in a serial render).
    riot::trace::enable(true);
    let file = riot::cif::parse(
        "DS 1;L NM;B 400 250 200 125;L NP;B 200 200 600 100;DF;C 1 T 0 0;C 1 T 450 0;E",
    )
    .expect("pipeline fixture parses");
    let shapes = riot::cif::flatten(&file).expect("flatten");
    let _violations = riot::drc::check(&shapes, &riot::drc::RuleSet::nmos());
    let list: riot::graphics::DisplayList = shapes
        .iter()
        .map(|s| riot::graphics::DrawOp::FillRect {
            rect: s.geometry.bounding_box(),
            color: riot::graphics::Color::of_layer(s.layer),
        })
        .collect();
    let fb = riot::graphics::device::gigi().render(&list);
    riot::trace::enable(false);
    assert!(fb.lit_pixels() > 0, "pipeline fixture drew nothing");

    let pipeline_spans: BTreeSet<String> = riot::trace::recorder()
        .snapshot()
        .into_iter()
        .map(|r| r.name.to_owned())
        .collect();
    for name in [
        "cif.flatten.memo",
        "drc.check",
        "gfx.render",
        "gfx.render.band",
    ] {
        assert!(
            pipeline_spans.contains(name),
            "no span record named {name}; have {pipeline_spans:?}"
        );
    }

    // Damage-path metrics: every recorded damage rect marks
    // `damage.rects`, duplicate instance edits drained together bump
    // `damage.coalesced`, and an incremental DRC patch records its
    // refreshed-pair count in the `drc.incremental.patched` histogram.
    riot::trace::enable(true);
    {
        let mut lib = standard_library();
        let sr = lib.find("shiftcell").unwrap();
        let mut ed = Editor::open(&mut lib, "DAMAGE").unwrap();
        let a = ed.create_instance(sr).unwrap();
        ed.translate_instance(a, Point::new(2 * LAMBDA, 0)).unwrap();
        ed.translate_instance(a, Point::new(2 * LAMBDA, 0)).unwrap();
        let events = ed.drain_events();
        assert!(!events.is_empty(), "edits queued change events");
        assert!(!ed.take_damage().is_clean(), "edits recorded damage");
    }
    let before = riot::cif::flatten(
        &riot::cif::parse("DS 1;L NM;B 400 250 200 125;B 400 250 200 1200;DF;C 1 T 0 0;E")
            .expect("fixture parses"),
    )
    .expect("flatten before");
    let after = riot::cif::flatten(
        &riot::cif::parse("DS 1;L NM;B 400 250 700 125;B 400 250 200 1200;DF;C 1 T 0 0;E")
            .expect("fixture parses"),
    )
    .expect("flatten after");
    let rules = riot::drc::RuleSet::nmos();
    let mut state = riot::drc::DrcState::build(&before, &rules);
    let dirty = [
        before[0].geometry.bounding_box(),
        after[0].geometry.bounding_box(),
    ];
    riot::drc::check_incremental(&mut state, &dirty, &after);
    riot::trace::enable(false);

    let counters: std::collections::HashMap<String, u64> =
        riot::trace::registry().counters().into_iter().collect();
    for name in ["damage.rects", "damage.coalesced"] {
        assert!(
            counters.get(name).copied().unwrap_or(0) > 0,
            "counter {name} never incremented; have {:?}",
            counters.keys()
        );
    }
    let hists: std::collections::HashMap<String, _> =
        riot::trace::registry().histograms().into_iter().collect();
    let patched = hists.get("drc.incremental.patched").unwrap_or_else(|| {
        panic!(
            "no drc.incremental.patched histogram; have {:?}",
            hists.keys()
        )
    });
    assert!(
        patched.count() >= 1,
        "incremental DRC recorded no patch sizes"
    );
}
