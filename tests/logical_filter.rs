//! Figure 9/10 integration: the logical filter assembles both ways and
//! the paper's area claims hold in shape.

use riot::filter::{build_chip, build_logic, LogicStyle};

#[test]
fn routed_logic_assembles() {
    let routed = build_logic(4, LogicStyle::Routed).expect("routed assembly");
    assert!(routed.report.route_instances >= 3, "each gate row routes");
    assert!(routed.report.routing_area > 0);
}

#[test]
fn stretched_logic_assembles_without_channels() {
    let stretched = build_logic(4, LogicStyle::Stretched).expect("stretched assembly");
    // Only the final bring-out route remains; no inter-row channels.
    assert!(
        stretched.report.route_instances <= 1,
        "stretching eliminates the routing channels, got {}",
        stretched.report.route_instances
    );
}

#[test]
fn stretching_saves_area_mostly_vertically() {
    let routed = build_logic(4, LogicStyle::Routed).expect("routed");
    let stretched = build_logic(4, LogicStyle::Stretched).expect("stretched");
    // Paper: "the designer may save area by stretching the gates,
    // eliminating the routing area … the important space savings is in
    // the vertical direction since no routing channels are needed".
    assert!(
        stretched.report.bbox.height() < routed.report.bbox.height(),
        "vertical saving: stretched {} vs routed {}",
        stretched.report.bbox.height(),
        routed.report.bbox.height()
    );
    assert!(
        stretched.report.total_area < routed.report.total_area,
        "area saving: stretched {} vs routed {}",
        stretched.report.total_area,
        routed.report.total_area
    );
}

#[test]
fn larger_filters_assemble_both_ways() {
    for bits in [8, 16] {
        let routed = build_logic(bits, LogicStyle::Routed)
            .unwrap_or_else(|e| panic!("routed {bits}-bit: {e}"));
        let stretched = build_logic(bits, LogicStyle::Stretched)
            .unwrap_or_else(|e| panic!("stretched {bits}-bit: {e}"));
        assert!(stretched.report.bbox.height() < routed.report.bbox.height());
    }
}

#[test]
fn chip_with_pads_exports_to_cif() {
    let chip = build_chip(4, LogicStyle::Routed).expect("chip assembly");
    assert!(chip.report.instances >= 5, "logic + 2 pads + 2 routes");
    // Figure 10: the completed chip geometry — CIF out and flatten.
    let cif = riot::core::export::to_cif(&chip.lib, &chip.cell).expect("export");
    let text = riot::cif::to_text(&cif);
    let again = riot::cif::parse(&text).expect("reparse");
    let flat = riot::cif::flatten(&again).expect("flatten");
    assert!(flat.len() > 50, "a real chip has plenty of geometry");
}
