//! The correctness-harness counters must surface in the trace summary
//! exporter: a traced session with a fault plan flushes
//! `check.fault.injected` / `check.fault.consulted` at editor drop,
//! and every WAL recovery bumps `journal.recovered` /
//! `journal.truncated`.
//!
//! One test function (the registry is process-global; sequencing
//! inside one test keeps the assertions deterministic).

use riot::core::{Command, Editor, FaultPlan, Journal, Library};

#[test]
fn harness_counters_appear_in_the_summary_exporter() {
    riot::trace::enable(true);

    // A session whose every fault site trips, dropped while traced.
    {
        let mut lib = Library::new();
        lib.add_sticks_cell(riot::cells::nand2()).expect("nand2");
        let mut ed = Editor::open(&mut lib, "TOP").expect("TOP opens");
        ed.set_fault_plan(FaultPlan::new(1, 1.0));
        let err = ed
            .execute(Command::Create {
                cell: "nand2".into(),
                instance: "I0".into(),
            })
            .expect_err("a full-rate plan trips the txn commit");
        assert!(err.to_string().contains("injected fault"));
    } // <- drop flushes the plan tallies

    // A recovery over a corrupt WAL (bad magic counts as truncation).
    let rec = Journal::recover_wal(b"not a wal at all");
    assert!(rec.journal.commands().is_empty());

    // And an intact recovery, so `journal.recovered` has a real value.
    let mut journal = Journal::new();
    journal.record(Command::Edit { cell: "TOP".into() });
    journal.record(Command::ClearPending);
    let clean = Journal::recover_wal(&journal.to_wal());
    assert!(clean.is_clean());

    let summary = riot::trace::export::summary();
    for name in [
        "check.fault.injected",
        "check.fault.consulted",
        "journal.recovered",
        "journal.truncated",
    ] {
        assert!(
            summary.contains(name),
            "summary exporter is missing `{name}`:\n{summary}"
        );
    }

    // The counters are not merely present — they carry the tallies.
    let reg = riot::trace::registry();
    assert!(reg.counter("check.fault.injected").get() >= 1);
    assert!(reg.counter("check.fault.consulted").get() >= 1);
    assert!(reg.counter("journal.recovered").get() >= 2);
    assert!(reg.counter("journal.truncated").get() >= 1);

    riot::trace::enable(false);
}
