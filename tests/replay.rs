//! The REPLAY experiment: re-running a journaled session after a leaf
//! cell changes shape re-makes every connection at recomputed
//! positions.

use riot::core::{replay, AbutOptions, Editor, Journal, Library};
use riot::geom::{Point, LAMBDA};

/// The original gate.
const GATE_V1: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 12 4
end
";

/// The same gate after a leaf-cell edit: taller, with both connectors
/// moved — exactly the situation that silently breaks positional
/// connections without REPLAY.
const GATE_V2: &str = "\
sticks gate
bbox 0 0 18 30
pin A left NP 0 8 2
pin OUT right NP 18 22 2
wire NP 2 0 8 18 8
wire NP 2 9 8 9 22
wire NP 2 9 22 18 22
end
";

fn record_session(lib: &mut Library) -> Journal {
    let gate = lib.find("gate").unwrap();
    let mut ed = Editor::open(lib, "TOP").unwrap();
    let a = ed.create_instance(gate).unwrap();
    let b = ed.create_instance(gate).unwrap();
    ed.translate_instance(b, Point::new(40 * LAMBDA, 3 * LAMBDA))
        .unwrap();
    ed.connect(b, "A", a, "OUT").unwrap();
    ed.abut(AbutOptions::default()).unwrap();
    ed.finish().unwrap();
    let _ = a;
    ed.journal().clone()
}

#[test]
fn replay_reconnects_after_leaf_change() {
    // Record against v1.
    let mut lib1 = Library::new();
    lib1.load_sticks(GATE_V1).unwrap();
    let journal = record_session(&mut lib1);

    // Re-run against the re-shaped v2 cell.
    let mut lib2 = Library::new();
    lib2.load_sticks(GATE_V2).unwrap();
    let warnings = replay(&journal, &mut lib2).expect("replay");
    assert!(warnings.is_empty(), "replay warnings: {warnings:?}");

    // The connection holds at the *new* positions.
    let mut ed = Editor::open(&mut lib2, "TOP").unwrap();
    let a = ed.find_instance("I0").unwrap();
    let b = ed.find_instance("I1").unwrap();
    let out = ed.world_connector(a, "OUT").unwrap();
    let ain = ed.world_connector(b, "A").unwrap();
    assert_eq!(out.location, ain.location, "connection re-made by name");
    // And it is at the v2 connector geometry, not v1's.
    assert_eq!(
        out.location.y - ed.instance_bbox(a).unwrap().y0,
        22 * LAMBDA
    );
    let _ = ed.take_warnings();
}

#[test]
fn replay_file_round_trip_then_run() {
    let mut lib1 = Library::new();
    lib1.load_sticks(GATE_V1).unwrap();
    let journal = record_session(&mut lib1);
    // Serialize to the replay file format and parse back — the crash
    // recovery path.
    let text = journal.to_text();
    let parsed = Journal::parse(&text).expect("parse replay file");
    assert_eq!(parsed, journal);

    let mut lib2 = Library::new();
    lib2.load_sticks(GATE_V1).unwrap();
    replay(&parsed, &mut lib2).expect("replay");
    // Identical input cells → identical result geometry.
    let top1 = lib1.cell(lib1.find("TOP").unwrap()).unwrap();
    let top2 = lib2.cell(lib2.find("TOP").unwrap()).unwrap();
    assert_eq!(top1.bbox, top2.bbox);
    assert_eq!(top1.connectors, top2.connectors);
}

#[test]
fn replay_covers_route_and_stretch() {
    // A journal that exercises ROUTE and STRETCH survives replay
    // against a modified cell.
    const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";
    const RECEIVER: &str = "\
sticks receiver
bbox 0 0 12 24
pin A left NP 0 6 2
pin B left NP 0 12 2
wire NP 2 0 6 8 6
wire NP 2 0 12 8 12
end
";
    let journal = {
        let mut lib = Library::new();
        lib.load_sticks(DRIVER).unwrap();
        lib.load_sticks(RECEIVER).unwrap();
        let d_cell = lib.find("driver").unwrap();
        let r_cell = lib.find("receiver").unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let d = ed.create_instance(d_cell).unwrap();
        let r = ed.create_instance(r_cell).unwrap();
        ed.translate_instance(r, Point::new(40 * LAMBDA, 0))
            .unwrap();
        ed.connect(r, "A", d, "X").unwrap();
        ed.connect(r, "B", d, "Y").unwrap();
        ed.stretch(Default::default()).unwrap();
        ed.finish().unwrap();
        ed.journal().clone()
    };
    // Replay against a driver whose pins moved further apart.
    const DRIVER_V2: &str = "\
sticks driver
bbox 0 0 10 30
pin X right NP 10 6 2
pin Y right NP 10 24 2
wire NP 2 0 6 10 6
wire NP 2 0 24 10 24
end
";
    let mut lib2 = Library::new();
    lib2.load_sticks(DRIVER_V2).unwrap();
    lib2.load_sticks(RECEIVER).unwrap();
    replay(&journal, &mut lib2).expect("replay with stretch");
    let ed = Editor::open(&mut lib2, "TOP").unwrap();
    let d = ed.find_instance("I0").unwrap();
    let r = ed.find_instance("I1").unwrap();
    // Both connections hold at the v2 separations (18λ apart).
    let x = ed.world_connector(d, "X").unwrap();
    let a = ed.world_connector(r, "A").unwrap();
    let y = ed.world_connector(d, "Y").unwrap();
    let b = ed.world_connector(r, "B").unwrap();
    assert_eq!(x.location, a.location);
    assert_eq!(y.location, b.location);
    assert_eq!(b.location.y - a.location.y, 18 * LAMBDA);
}
