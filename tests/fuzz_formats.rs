//! Robustness across the textual formats: no parser panics on garbage.

use proptest::prelude::*;

#[test]
fn sticks_parser_never_panics_on_garbage() {
    for text in [
        "",
        "sticks",
        "sticks \u{0}x\nbbox\nend",
        "sticks a\nbbox 0 0 9999999999999999999 4\nend",
        "pin wire dev contact end",
        &"wire NM 3 0 0 1 1\n".repeat(50),
    ] {
        let _ = riot::sticks::parse(text);
    }
}

#[test]
fn replay_parser_never_panics_on_garbage() {
    for text in [
        "",
        "riot replay v1",
        "riot replay v1\ntranslate",
        "riot replay v1\nconnect a b",
        "riot replay v1\nabut maybe\n",
        "riot replay v1\nbringout x",
    ] {
        let _ = riot::core::Journal::parse(text);
    }
}

#[test]
fn composition_parser_never_panics_on_garbage() {
    let mut lib = riot::core::Library::new();
    for text in [
        "",
        "riot composition v1\ncell",
        "riot composition v1\ncell A\ninstance x y R0 0 0 1 1 1 1\nend",
        "riot composition v1\nbbox 1 2 3 4",
        "riot composition v1\ncell A\nconnector N 0 0 QQ 3\nend",
    ] {
        let _ = riot::core::compose::load(text, &mut lib);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sticks_random_lines_never_panic(
        text in "(sticks [a-z]{1,4}|bbox( -?[0-9]{1,3}){4}|pin [A-Z] left NM 0 [0-9]{1,2}|wire NM 3( [0-9]{1,2}){4}|dev enh 5 5|contact md 4 4|end|\n){0,20}"
    ) {
        let _ = riot::sticks::parse(&text);
    }

    #[test]
    fn replay_random_lines_never_panic(
        text in "(riot replay v1|edit [A-Z]{1,4}|create [a-z]{1,4} I[0-9]|translate I[0-9] -?[0-9]{1,6} -?[0-9]{1,6}|abut touch|route move|stretch|finish|\n){0,20}"
    ) {
        let _ = riot::core::Journal::parse(&text);
    }
}
