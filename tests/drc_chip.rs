//! Design-rule checking the assembled filter — the "extensive
//! checking" the paper's users performed by hand, automated.

use riot::drc::{check, RuleSet, Violation};
use riot::filter::{build_logic, LogicStyle};

fn violations(style: LogicStyle) -> Vec<Violation> {
    let logic = build_logic(4, style).expect("assembles");
    let cif = riot::core::export::to_cif(&logic.lib, &logic.cell).expect("exports");
    let flat = riot::cif::flatten(&cif).expect("flattens");
    check(&flat, &RuleSet::nmos())
}

#[test]
fn stretched_assembly_is_drc_clean() {
    let v = violations(LogicStyle::Stretched);
    assert!(v.is_empty(), "stretched logic has violations: {v:?}");
}

#[test]
fn routed_assembly_has_only_the_known_corner_case() {
    // One residual diagonal-corner proximity remains in the routed
    // assembly: two unconnected diffusion features 2λ apart in both
    // axes (2.8λ Euclidean). Many production NMOS decks relax the
    // corner-to-corner rule to exactly this case; we pin it so any
    // regression that adds real violations fails loudly.
    let v = violations(LogicStyle::Routed);
    assert!(v.len() <= 1, "routed logic regressed: {v:?}");
    for violation in &v {
        match violation {
            Violation::Spacing {
                measured, required, ..
            } => {
                assert_eq!(*measured, 500, "only the documented 2λ corner case");
                assert_eq!(*required, 750);
            }
            Violation::Width { .. } => panic!("no width violations expected: {violation}"),
        }
    }
}

#[test]
fn every_leaf_cell_is_drc_clean_alone() {
    let mut lib = riot::core::Library::new();
    lib.load_cif(&riot::cells::pads_cif()).unwrap();
    lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    lib.add_sticks_cell(riot::cells::nand2()).unwrap();
    lib.add_sticks_cell(riot::cells::or2()).unwrap();
    lib.add_sticks_cell(riot::cells::pipe_corner(riot::geom::Layer::Metal, 3))
        .unwrap();
    for (_, cell) in lib.iter() {
        let name = cell.name.clone();
        let shapes: Vec<riot::cif::FlatShape> = match &cell.kind {
            riot::core::CellKind::Leaf(riot::core::LeafSource::Cif { shapes }) => shapes
                .iter()
                .map(|s| riot::cif::FlatShape {
                    layer: s.layer,
                    geometry: s.geometry.clone(),
                    depth: 0,
                })
                .collect(),
            riot::core::CellKind::Leaf(riot::core::LeafSource::Sticks(sticks)) => {
                riot_sticks_shapes(sticks)
            }
            _ => continue,
        };
        let v = check(&shapes, &RuleSet::nmos());
        assert!(v.is_empty(), "cell `{name}` has violations: {v:?}");
    }
}

fn riot_sticks_shapes(sticks: &riot::sticks::SticksCell) -> Vec<riot::cif::FlatShape> {
    riot::sticks::mask::to_cif_cell(sticks, 1)
        .shapes
        .into_iter()
        .map(|s| riot::cif::FlatShape {
            layer: s.layer,
            geometry: s.geometry,
            depth: 0,
        })
        .collect()
}

#[test]
fn abutted_rows_stay_clean() {
    // The rail-inset discipline: stacking rows keeps the metal rules.
    let mut lib = riot::core::Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register()).unwrap();
    let mut ed = riot::core::Editor::open(&mut lib, "STACK").unwrap();
    let a = ed.create_instance(sr).unwrap();
    ed.replicate_instance(a, 4, 2).unwrap(); // a 4x2 abutting array
    ed.finish().unwrap();
    drop(ed);
    let cif = riot::core::export::to_cif(&lib, "STACK").unwrap();
    let flat = riot::cif::flatten(&cif).unwrap();
    let v = check(&flat, &RuleSet::nmos());
    assert!(v.is_empty(), "stacked array violations: {v:?}");
}
