//! Golden corrupt-journal fixtures: two hand-corrupted write-ahead
//! journals checked into `examples/`, with the exact truncation point
//! and the replayed post-recovery state pinned down.
//!
//! The fixtures were generated with a stock zlib CRC-32 (Python's
//! `zlib.crc32`), proving the WAL checksum is the standard IEEE
//! polynomial and not a homegrown variant. The intact journal is:
//!
//! ```text
//! edit TOP
//! create nand2 A
//! create nand2 B
//! translate B 5000 0
//! replicate B 2 3
//! ```
//!
//! * `torn_tail.wal` — the final record (`replicate B 2 3`) is cut
//!   mid-payload, as an interrupted write would leave it.
//! * `bad_checksum.wal` — one payload byte of `translate B 5000 0` is
//!   flipped; the length is intact but the CRC disagrees.

use riot::core::{command_to_line, replay, Editor, Journal, Library};
use riot::core::{WalCorruption, WAL_MAGIC};
use riot::geom::Point;

const TORN_TAIL: &[u8] = include_bytes!("../examples/torn_tail.wal");
const BAD_CHECKSUM: &[u8] = include_bytes!("../examples/bad_checksum.wal");

fn menu() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::nand2()).expect("nand2");
    lib
}

fn lines(journal: &riot::core::Journal) -> Vec<String> {
    journal.commands().iter().map(command_to_line).collect()
}

#[test]
fn fixtures_start_with_the_magic() {
    assert_eq!(&TORN_TAIL[..8], WAL_MAGIC);
    assert_eq!(&BAD_CHECKSUM[..8], WAL_MAGIC);
}

#[test]
fn torn_tail_truncates_at_the_last_intact_record() {
    let rec = Journal::recover_wal(TORN_TAIL);
    // The first four records survive; the torn `replicate` is dropped.
    assert_eq!(
        lines(&rec.journal),
        [
            "edit TOP",
            "create nand2 A",
            "create nand2 B",
            "translate B 5000 0",
        ]
    );
    assert_eq!(rec.valid_len, 94, "scan stops at the torn record's header");
    assert_eq!(
        rec.corruption,
        Some(WalCorruption::TornPayload {
            expected: 15,
            available: 2
        })
    );

    // Replaying the prefix yields the pre-crash state minus the lost
    // tail: B is translated but NOT replicated.
    let mut lib = menu();
    replay(&rec.journal, &mut lib).expect("recovered prefix replays");
    let ed = Editor::open(&mut lib, "TOP").expect("TOP reopens");
    let insts = ed.instances();
    assert_eq!(insts.len(), 2);
    let b = insts
        .iter()
        .map(|(_, i)| i)
        .find(|i| i.name == "B")
        .expect("B replayed");
    assert_eq!(b.transform.offset, Point::new(5000, 0));
    assert_eq!(
        (b.cols, b.rows),
        (1, 1),
        "the torn replicate must not apply"
    );
}

#[test]
fn bad_checksum_truncates_before_the_corrupt_record() {
    let rec = Journal::recover_wal(BAD_CHECKSUM);
    assert_eq!(
        lines(&rec.journal),
        ["edit TOP", "create nand2 A", "create nand2 B"]
    );
    assert_eq!(rec.valid_len, 68, "scan stops at the corrupt record");
    match rec.corruption {
        Some(WalCorruption::BadChecksum { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected BadChecksum, got {other:?}"),
    }

    // Replay: both creates land, the corrupt translate does not.
    let mut lib = menu();
    replay(&rec.journal, &mut lib).expect("recovered prefix replays");
    let ed = Editor::open(&mut lib, "TOP").expect("TOP reopens");
    let insts = ed.instances();
    assert_eq!(insts.len(), 2);
    let b = insts
        .iter()
        .map(|(_, i)| i)
        .find(|i| i.name == "B")
        .expect("B replayed");
    assert_eq!(
        b.transform.offset,
        Point::ORIGIN,
        "the corrupt translate must not apply"
    );
}

#[test]
fn recovery_is_idempotent_on_the_recovered_prefix() {
    for fixture in [TORN_TAIL, BAD_CHECKSUM] {
        let first = Journal::recover_wal(fixture);
        let rewritten = first.journal.to_wal();
        assert_eq!(rewritten.len(), first.valid_len);
        let second = Journal::recover_wal(&rewritten);
        assert!(second.is_clean());
        assert_eq!(lines(&second.journal), lines(&first.journal));
    }
}
