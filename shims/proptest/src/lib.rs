//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. This shim keeps the same *surface*: the [`proptest!`]
//! macro, the [`Strategy`] combinators (`prop_map`, `prop_flat_map`,
//! tuples, ranges, regex-ish string strategies), the `prop::` module
//! tree (`collection::vec`, `sample::select`, `bool::ANY`,
//! `option::of`), [`Just`], [`prop_oneof!`], `prop_assert*!` and
//! [`ProptestConfig`]. Semantically it is a plain seeded random tester:
//! no shrinking, no persistence. Failures report the seed and the
//! generated inputs via `Debug` where available.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod test_runner {
    //! The tiny runner: RNG, config and case-level error plumbing.

    use rand::rngs::StdRng;
    use rand::{Rng as _, RngCore, SeedableRng};

    /// Deterministic per-case RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator for one test case of one test function.
        pub fn deterministic(test_hash: u64, case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.0.next_u64() % n
            }
        }

        /// Uniform `i128` in `[lo, hi)`.
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "empty strategy range");
            let span = (hi - lo) as u128;
            lo + ((self.0.next_u64() as u128) % span) as i128
        }

        /// A coin flip.
        pub fn coin(&mut self) -> bool {
            self.0.gen_bool(0.5)
        }
    }

    /// How a single case ended short of success.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` matters to the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

// ---------------------------------------------------------------------
// Regex-ish string strategies
// ---------------------------------------------------------------------

/// `&str` strategies are interpreted as a regex *generator* over the
/// subset of syntax the workspace uses: literals, `(a|b)` groups,
/// `[a-z0-9 ]` classes, `.`/`\PC` printable wildcards, and the `*`,
/// `?`, `{n}`, `{n,m}` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::generate(&ast, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::generate(&ast, rng, &mut out);
        out
    }
}

mod regex {
    //! A miniature regex sampler (generation only, no matching).

    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub enum Node {
        /// Alternation of concatenations.
        Alt(Vec<Vec<Node>>),
        /// Character class: inclusive ranges.
        Class(Vec<(char, char)>),
        /// A literal character.
        Lit(char),
        /// Any printable character (`.` / `\PC`).
        Printable,
        /// `node{lo,hi}` (inclusive hi).
        Repeat(Box<Node>, u32, u32),
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        src: &'a str,
    }

    pub fn parse(src: &str) -> Node {
        let mut p = Parser {
            chars: src.chars().peekable(),
            src,
        };
        let alt = p.alternation(false);
        assert!(
            p.chars.peek().is_none(),
            "regex shim: trailing input in {src:?}"
        );
        Node::Alt(alt)
    }

    impl<'a> Parser<'a> {
        fn alternation(&mut self, in_group: bool) -> Vec<Vec<Node>> {
            let mut arms = vec![Vec::new()];
            loop {
                match self.chars.peek().copied() {
                    None => break,
                    Some(')') if in_group => break,
                    Some('|') => {
                        self.chars.next();
                        arms.push(Vec::new());
                    }
                    Some(_) => {
                        let atom = self.atom();
                        let atom = self.quantified(atom);
                        arms.last_mut().expect("one arm").push(atom);
                    }
                }
            }
            arms
        }

        fn atom(&mut self) -> Node {
            match self.chars.next().expect("atom") {
                '(' => {
                    let alt = self.alternation(true);
                    assert_eq!(
                        self.chars.next(),
                        Some(')'),
                        "regex shim: unclosed group in {:?}",
                        self.src
                    );
                    Node::Alt(alt)
                }
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let c = self.chars.next().unwrap_or_else(|| {
                            panic!("regex shim: unclosed class in {:?}", self.src)
                        });
                        if c == ']' {
                            break;
                        }
                        let c = if c == '\\' {
                            self.chars.next().expect("escape")
                        } else {
                            c
                        };
                        if self.chars.peek() == Some(&'-') {
                            let mut probe = self.chars.clone();
                            probe.next(); // the '-'
                            match probe.peek() {
                                Some(&end) if end != ']' => {
                                    self.chars.next();
                                    self.chars.next();
                                    ranges.push((c, end));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        ranges.push((c, c));
                    }
                    Node::Class(ranges)
                }
                '.' => Node::Printable,
                '\\' => match self.chars.next().expect("escape") {
                    'n' => Node::Lit('\n'),
                    't' => Node::Lit('\t'),
                    'r' => Node::Lit('\r'),
                    'P' | 'p' => {
                        // \PC — printable; consume the one-letter class.
                        self.chars.next();
                        Node::Printable
                    }
                    other => Node::Lit(other),
                },
                lit => Node::Lit(lit),
            }
        }

        fn quantified(&mut self, atom: Node) -> Node {
            match self.chars.peek().copied() {
                Some('*') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 0, 16)
                }
                Some('+') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 1, 16)
                }
                Some('?') => {
                    self.chars.next();
                    Node::Repeat(Box::new(atom), 0, 1)
                }
                Some('{') => {
                    self.chars.next();
                    let mut spec = String::new();
                    for c in self.chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((l, h)) => (
                            l.trim().parse().expect("repeat lower bound"),
                            h.trim().parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    };
                    Node::Repeat(Box::new(atom), lo, hi)
                }
                _ => atom,
            }
        }
    }

    const PRINTABLE: (char, char) = (' ', '~');

    pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Alt(arms) => {
                let arm = &arms[rng.below(arms.len() as u64) as usize];
                for n in arm {
                    generate(n, rng, out);
                }
            }
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        let c = char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                        out.push(c);
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Lit(c) => out.push(*c),
            Node::Printable => {
                let span = PRINTABLE.1 as u64 - PRINTABLE.0 as u64 + 1;
                let c = char::from_u32(PRINTABLE.0 as u32 + rng.below(span) as u32).unwrap();
                out.push(c);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// prop:: module tree
// ---------------------------------------------------------------------

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Uniform `true`/`false`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.coin()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// Size specification for [`vec`]: an exact count or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Vectors of values from `element`, sized by `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo).max(1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Uniform choice from a vector of values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select { options }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform alternation between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case when the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The property-test entry macro; same shape as the real crate's.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test stream: hash the test name.
                let test_hash: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                let strategies = ($($strat,)+);
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        test_hash,
                        case as u64,
                    );
                    let ($($pat,)+) =
                        $crate::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                case, config.cases, msg
                            );
                        }
                    }
                }
                // Mirror the real crate's too-many-rejects guard loosely.
                assert!(
                    rejected < config.cases,
                    "proptest: every case was rejected by prop_assume!"
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 10i64..20)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i64..5, n in 0usize..4) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(n < 4);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..4).prop_map(|x| x * 2), 1..5),
            p in arb_pair().prop_flat_map(|(a, b)| (Just(a), Just(b), a..b)),
            o in prop::option::of(0i64..3),
            s in prop::sample::select(vec!["a", "b"]),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            let (a, b, mid) = p;
            prop_assert!(a <= mid && mid < b);
            if let Some(x) = o { prop_assert!(x < 3); }
            prop_assert!(s == "a" || s == "b");
            let _ = flag;
        }

        #[test]
        fn oneof_hits_all_arms(x in prop_oneof![Just(1i64), Just(2i64), 10i64..12]) {
            prop_assert!(x == 1 || x == 2 || x == 10 || x == 11);
        }

        #[test]
        fn regexish_strings(
            word in "[a-z]{1,4}",
            num in "[1-9][0-9]{2,3}",
            alt in "(ab|cd)*",
            any in "\\PC*",
        ) {
            prop_assert!((1..=4).contains(&word.len()));
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            let n: u64 = num.parse().unwrap();
            prop_assert!(n >= 100);
            prop_assert!(alt.len() % 2 == 0);
            prop_assert!(any.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_assume(x in 0i64..100) {
            prop_assume!(x < 99); // nearly always holds
            prop_assert!(x < 99);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(1, 2);
        let mut b = crate::test_runner::TestRng::deterministic(1, 2);
        let s: String = Strategy::generate(&"[a-z]{8}", &mut a);
        let t: String = Strategy::generate(&"[a-z]{8}", &mut b);
        assert_eq!(s, t);
    }
}
