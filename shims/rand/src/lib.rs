//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`Rng::gen_range`]/[`Rng::gen_bool`], [`SeedableRng`] and
//! [`rngs::StdRng`].
//!
//! The container this repository builds in has no network access to
//! crates.io, so the real crate cannot be fetched. The generators here
//! are deterministic splitmix64/xoshiro-style streams — perfectly
//! adequate for benchmark workloads and fuzzing, and *not* intended for
//! anything cryptographic.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `lo..hi` range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream; stands in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..9);
            assert!((-5..9).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "hits = {hits}");
    }
}
