//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace's benches.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. The shim keeps the harness surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box`) and performs a simple calibrated
//! measurement: a warm-up pass sizes the batch, then a fixed number of
//! samples are timed and mean/min are reported on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; ignored by the shim's timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Larger inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher {
    fn new(sample_count: u64) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: target ~5ms per sample, capped.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let extra = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>8.1} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.1} Melem/s", n as f64 / mean * 1e3)
            }
            None => String::new(),
        };
        println!(
            "{label:<40} mean {:>12}  min {:>12}{extra}",
            fmt_ns(mean),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness object.
pub struct Criterion {
    sample_count: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 12 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_count,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = (n as u64).clamp(1, 1000);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` style args are accepted and
            // ignored by the shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(10));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
